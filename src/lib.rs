//! Facade crate re-exporting the whole coherence-sharing-prediction
//! workspace. See README.md; the real documentation lives on the member
//! crates.

pub use csp_bar as bar;
pub use csp_core as core;
pub use csp_harness as harness;
pub use csp_metrics as metrics;
pub use csp_obs as obs;
pub use csp_serve as serve;
pub use csp_sim as sim;
pub use csp_trace as trace;
pub use csp_workloads as workloads;
