//! The evaluation engine: runs schemes over traces.
//!
//! One trace event = one decision. The engine applies the scheme's update
//! mechanism and scores each prediction against the event's *actual* bitmap
//! (the trace's resolved ground truth). Update timing per mode:
//!
//! * `direct` — the invalidation feedback carried by the event itself is
//!   shifted into the *current* event's entry, then the entry predicts.
//!   Events with no previous writer carry no invalidation and update
//!   nothing (keeping direct exactly equivalent to ordered under pure
//!   address indexing, as Section 3.4 requires).
//! * `forwarded` — the feedback is shifted into the *previous writer's*
//!   entry (if any), then the current entry predicts.
//! * `ordered` — the entry predicts, then is immediately trained with the
//!   event's own actual bitmap (known from the trace's first pass): every
//!   later prediction through that entry sees this feedback, the oracle
//!   ordering of Figure 4.

use crate::{IndexSpec, PredictorTable, Scheme, UpdateMode};
use csp_metrics::ConfusionMatrix;
use csp_trace::{SharingBitmap, Trace};

/// Runs `scheme` over `trace`, scoring every decision.
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn run_scheme(trace: &Trace, scheme: &Scheme) -> ConfusionMatrix {
    let mut matrix = ConfusionMatrix::default();
    let nodes = trace.nodes();
    drive(trace, scheme, |_, predicted, actual| {
        matrix.record(predicted, actual, nodes);
    });
    matrix
}

/// Runs `scheme` over `trace` and returns the per-event predictions
/// (e.g. for the forwarding estimator in `csp-sim`).
pub fn predictions_for(trace: &Trace, scheme: &Scheme) -> Vec<SharingBitmap> {
    let mut out = vec![SharingBitmap::empty(); trace.len()];
    drive(trace, scheme, |i, predicted, _| {
        out[i] = predicted;
    });
    out
}

/// The shared evaluation loop: calls `visit(event_index, predicted,
/// actual)` for every event in order.
fn drive<F: FnMut(usize, SharingBitmap, SharingBitmap)>(
    trace: &Trace,
    scheme: &Scheme,
    mut visit: F,
) {
    let node_bits = crate::index::node_bits(trace.nodes());
    let actuals = trace.resolve_actuals();
    let mut table = PredictorTable::new(scheme, trace.nodes());
    for (i, event) in trace.events().iter().enumerate() {
        let key = scheme.index.key_of(event, node_bits);
        let predicted = match scheme.update {
            UpdateMode::Direct => {
                if event.prev_writer.is_some() {
                    table.update(key, event.invalidated);
                }
                table.predict(key)
            }
            UpdateMode::Forwarded => {
                if let Some(fkey) = scheme.index.forward_key_of(event, node_bits) {
                    table.update(fkey, event.invalidated);
                }
                table.predict(key)
            }
            UpdateMode::Ordered => {
                let p = table.predict(key);
                table.update(key, actuals[i]);
                p
            }
        };
        visit(i, predicted, actuals[i]);
    }
}

/// Confusion matrices for the whole `union`/`inter` family over one index
/// and update mode, evaluated in a single trace pass.
///
/// `union[d-1]` / `inter[d-1]` hold the results for history depth `d`.
/// Depth 1 of either family is exactly `last` prediction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilyResult {
    /// Results for `union(index)d`, indexed by `d - 1`.
    pub union: Vec<ConfusionMatrix>,
    /// Results for `inter(index)d`, indexed by `d - 1`.
    pub inter: Vec<ConfusionMatrix>,
}

/// Evaluates `union` and `inter` at every depth `1..=max_depth` over one
/// `(index, update)` point in a single pass — the workhorse of the
/// design-space sweeps, ~`2 x max_depth` cheaper than separate runs.
///
/// # Panics
///
/// Panics if `max_depth` is out of `1..=MAX_DEPTH`.
pub fn run_history_family(
    trace: &Trace,
    index: IndexSpec,
    update: UpdateMode,
    max_depth: usize,
) -> FamilyResult {
    assert!(
        (1..=crate::MAX_DEPTH).contains(&max_depth),
        "max_depth must be in 1..={}",
        crate::MAX_DEPTH
    );
    let node_bits = crate::index::node_bits(trace.nodes());
    let nodes = trace.nodes();
    let actuals = trace.resolve_actuals();
    // One table with the deepest history serves every depth: the prediction
    // at depth d is a fold over the d most recent bitmaps.
    let deepest = Scheme::new(crate::PredictionFunction::Union, index, max_depth, update);
    let mut table = PredictorTable::new(&deepest, nodes);
    let mut result = FamilyResult {
        union: vec![ConfusionMatrix::default(); max_depth],
        inter: vec![ConfusionMatrix::default(); max_depth],
    };

    let score =
        |table: &PredictorTable, key: u64, actual: SharingBitmap, result: &mut FamilyResult| {
            match table.history(key) {
                None => {
                    let empty = SharingBitmap::empty();
                    for d in 0..max_depth {
                        result.union[d].record(empty, actual, nodes);
                        result.inter[d].record(empty, actual, nodes);
                    }
                }
                Some(h) => {
                    let mut acc_union = SharingBitmap::empty();
                    let mut acc_inter = SharingBitmap::all(nodes);
                    let mut d = 0;
                    for b in h.recent(max_depth) {
                        acc_union |= b;
                        acc_inter &= b;
                        result.union[d].record(acc_union, actual, nodes);
                        result.inter[d].record(acc_inter, actual, nodes);
                        d += 1;
                    }
                    // Shallower history than depth: union still folds over
                    // everything stored, but an intersection entry whose
                    // history is not yet full predicts nothing (empty slots
                    // are all-zeros in hardware).
                    let empty = SharingBitmap::empty();
                    for rest in d..max_depth {
                        result.union[rest].record(acc_union, actual, nodes);
                        result.inter[rest].record(empty, actual, nodes);
                    }
                }
            }
        };

    for (i, event) in trace.events().iter().enumerate() {
        let key = index.key_of(event, node_bits);
        match update {
            UpdateMode::Direct => {
                if event.prev_writer.is_some() {
                    table.update(key, event.invalidated);
                }
                score(&table, key, actuals[i], &mut result);
            }
            UpdateMode::Forwarded => {
                if let Some(fkey) = index.forward_key_of(event, node_bits) {
                    table.update(fkey, event.invalidated);
                }
                score(&table, key, actuals[i], &mut result);
            }
            UpdateMode::Ordered => {
                score(&table, key, actuals[i], &mut result);
                table.update(key, actuals[i]);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredictionFunction;
    use csp_trace::{LineAddr, NodeId, Pc, SharingEvent};

    fn bm(nodes: &[u8]) -> SharingBitmap {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    /// Single-writer producer-consumer trace: node 0 writes line 1, nodes
    /// 1 and 2 always read it.
    fn stable_trace(n_events: usize) -> Trace {
        let mut t = Trace::new(16);
        for i in 0..n_events {
            let (inv, prev) = if i == 0 {
                (SharingBitmap::empty(), None)
            } else {
                (bm(&[1, 2]), Some((NodeId(0), Pc(7))))
            };
            t.push(SharingEvent::new(
                NodeId(0),
                Pc(7),
                LineAddr(1),
                NodeId(0),
                inv,
                prev,
            ));
        }
        t.set_final_readers(LineAddr(1), bm(&[1, 2]));
        t
    }

    /// Two writers alternating on one line, each with its own readers:
    /// the pattern of the paper's Figure 3 where direct update learns the
    /// *other* writer's history.
    fn alternating_trace(pairs: usize) -> Trace {
        let mut t = Trace::new(16);
        let mut prev: Option<(NodeId, Pc)> = None;
        for i in 0..pairs * 2 {
            let (writer, pc, my_readers) = if i % 2 == 0 {
                (NodeId(0), Pc(10), bm(&[4, 5]))
            } else {
                (NodeId(1), Pc(20), bm(&[8, 9]))
            };
            // Invalidation reports the *previous* writer's readers.
            let inv = match prev {
                None => SharingBitmap::empty(),
                Some((NodeId(0), _)) => bm(&[4, 5]),
                Some(_) => bm(&[8, 9]),
            };
            t.push(SharingEvent::new(
                writer,
                pc,
                LineAddr(1),
                NodeId(0),
                inv,
                prev,
            ));
            prev = Some((writer, pc));
            let _ = my_readers;
        }
        // Last writer was node 1 (odd count), its readers are final.
        t.set_final_readers(LineAddr(1), bm(&[8, 9]));
        t
    }

    #[test]
    fn stable_sharing_is_perfectly_predicted_after_warmup() {
        let trace = stable_trace(50);
        for spec in ["last(pid+pc8)1", "union(pid+pc8)2", "inter(pid+pc8)4"] {
            let scheme: Scheme = spec.parse().unwrap();
            let s = run_scheme(&trace, &scheme).screening();
            assert!(s.pvp > 0.9, "{spec}: pvp {}", s.pvp);
            assert!(s.sensitivity > 0.85, "{spec}: sens {}", s.sensitivity);
        }
    }

    #[test]
    fn forwarded_beats_direct_on_alternating_writers() {
        // With pc indexing, direct update trains writer A's entry with
        // writer B's readers; forwarded update routes feedback correctly.
        let trace = alternating_trace(100);
        let direct: Scheme = "last(pid+pc8)1[direct]".parse().unwrap();
        let fwd: Scheme = "last(pid+pc8)1[forwarded]".parse().unwrap();
        let sd = run_scheme(&trace, &direct).screening();
        let sf = run_scheme(&trace, &fwd).screening();
        assert!(
            sf.pvp > sd.pvp + 0.4,
            "forwarded {:.2} should beat direct {:.2}",
            sf.pvp,
            sd.pvp
        );
        // Direct learns exactly the wrong thing here: PVP ~ 0.
        assert!(sd.pvp < 0.1);
        assert!(sf.pvp > 0.9);
    }

    #[test]
    fn ordered_equals_direct_for_pure_address_indexing() {
        for trace in [stable_trace(40), alternating_trace(40)] {
            for func in [PredictionFunction::Union, PredictionFunction::Inter] {
                for depth in [1, 2, 4] {
                    let ix = IndexSpec::new(false, 0, false, 16);
                    let d = Scheme::new(func, ix, depth, UpdateMode::Direct);
                    let o = Scheme::new(func, ix, depth, UpdateMode::Ordered);
                    let f = Scheme::new(func, ix, depth, UpdateMode::Forwarded);
                    let md = run_scheme(&trace, &d);
                    assert_eq!(md, run_scheme(&trace, &o), "{func} depth {depth} ordered");
                    assert_eq!(md, run_scheme(&trace, &f), "{func} depth {depth} forwarded");
                }
            }
        }
    }

    #[test]
    fn predictions_align_with_run_scheme() {
        let trace = stable_trace(20);
        let scheme: Scheme = "union(pid+pc4)2[direct]".parse().unwrap();
        let preds = predictions_for(&trace, &scheme);
        assert_eq!(preds.len(), trace.len());
        let actuals = trace.resolve_actuals();
        let mut m = ConfusionMatrix::default();
        for (p, a) in preds.iter().zip(&actuals) {
            m.record(*p, *a, trace.nodes());
        }
        assert_eq!(m, run_scheme(&trace, &scheme));
    }

    #[test]
    fn decisions_equal_events_times_nodes() {
        let trace = alternating_trace(30);
        let scheme: Scheme = "inter(pid)2[direct]".parse().unwrap();
        let m = run_scheme(&trace, &scheme);
        assert_eq!(m.decisions(), trace.len() as u64 * 16);
    }

    #[test]
    fn family_matches_individual_runs() {
        let trace = alternating_trace(50);
        for update in UpdateMode::ALL {
            let ix = IndexSpec::new(true, 4, false, 2);
            let fam = run_history_family(&trace, ix, update, 4);
            for depth in 1..=4 {
                let u = Scheme::new(PredictionFunction::Union, ix, depth, update);
                let i = Scheme::new(PredictionFunction::Inter, ix, depth, update);
                assert_eq!(
                    fam.union[depth - 1],
                    run_scheme(&trace, &u),
                    "union d{depth} {update}"
                );
                assert_eq!(
                    fam.inter[depth - 1],
                    run_scheme(&trace, &i),
                    "inter d{depth} {update}"
                );
            }
        }
    }

    #[test]
    fn family_depth1_equals_last() {
        let trace = stable_trace(30);
        let ix = IndexSpec::new(true, 8, false, 0);
        let fam = run_history_family(&trace, ix, UpdateMode::Direct, 3);
        let last = Scheme::new(PredictionFunction::Last, ix, 1, UpdateMode::Direct);
        assert_eq!(fam.union[0], run_scheme(&trace, &last));
        assert_eq!(fam.inter[0], run_scheme(&trace, &last));
    }

    #[test]
    fn union_sensitivity_at_least_inter_at_same_depth() {
        let trace = alternating_trace(80);
        let ix = IndexSpec::new(true, 0, false, 4);
        let fam = run_history_family(&trace, ix, UpdateMode::Direct, 4);
        for d in 0..4 {
            let su = fam.union[d].screening();
            let si = fam.inter[d].screening();
            assert!(
                su.sensitivity >= si.sensitivity - 1e-12,
                "depth {}: union sens {} < inter sens {}",
                d + 1,
                su.sensitivity,
                si.sensitivity
            );
        }
    }

    #[test]
    fn baseline_last_tracks_system_wide_bitmap() {
        // With the baseline, the entry is shared by all lines: the
        // prediction is always the most recent invalidation in the system.
        let trace = stable_trace(10);
        let m = run_scheme(&trace, &Scheme::baseline_last());
        // Direct update delivers the event's own feedback before
        // predicting; on this single-line stable trace that is perfect
        // after warmup.
        assert!(m.screening().pvp > 0.9);
    }

    #[test]
    fn empty_trace_yields_empty_matrix() {
        let trace = Trace::new(16);
        let m = run_scheme(&trace, &Scheme::baseline_last());
        assert_eq!(m.decisions(), 0);
    }
}

/// Compares two schemes decision-by-decision on the same trace, producing
/// the paired counts McNemar's test needs (see
/// [`csp_metrics::compare::PairedComparison`]). A per-node bit is
/// "correct" when it matches the actual bit.
pub fn compare_schemes(
    trace: &Trace,
    a: &Scheme,
    b: &Scheme,
) -> csp_metrics::compare::PairedComparison {
    let preds_a = predictions_for(trace, a);
    let preds_b = predictions_for(trace, b);
    let actuals = trace.resolve_actuals();
    let nodes = trace.nodes();
    let mut paired = csp_metrics::compare::PairedComparison::default();
    for ((pa, pb), actual) in preds_a.iter().zip(&preds_b).zip(&actuals) {
        // XOR with the actual bitmap marks the *wrong* bits of each.
        let wrong_a = (*pa ^ *actual).masked(nodes);
        let wrong_b = (*pb ^ *actual).masked(nodes);
        let both_wrong = (wrong_a & wrong_b).count() as u64;
        let only_a_wrong = (wrong_a - wrong_b).count() as u64;
        let only_b_wrong = (wrong_b - wrong_a).count() as u64;
        paired.both_wrong += both_wrong;
        paired.only_a += only_b_wrong; // B wrong, A right: A's win
        paired.only_b += only_a_wrong;
        paired.both_correct += nodes as u64 - both_wrong - only_a_wrong - only_b_wrong;
    }
    paired
}

#[cfg(test)]
mod compare_tests {
    use super::*;
    use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent};

    fn stable(n: usize) -> Trace {
        let mut t = Trace::new(16);
        let readers = SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]);
        for i in 0..n {
            let inv = if i == 0 {
                SharingBitmap::empty()
            } else {
                readers
            };
            let prev = if i == 0 {
                None
            } else {
                Some((NodeId(0), Pc(7)))
            };
            t.push(SharingEvent::new(
                NodeId(0),
                Pc(7),
                LineAddr(3),
                NodeId(1),
                inv,
                prev,
            ));
        }
        t.set_final_readers(LineAddr(3), readers);
        t
    }

    #[test]
    fn scheme_vs_itself_has_no_disagreements() {
        let trace = stable(30);
        let s: Scheme = "union(pid+pc4)2".parse().unwrap();
        let paired = compare_schemes(&trace, &s, &s);
        assert_eq!(paired.only_a, 0);
        assert_eq!(paired.only_b, 0);
        assert_eq!(paired.total(), trace.len() as u64 * 16);
    }

    #[test]
    fn accuracy_matches_confusion_matrix() {
        let trace = stable(30);
        let a: Scheme = "last(pid+pc8)1".parse().unwrap();
        let b: Scheme = "inter(pid+pc8)4".parse().unwrap();
        let paired = compare_schemes(&trace, &a, &b);
        let ma = run_scheme(&trace, &a);
        let acc_a = (ma.tp + ma.tn) as f64 / ma.decisions() as f64;
        assert!((paired.accuracy_a() - acc_a).abs() < 1e-12);
    }

    #[test]
    fn a_strictly_better_shows_significant_wins() {
        // On a stable trace the warm `last` beats a cold-start-heavy
        // depth-4 inter (which abstains for its first 4 intervals).
        let trace = stable(100);
        let a: Scheme = "last(pid+pc8)1".parse().unwrap();
        let b: Scheme = "inter(pid+pc8)4".parse().unwrap();
        let paired = compare_schemes(&trace, &a, &b);
        assert!(paired.only_a > paired.only_b);
    }
}
