//! The evaluation engine: runs schemes over traces.
//!
//! One trace event = one decision. The engine applies the scheme's update
//! mechanism and scores each prediction against the event's *actual* bitmap
//! (the trace's resolved ground truth). Update timing per mode:
//!
//! * `direct` — the invalidation feedback carried by the event itself is
//!   shifted into the *current* event's entry, then the entry predicts.
//!   Events with no previous writer carry no invalidation and update
//!   nothing (keeping direct exactly equivalent to ordered under pure
//!   address indexing, as Section 3.4 requires).
//! * `forwarded` — the feedback is shifted into the *previous writer's*
//!   entry (if any), then the current entry predicts.
//! * `ordered` — the entry predicts, then is immediately trained with the
//!   event's own actual bitmap (known from the trace's first pass): every
//!   later prediction through that entry sees this feedback, the oracle
//!   ordering of Figure 4.
//!
//! There is exactly one evaluation loop. It walks the flat columns of a
//! [`PreparedTrace`] — ground-truth actuals resolved once, per-index key
//! streams computed once — and touches the predictor table through the
//! one-probe entry API ([`PredictorTable::update_and_predict`] and
//! friends). The `*_prepared` entry points share an explicit
//! `PreparedTrace` across many schemes (the sweep case); the plain entry
//! points prepare internally per call, so a single evaluation still pays
//! resolution exactly once.

use crate::{IndexSpec, PredictorTable, PreparedTrace, Scheme, UpdateMode};
use csp_metrics::ConfusionMatrix;
use csp_trace::{SharingBitmap, Trace};

/// Runs `scheme` over `trace`, scoring every decision.
///
/// Prepares the trace internally; sweeps that evaluate many schemes over
/// one trace should prepare once and call [`run_scheme_prepared`].
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn run_scheme(trace: &Trace, scheme: &Scheme) -> ConfusionMatrix {
    run_scheme_prepared(&PreparedTrace::new(trace), scheme)
}

/// Runs `scheme` over an already-prepared trace, scoring every decision.
/// Bit-identical to [`run_scheme`]; the actuals and the key stream come
/// from `prepared`'s shared columns instead of being recomputed.
pub fn run_scheme_prepared(prepared: &PreparedTrace<'_>, scheme: &Scheme) -> ConfusionMatrix {
    let mut matrix = ConfusionMatrix::default();
    let nodes = prepared.nodes();
    drive(prepared, scheme, |_, predicted, actual| {
        matrix.record(predicted, actual, nodes);
    });
    matrix
}

/// Runs `scheme` over `trace` and returns the per-event predictions
/// (e.g. for the forwarding estimator in `csp-sim`).
pub fn predictions_for(trace: &Trace, scheme: &Scheme) -> Vec<SharingBitmap> {
    predictions_for_prepared(&PreparedTrace::new(trace), scheme)
}

/// Per-event predictions over an already-prepared trace (see
/// [`predictions_for`]).
pub fn predictions_for_prepared(
    prepared: &PreparedTrace<'_>,
    scheme: &Scheme,
) -> Vec<SharingBitmap> {
    let mut out = vec![SharingBitmap::empty(); prepared.len()];
    drive(prepared, scheme, |i, predicted, _| {
        out[i] = predicted;
    });
    out
}

/// The single evaluation loop: calls `visit(event_index, predicted,
/// actual)` for every event in order, walking the prepared columns with
/// one table probe per entry touched.
fn drive<F: FnMut(usize, SharingBitmap, SharingBitmap)>(
    prepared: &PreparedTrace<'_>,
    scheme: &Scheme,
    mut visit: F,
) {
    let stream = prepared.key_stream(scheme.index);
    let keys = stream.keys();
    let forward_keys = stream.forward_keys();
    let has_prev = prepared.has_prev();
    let invalidated = prepared.invalidated();
    let actuals = prepared.actuals();
    // Entries are created by the update path only: `direct`/`ordered`
    // tables converge to the distinct predictor keys, `forwarded` tables
    // to the distinct forward keys.
    let capacity = match scheme.update {
        UpdateMode::Forwarded => stream.distinct_forward_keys(),
        UpdateMode::Direct | UpdateMode::Ordered => stream.distinct_keys(),
    };
    let mut table = PredictorTable::with_capacity(scheme, prepared.nodes(), capacity);
    for i in 0..prepared.len() {
        let key = keys[i];
        let predicted = match scheme.update {
            UpdateMode::Direct => {
                if has_prev[i] {
                    table.update_and_predict(key, invalidated[i])
                } else {
                    table.predict(key)
                }
            }
            UpdateMode::Forwarded => {
                // Forward key and predictor key are distinct entries: one
                // probe each is already minimal.
                if has_prev[i] {
                    table.update(forward_keys[i], invalidated[i]);
                }
                table.predict(key)
            }
            UpdateMode::Ordered => table.predict_and_update(key, actuals[i]),
        };
        visit(i, predicted, actuals[i]);
    }
}

/// Confusion matrices for the whole `union`/`inter` family over one index
/// and update mode, evaluated in a single trace pass.
///
/// `union[d-1]` / `inter[d-1]` hold the results for history depth `d`.
/// Depth 1 of either family is exactly `last` prediction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilyResult {
    /// Results for `union(index)d`, indexed by `d - 1`.
    pub union: Vec<ConfusionMatrix>,
    /// Results for `inter(index)d`, indexed by `d - 1`.
    pub inter: Vec<ConfusionMatrix>,
}

/// Evaluates `union` and `inter` at every depth `1..=max_depth` over one
/// `(index, update)` point in a single pass — the workhorse of the
/// design-space sweeps, ~`2 x max_depth` cheaper than separate runs.
///
/// # Panics
///
/// Panics if `max_depth` is out of `1..=MAX_DEPTH`.
pub fn run_history_family(
    trace: &Trace,
    index: IndexSpec,
    update: UpdateMode,
    max_depth: usize,
) -> FamilyResult {
    run_history_family_prepared(&PreparedTrace::new(trace), index, update, max_depth)
}

/// The family evaluator over an already-prepared trace: bit-identical to
/// [`run_history_family`], sharing `prepared`'s actuals and key stream
/// with every other scheme of the sweep.
///
/// # Panics
///
/// Panics if `max_depth` is out of `1..=MAX_DEPTH`.
pub fn run_history_family_prepared(
    prepared: &PreparedTrace<'_>,
    index: IndexSpec,
    update: UpdateMode,
    max_depth: usize,
) -> FamilyResult {
    assert!(
        (1..=crate::MAX_DEPTH).contains(&max_depth),
        "max_depth must be in 1..={}",
        crate::MAX_DEPTH
    );
    let stream = prepared.key_stream(index);
    let nodes = prepared.nodes();
    // Monomorphize the hot loop per depth: a const-generic depth turns
    // the per-decision fold into a fixed-bound, fully unrollable loop
    // with no per-depth branches.
    match max_depth {
        1 => family_sweep::<1>(&stream, update, nodes),
        2 => family_sweep::<2>(&stream, update, nodes),
        3 => family_sweep::<3>(&stream, update, nodes),
        4 => family_sweep::<4>(&stream, update, nodes),
        5 => family_sweep::<5>(&stream, update, nodes),
        6 => family_sweep::<6>(&stream, update, nodes),
        7 => family_sweep::<7>(&stream, update, nodes),
        8 => family_sweep::<8>(&stream, update, nodes),
        _ => unreachable!("max_depth checked above"),
    }
}

/// The slot-major family evaluation at one const depth `MD`.
///
/// The loop runs *slot-major*: each predictor entry's interactions are
/// replayed in event order against one stack-local history window, so
/// there is no table at all — no per-event hash probe, no random entry
/// access — and the pre-gathered slot payloads make every read
/// sequential. This visits exactly the entry states the event-order loop
/// would (an entry's state depends only on earlier events touching the
/// same slot), and the accumulated counts are order-independent sums, so
/// the result is bit-identical to the event-order evaluation. A fresh
/// (all-cold) window also scores exactly like an absent table entry,
/// matching the hashed create-on-update semantics.
fn family_sweep<const MD: usize>(
    stream: &crate::KeyStream,
    update: UpdateMode,
    nodes: usize,
) -> FamilyResult {
    let mut acc = FamilyAcc::<MD>::new(nodes);
    match update {
        UpdateMode::Direct => {
            for slot in 0..stream.slot_count() {
                let mut w = Window::<MD>::new();
                for d in stream.slot_data(slot) {
                    if d.has_prev {
                        w.push(d.feedback);
                    }
                    acc.score(&w, d.actual);
                }
            }
        }
        UpdateMode::Ordered => {
            for slot in 0..stream.slot_count() {
                let mut w = Window::<MD>::new();
                for d in stream.slot_data(slot) {
                    acc.score(&w, d.actual);
                    w.push(d.actual);
                }
            }
        }
        // Forwarded events touch up to two slots (push via the forward
        // key, score via their own), so this walks the stream's merged
        // per-slot op sequence instead of its per-slot event list.
        UpdateMode::Forwarded => {
            for slot in 0..stream.slot_count() {
                let mut w = Window::<MD>::new();
                for (&op, &payload) in stream.slot_ops(slot).iter().zip(stream.slot_op_data(slot)) {
                    if op & 1 == 0 {
                        w.push(payload);
                    } else {
                        acc.score(&w, payload);
                    }
                }
            }
        }
    }
    acc.finalize(nodes)
}

/// A predictor entry's history as a linear shift window: `bitmaps[0]` is
/// the newest stored feedback. Same state as [`crate::HistoryEntry`] but
/// laid out for the family evaluator's fold: pushes shift instead of
/// rotating a ring, and slots never written stay *empty*. Empty is the
/// identity of the union fold and absorbing for the intersection fold, so
/// the scorer needs no occupancy count — folding across all `MD` slots of
/// a partially-filled window reproduces exactly the shallow-entry
/// semantics (union over everything stored; an intersection entry whose
/// history is not yet full predicts nothing).
struct Window<const MD: usize> {
    bitmaps: [SharingBitmap; MD],
}

impl<const MD: usize> Window<MD> {
    fn new() -> Self {
        Window {
            bitmaps: [SharingBitmap::empty(); MD],
        }
    }

    #[inline]
    fn push(&mut self, feedback: SharingBitmap) {
        self.bitmaps.copy_within(0..MD - 1, 1);
        self.bitmaps[0] = feedback;
    }
}

/// Per-depth counters for one family pass, accumulated on the stack.
///
/// Only true positives and predicted positives are counted per depth —
/// the full matrices follow from counter algebra at the end:
/// `fp = predicted − tp`, `fn = actual_total − tp`, and
/// `tn = decisions − tp − fp − fn`. These are exact integer identities
/// over the same per-event popcounts [`ConfusionMatrix::record`] sums, so
/// the finalized matrices are bit-identical to per-event `record` calls.
struct FamilyAcc<const MD: usize> {
    tp_union: [u64; MD],
    predicted_union: [u64; MD],
    tp_inter: [u64; MD],
    predicted_inter: [u64; MD],
    actual_total: u64,
    scored: u64,
    all: SharingBitmap,
}

impl<const MD: usize> FamilyAcc<MD> {
    fn new(nodes: usize) -> Self {
        FamilyAcc {
            tp_union: [0; MD],
            predicted_union: [0; MD],
            tp_inter: [0; MD],
            predicted_inter: [0; MD],
            actual_total: 0,
            scored: 0,
            all: SharingBitmap::all(nodes),
        }
    }

    /// Scores one decision at every depth `1..=MD` against the window's
    /// fold prefixes. The window's empty padding (see [`Window`]) makes
    /// the fold exact for partially-filled histories with no length
    /// bookkeeping.
    #[inline]
    fn score(&mut self, w: &Window<MD>, actual: SharingBitmap) {
        self.scored += 1;
        self.actual_total += actual.count() as u64;
        let mut union = SharingBitmap::empty();
        let mut inter = self.all;
        for d in 0..MD {
            let b = w.bitmaps[d];
            union |= b;
            inter &= b;
            self.tp_union[d] += (union & actual).count() as u64;
            self.predicted_union[d] += union.count() as u64;
            self.tp_inter[d] += (inter & actual).count() as u64;
            self.predicted_inter[d] += inter.count() as u64;
        }
    }

    fn finalize(self, nodes: usize) -> FamilyResult {
        let decisions = self.scored * nodes as u64;
        let matrix = |tp: u64, predicted: u64| {
            let fp = predicted - tp;
            let fn_ = self.actual_total - tp;
            ConfusionMatrix {
                tp,
                fp,
                fn_,
                tn: decisions - tp - fp - fn_,
            }
        };
        FamilyResult {
            union: (0..MD)
                .map(|d| matrix(self.tp_union[d], self.predicted_union[d]))
                .collect(),
            inter: (0..MD)
                .map(|d| matrix(self.tp_inter[d], self.predicted_inter[d]))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredictionFunction;
    use csp_trace::{LineAddr, NodeId, Pc, SharingEvent};

    fn bm(nodes: &[u8]) -> SharingBitmap {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    /// Single-writer producer-consumer trace: node 0 writes line 1, nodes
    /// 1 and 2 always read it.
    fn stable_trace(n_events: usize) -> Trace {
        let mut t = Trace::new(16);
        for i in 0..n_events {
            let (inv, prev) = if i == 0 {
                (SharingBitmap::empty(), None)
            } else {
                (bm(&[1, 2]), Some((NodeId(0), Pc(7))))
            };
            t.push(SharingEvent::new(
                NodeId(0),
                Pc(7),
                LineAddr(1),
                NodeId(0),
                inv,
                prev,
            ));
        }
        t.set_final_readers(LineAddr(1), bm(&[1, 2]));
        t
    }

    /// Two writers alternating on one line, each with its own readers:
    /// the pattern of the paper's Figure 3 where direct update learns the
    /// *other* writer's history.
    fn alternating_trace(pairs: usize) -> Trace {
        let mut t = Trace::new(16);
        let mut prev: Option<(NodeId, Pc)> = None;
        for i in 0..pairs * 2 {
            let (writer, pc, my_readers) = if i % 2 == 0 {
                (NodeId(0), Pc(10), bm(&[4, 5]))
            } else {
                (NodeId(1), Pc(20), bm(&[8, 9]))
            };
            // Invalidation reports the *previous* writer's readers.
            let inv = match prev {
                None => SharingBitmap::empty(),
                Some((NodeId(0), _)) => bm(&[4, 5]),
                Some(_) => bm(&[8, 9]),
            };
            t.push(SharingEvent::new(
                writer,
                pc,
                LineAddr(1),
                NodeId(0),
                inv,
                prev,
            ));
            prev = Some((writer, pc));
            let _ = my_readers;
        }
        // Last writer was node 1 (odd count), its readers are final.
        t.set_final_readers(LineAddr(1), bm(&[8, 9]));
        t
    }

    #[test]
    fn stable_sharing_is_perfectly_predicted_after_warmup() {
        let trace = stable_trace(50);
        for spec in ["last(pid+pc8)1", "union(pid+pc8)2", "inter(pid+pc8)4"] {
            let scheme: Scheme = spec.parse().unwrap();
            let s = run_scheme(&trace, &scheme).screening();
            assert!(s.pvp > 0.9, "{spec}: pvp {}", s.pvp);
            assert!(s.sensitivity > 0.85, "{spec}: sens {}", s.sensitivity);
        }
    }

    #[test]
    fn forwarded_beats_direct_on_alternating_writers() {
        // With pc indexing, direct update trains writer A's entry with
        // writer B's readers; forwarded update routes feedback correctly.
        let trace = alternating_trace(100);
        let direct: Scheme = "last(pid+pc8)1[direct]".parse().unwrap();
        let fwd: Scheme = "last(pid+pc8)1[forwarded]".parse().unwrap();
        let sd = run_scheme(&trace, &direct).screening();
        let sf = run_scheme(&trace, &fwd).screening();
        assert!(
            sf.pvp > sd.pvp + 0.4,
            "forwarded {:.2} should beat direct {:.2}",
            sf.pvp,
            sd.pvp
        );
        // Direct learns exactly the wrong thing here: PVP ~ 0.
        assert!(sd.pvp < 0.1);
        assert!(sf.pvp > 0.9);
    }

    #[test]
    fn ordered_equals_direct_for_pure_address_indexing() {
        for trace in [stable_trace(40), alternating_trace(40)] {
            for func in [PredictionFunction::Union, PredictionFunction::Inter] {
                for depth in [1, 2, 4] {
                    let ix = IndexSpec::new(false, 0, false, 16);
                    let d = Scheme::new(func, ix, depth, UpdateMode::Direct);
                    let o = Scheme::new(func, ix, depth, UpdateMode::Ordered);
                    let f = Scheme::new(func, ix, depth, UpdateMode::Forwarded);
                    let md = run_scheme(&trace, &d);
                    assert_eq!(md, run_scheme(&trace, &o), "{func} depth {depth} ordered");
                    assert_eq!(md, run_scheme(&trace, &f), "{func} depth {depth} forwarded");
                }
            }
        }
    }

    #[test]
    fn predictions_align_with_run_scheme() {
        let trace = stable_trace(20);
        let scheme: Scheme = "union(pid+pc4)2[direct]".parse().unwrap();
        let preds = predictions_for(&trace, &scheme);
        assert_eq!(preds.len(), trace.len());
        let actuals = trace.resolve_actuals();
        let mut m = ConfusionMatrix::default();
        for (p, a) in preds.iter().zip(&actuals) {
            m.record(*p, *a, trace.nodes());
        }
        assert_eq!(m, run_scheme(&trace, &scheme));
    }

    #[test]
    fn decisions_equal_events_times_nodes() {
        let trace = alternating_trace(30);
        let scheme: Scheme = "inter(pid)2[direct]".parse().unwrap();
        let m = run_scheme(&trace, &scheme);
        assert_eq!(m.decisions(), trace.len() as u64 * 16);
    }

    #[test]
    fn family_matches_individual_runs() {
        let trace = alternating_trace(50);
        for update in UpdateMode::ALL {
            let ix = IndexSpec::new(true, 4, false, 2);
            let fam = run_history_family(&trace, ix, update, 4);
            for depth in 1..=4 {
                let u = Scheme::new(PredictionFunction::Union, ix, depth, update);
                let i = Scheme::new(PredictionFunction::Inter, ix, depth, update);
                assert_eq!(
                    fam.union[depth - 1],
                    run_scheme(&trace, &u),
                    "union d{depth} {update}"
                );
                assert_eq!(
                    fam.inter[depth - 1],
                    run_scheme(&trace, &i),
                    "inter d{depth} {update}"
                );
            }
        }
    }

    #[test]
    fn family_depth1_equals_last() {
        let trace = stable_trace(30);
        let ix = IndexSpec::new(true, 8, false, 0);
        let fam = run_history_family(&trace, ix, UpdateMode::Direct, 3);
        let last = Scheme::new(PredictionFunction::Last, ix, 1, UpdateMode::Direct);
        assert_eq!(fam.union[0], run_scheme(&trace, &last));
        assert_eq!(fam.inter[0], run_scheme(&trace, &last));
    }

    #[test]
    fn union_sensitivity_at_least_inter_at_same_depth() {
        let trace = alternating_trace(80);
        let ix = IndexSpec::new(true, 0, false, 4);
        let fam = run_history_family(&trace, ix, UpdateMode::Direct, 4);
        for d in 0..4 {
            let su = fam.union[d].screening();
            let si = fam.inter[d].screening();
            assert!(
                su.sensitivity >= si.sensitivity - 1e-12,
                "depth {}: union sens {} < inter sens {}",
                d + 1,
                su.sensitivity,
                si.sensitivity
            );
        }
    }

    #[test]
    fn baseline_last_tracks_system_wide_bitmap() {
        // With the baseline, the entry is shared by all lines: the
        // prediction is always the most recent invalidation in the system.
        let trace = stable_trace(10);
        let m = run_scheme(&trace, &Scheme::baseline_last());
        // Direct update delivers the event's own feedback before
        // predicting; on this single-line stable trace that is perfect
        // after warmup.
        assert!(m.screening().pvp > 0.9);
    }

    #[test]
    fn empty_trace_yields_empty_matrix() {
        let trace = Trace::new(16);
        let m = run_scheme(&trace, &Scheme::baseline_last());
        assert_eq!(m.decisions(), 0);
    }

    #[test]
    fn prepared_matches_naive_across_schemes_and_updates() {
        let trace = alternating_trace(60);
        let prepared = PreparedTrace::new(&trace);
        for func in ["last", "union", "inter", "overlap-last", "pas"] {
            for update in ["direct", "forwarded", "ordered"] {
                let spec = match func {
                    "overlap-last" => format!("overlap-last(pid+pc4)[{update}]"),
                    "last" => format!("last(pid+pc4)1[{update}]"),
                    _ => format!("{func}(pid+pc4)2[{update}]"),
                };
                let scheme: Scheme = spec.parse().unwrap();
                assert_eq!(
                    run_scheme_prepared(&prepared, &scheme),
                    run_scheme(&trace, &scheme),
                    "{spec}"
                );
                assert_eq!(
                    predictions_for_prepared(&prepared, &scheme),
                    predictions_for(&trace, &scheme),
                    "{spec} predictions"
                );
            }
        }
        // All schemes above share one index: one key stream serves them all.
        assert_eq!(prepared.cached_streams(), 1);
    }

    #[test]
    fn prepared_family_matches_naive_family() {
        let trace = alternating_trace(40);
        let prepared = PreparedTrace::new(&trace);
        let ix = IndexSpec::new(true, 4, false, 2);
        for update in UpdateMode::ALL {
            assert_eq!(
                run_history_family_prepared(&prepared, ix, update, 4),
                run_history_family(&trace, ix, update, 4),
                "{update}"
            );
        }
    }
}

/// Compares two schemes decision-by-decision on the same trace, producing
/// the paired counts McNemar's test needs (see
/// [`csp_metrics::compare::PairedComparison`]). A per-node bit is
/// "correct" when it matches the actual bit.
pub fn compare_schemes(
    trace: &Trace,
    a: &Scheme,
    b: &Scheme,
) -> csp_metrics::compare::PairedComparison {
    // One preparation serves both prediction passes and the actuals —
    // previously this resolved the trace three times over.
    compare_schemes_prepared(&PreparedTrace::new(trace), a, b)
}

/// [`compare_schemes`] over an already-prepared trace.
pub fn compare_schemes_prepared(
    prepared: &PreparedTrace<'_>,
    a: &Scheme,
    b: &Scheme,
) -> csp_metrics::compare::PairedComparison {
    let preds_a = predictions_for_prepared(prepared, a);
    let preds_b = predictions_for_prepared(prepared, b);
    let actuals = prepared.actuals();
    let nodes = prepared.nodes();
    let mut paired = csp_metrics::compare::PairedComparison::default();
    for ((pa, pb), actual) in preds_a.iter().zip(&preds_b).zip(actuals) {
        // XOR with the actual bitmap marks the *wrong* bits of each.
        let wrong_a = (*pa ^ *actual).masked(nodes);
        let wrong_b = (*pb ^ *actual).masked(nodes);
        let both_wrong = (wrong_a & wrong_b).count() as u64;
        let only_a_wrong = (wrong_a - wrong_b).count() as u64;
        let only_b_wrong = (wrong_b - wrong_a).count() as u64;
        paired.both_wrong += both_wrong;
        paired.only_a += only_b_wrong; // B wrong, A right: A's win
        paired.only_b += only_a_wrong;
        paired.both_correct += nodes as u64 - both_wrong - only_a_wrong - only_b_wrong;
    }
    paired
}

#[cfg(test)]
mod compare_tests {
    use super::*;
    use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent};

    fn stable(n: usize) -> Trace {
        let mut t = Trace::new(16);
        let readers = SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]);
        for i in 0..n {
            let inv = if i == 0 {
                SharingBitmap::empty()
            } else {
                readers
            };
            let prev = if i == 0 {
                None
            } else {
                Some((NodeId(0), Pc(7)))
            };
            t.push(SharingEvent::new(
                NodeId(0),
                Pc(7),
                LineAddr(3),
                NodeId(1),
                inv,
                prev,
            ));
        }
        t.set_final_readers(LineAddr(3), readers);
        t
    }

    #[test]
    fn scheme_vs_itself_has_no_disagreements() {
        let trace = stable(30);
        let s: Scheme = "union(pid+pc4)2".parse().unwrap();
        let paired = compare_schemes(&trace, &s, &s);
        assert_eq!(paired.only_a, 0);
        assert_eq!(paired.only_b, 0);
        assert_eq!(paired.total(), trace.len() as u64 * 16);
    }

    #[test]
    fn accuracy_matches_confusion_matrix() {
        let trace = stable(30);
        let a: Scheme = "last(pid+pc8)1".parse().unwrap();
        let b: Scheme = "inter(pid+pc8)4".parse().unwrap();
        let paired = compare_schemes(&trace, &a, &b);
        let ma = run_scheme(&trace, &a);
        let acc_a = (ma.tp + ma.tn) as f64 / ma.decisions() as f64;
        assert!((paired.accuracy_a() - acc_a).abs() < 1e-12);
    }

    /// Pins the prepared-trace rerouting of `compare_schemes` against the
    /// original three-pass spelling (two `predictions_for` calls plus a
    /// separate `resolve_actuals`).
    #[test]
    fn compare_matches_three_pass_spelling() {
        let trace = stable(50);
        let a: Scheme = "last(pid+pc8)1".parse().unwrap();
        let b: Scheme = "inter(pid+pc8)4[forwarded]".parse().unwrap();
        let preds_a = predictions_for(&trace, &a);
        let preds_b = predictions_for(&trace, &b);
        let actuals = trace.resolve_actuals();
        let nodes = trace.nodes();
        let mut expected = csp_metrics::compare::PairedComparison::default();
        for ((pa, pb), actual) in preds_a.iter().zip(&preds_b).zip(&actuals) {
            let wrong_a = (*pa ^ *actual).masked(nodes);
            let wrong_b = (*pb ^ *actual).masked(nodes);
            let both_wrong = (wrong_a & wrong_b).count() as u64;
            let only_a_wrong = (wrong_a - wrong_b).count() as u64;
            let only_b_wrong = (wrong_b - wrong_a).count() as u64;
            expected.both_wrong += both_wrong;
            expected.only_a += only_b_wrong;
            expected.only_b += only_a_wrong;
            expected.both_correct += nodes as u64 - both_wrong - only_a_wrong - only_b_wrong;
        }
        let got = compare_schemes(&trace, &a, &b);
        assert_eq!(got.both_wrong, expected.both_wrong);
        assert_eq!(got.only_a, expected.only_a);
        assert_eq!(got.only_b, expected.only_b);
        assert_eq!(got.both_correct, expected.both_correct);
        // And the prepared form shares one preparation across both passes.
        let prepared = PreparedTrace::new(&trace);
        let via_prepared = compare_schemes_prepared(&prepared, &a, &b);
        assert_eq!(via_prepared.only_a, expected.only_a);
        assert_eq!(via_prepared.only_b, expected.only_b);
    }

    #[test]
    fn a_strictly_better_shows_significant_wins() {
        // On a stable trace the warm `last` beats a cold-start-heavy
        // depth-4 inter (which abstains for its first 4 intervals).
        let trace = stable(100);
        let a: Scheme = "last(pid+pc8)1".parse().unwrap();
        let b: Scheme = "inter(pid+pc8)4".parse().unwrap();
        let paired = compare_schemes(&trace, &a, &b);
        assert!(paired.only_a > paired.only_b);
    }
}
