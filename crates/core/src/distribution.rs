//! Physical distribution of the global predictor (paper Section 3.1,
//! Figure 1).
//!
//! The paper's access-axis argument is that *where* predictor tables live
//! is an implementation choice, not an accuracy choice: distributing the
//! global predictor over the N processors is exactly `pid` indexing, and
//! distributing it over the N directories is exactly `dir` indexing — "the
//! physical distribution into N processors gives equivalent predictions to
//! using log2 N bits of indexing in the global abstraction".
//!
//! This module implements the distributed organizations literally — one
//! physically separate table per processor or per home directory, indexed
//! only by the *remaining* fields — so the equivalence can be tested
//! instead of assumed. [`run_distributed`] must agree bit-for-bit with
//! [`engine::run_scheme`](crate::engine::run_scheme) on the corresponding
//! globally-indexed scheme.

use crate::{IndexSpec, PredictorTable, Scheme, UpdateMode};
use csp_metrics::ConfusionMatrix;
use csp_trace::Trace;

/// Where the per-node predictor slices physically live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Location {
    /// One table per processor, consulted by the local writer
    /// (instruction-based predictors' natural home). Requires `pid` in
    /// the global scheme's index.
    Processors,
    /// One table per home directory, consulted where the line lives
    /// (address-based predictors' natural home). Requires `dir` in the
    /// global scheme's index.
    Directories,
}

/// Runs `scheme` as N physically separate tables at `location`.
///
/// The local tables use the scheme's index minus the field that the
/// physical placement encodes (`pid` for processors, `dir` for
/// directories). History forwarding crosses table boundaries exactly as
/// the protocol would: a forwarded update is delivered to the *previous
/// writer's* processor table (or the line's home table).
///
/// # Panics
///
/// Panics if the scheme's index lacks the field its placement encodes —
/// the configurations Table 1 marks as non-distributable at that location.
pub fn run_distributed(trace: &Trace, scheme: &Scheme, location: Location) -> ConfusionMatrix {
    match location {
        Location::Processors => assert!(
            scheme.index.pid,
            "per-processor distribution requires pid indexing (Table 1)"
        ),
        Location::Directories => assert!(
            scheme.index.dir,
            "per-directory distribution requires dir indexing (Table 1)"
        ),
    }
    // The local tables drop the physically-encoded field from the index.
    let local_index = match location {
        Location::Processors => IndexSpec::new(
            false,
            scheme.index.pc_bits,
            scheme.index.dir,
            scheme.index.addr_bits,
        ),
        Location::Directories => IndexSpec::new(
            scheme.index.pid,
            scheme.index.pc_bits,
            false,
            scheme.index.addr_bits,
        ),
    };
    let local_scheme = Scheme::new(scheme.function, local_index, scheme.depth, scheme.update);

    let nodes = trace.nodes();
    let node_bits = crate::index::node_bits(nodes);
    let actuals = trace.resolve_actuals();
    let mut tables: Vec<PredictorTable> = (0..nodes)
        .map(|_| PredictorTable::new(&local_scheme, nodes))
        .collect();
    let mut matrix = ConfusionMatrix::default();

    for (i, event) in trace.events().iter().enumerate() {
        // Which physical table this event consults.
        let here = match location {
            Location::Processors => event.writer.index(),
            Location::Directories => event.home.index(),
        };
        let key = local_index.key_of(event, node_bits);
        let predicted = match scheme.update {
            UpdateMode::Direct => {
                if event.prev_writer.is_some() {
                    tables[here].update(key, event.invalidated);
                }
                tables[here].predict(key)
            }
            UpdateMode::Forwarded => {
                if let Some((prev_pid, prev_pc)) = event.prev_writer {
                    // The feedback travels to the previous writer's table
                    // (same table when distributed at the home directory).
                    let target = match location {
                        Location::Processors => prev_pid.index(),
                        Location::Directories => event.home.index(),
                    };
                    let fkey =
                        local_index.key(prev_pid, prev_pc, event.home, event.line, node_bits);
                    tables[target].update(fkey, event.invalidated);
                }
                tables[here].predict(key)
            }
            UpdateMode::Ordered => {
                let p = tables[here].predict(key);
                tables[here].update(key, actuals[i]);
                p
            }
        };
        matrix.record(predicted, actuals[i], nodes);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent};

    /// A trace with multiple writers, lines, homes and pcs.
    fn mixed_trace() -> Trace {
        let mut t = Trace::new(16);
        let mut prev: std::collections::HashMap<u64, (NodeId, Pc)> = Default::default();
        for i in 0..400u64 {
            let writer = NodeId((i * 7 % 16) as u8);
            let pc = Pc((i % 9) as u32 * 4);
            let line = i * 3 % 40;
            let home = NodeId((line % 16) as u8);
            let inv = SharingBitmap::from_bits(i.wrapping_mul(0x9E3779B97F4A7C15))
                .masked(16)
                .without(writer);
            t.push(SharingEvent::new(
                writer,
                pc,
                LineAddr(line),
                home,
                inv,
                prev.get(&line).copied(),
            ));
            prev.insert(line, (writer, pc));
        }
        t
    }

    #[test]
    fn processor_distribution_equals_global_pid_indexing() {
        let trace = mixed_trace();
        for spec in [
            "last(pid+pc4)1[direct]",
            "inter(pid+pc4)2[forwarded]",
            "union(pid+add4)4[ordered]",
            "inter(pid+dir+add4)3[direct]",
            "pas(pid+pc2)2[forwarded]",
        ] {
            let scheme: Scheme = spec.parse().unwrap();
            let global = engine::run_scheme(&trace, &scheme);
            let distributed = run_distributed(&trace, &scheme, Location::Processors);
            assert_eq!(global, distributed, "{spec}: distribution must be exact");
        }
    }

    #[test]
    fn directory_distribution_equals_global_dir_indexing() {
        let trace = mixed_trace();
        for spec in [
            "last(dir+add6)1[direct]",
            "union(dir+add4)2[forwarded]",
            "inter(pid+dir)4[ordered]",
            "pas(dir+add2)1[direct]",
        ] {
            let scheme: Scheme = spec.parse().unwrap();
            let global = engine::run_scheme(&trace, &scheme);
            let distributed = run_distributed(&trace, &scheme, Location::Directories);
            assert_eq!(global, distributed, "{spec}: distribution must be exact");
        }
    }

    #[test]
    #[should_panic(expected = "requires pid")]
    fn processor_distribution_needs_pid() {
        let trace = mixed_trace();
        let scheme: Scheme = "last(dir+add6)1".parse().unwrap();
        let _ = run_distributed(&trace, &scheme, Location::Processors);
    }

    #[test]
    #[should_panic(expected = "requires dir")]
    fn directory_distribution_needs_dir() {
        let trace = mixed_trace();
        let scheme: Scheme = "last(pid+pc4)1".parse().unwrap();
        let _ = run_distributed(&trace, &scheme, Location::Directories);
    }
}
