//! The prediction-function axis.

use std::fmt;

/// How a predictor entry's state becomes a predicted reader bitmap
/// (paper Section 3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PredictionFunction {
    /// Predict the most recent feedback bitmap. Identical to `union`/
    /// `inter` at history depth 1; kept as its own name because prior work
    /// (Lai & Falsafi) used it.
    Last,
    /// Predict the union of the stored bitmaps: optimistic, high
    /// sensitivity, lower PVP.
    Union,
    /// Predict the intersection of the stored bitmaps: conservative — bets
    /// only on stable sharing relationships — high PVP, lower sensitivity.
    Inter,
    /// Two-level adaptive PAs prediction (Yeh & Patt) with per-reader
    /// history registers and pattern tables.
    Pas,
    /// Kaxiras & Goodman's guarded last prediction: predict the last bitmap
    /// only if it overlaps the previous one (named in Section 3.5 of the
    /// paper but not simulated there; included here as an extension).
    OverlapLast,
}

impl PredictionFunction {
    /// All functions, in a stable order (useful for sweeps).
    pub const ALL: [PredictionFunction; 5] = [
        PredictionFunction::Last,
        PredictionFunction::Union,
        PredictionFunction::Inter,
        PredictionFunction::Pas,
        PredictionFunction::OverlapLast,
    ];

    /// The notation name used in scheme strings.
    pub fn name(self) -> &'static str {
        match self {
            PredictionFunction::Last => "last",
            PredictionFunction::Union => "union",
            PredictionFunction::Inter => "inter",
            PredictionFunction::Pas => "pas",
            PredictionFunction::OverlapLast => "overlap-last",
        }
    }

    /// Whether this function keeps a bitmap history (as opposed to PAs
    /// pattern state).
    pub fn uses_history(self) -> bool {
        !matches!(self, PredictionFunction::Pas)
    }
}

impl fmt::Display for PredictionFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_paper_notation() {
        assert_eq!(PredictionFunction::Last.to_string(), "last");
        assert_eq!(PredictionFunction::Union.to_string(), "union");
        assert_eq!(PredictionFunction::Inter.to_string(), "inter");
        assert_eq!(PredictionFunction::Pas.to_string(), "pas");
        assert_eq!(PredictionFunction::OverlapLast.to_string(), "overlap-last");
    }

    #[test]
    fn all_lists_every_variant_once() {
        let mut names: Vec<_> = PredictionFunction::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn history_usage() {
        assert!(PredictionFunction::Union.uses_history());
        assert!(!PredictionFunction::Pas.uses_history());
    }
}
