//! A small, fast, non-cryptographic hasher for predictor-table keys.
//!
//! Predictor keys are dense small integers (truncated index fields packed
//! into a `u64`). The design-space sweeps hash hundreds of millions of
//! them, so the default SipHash is a measurable cost. This is the familiar
//! Fx/FNV-style multiplicative hasher — implemented here rather than pulled
//! in as a dependency to stay within the workspace's vendored crate set.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher in the style of rustc's `FxHasher`.
///
/// Not DoS-resistant; use only for internal tables keyed by trusted data.
///
/// # Example
///
/// ```
/// use csp_core::hash::FxHashMap;
/// let mut m: FxHashMap<u64, &str> = FxHashMap::default();
/// m.insert(42, "entry");
/// assert_eq!(m.get(&42), Some(&"entry"));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
        assert_eq!(m.get(&5000), None);
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(12345), h(12345));
        assert_ne!(h(12345), h(12346));
    }

    #[test]
    fn nearby_keys_spread() {
        // Consecutive keys should not collide in the low bits (the bits a
        // HashMap actually uses).
        let mut low_bits = std::collections::HashSet::new();
        for v in 0..256u64 {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            low_bits.insert(hasher.finish() & 0xFF);
        }
        assert!(low_bits.len() > 128, "low-byte collisions too frequent");
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
