//! The access axis: indexing a global predictor.
//!
//! Section 3.1 of the paper abstracts every predictor placement as a single
//! *global predictor* indexed by any combination of `pid`, `pc`, `dir` and
//! `addr`. `pid`/`dir` are used whole or not at all (so the global
//! abstraction can be distributed to processors or directories without
//! changing behaviour); `pc`/`addr` may be truncated to any bit budget.

use csp_trace::{LineAddr, NodeId, Pc, SharingEvent};
use std::fmt;

/// Which fields (and how many bits of each) index the global predictor.
///
/// # Example
///
/// ```
/// use csp_core::IndexSpec;
/// use csp_trace::{NodeId, Pc, LineAddr};
///
/// // The paper's `pid+pc8` (Kaxiras-style instruction-based index).
/// let ix = IndexSpec::new(true, 8, false, 0);
/// assert_eq!(ix.bits(16), 12); // 4 pid bits + 8 pc bits
/// let key = ix.key(NodeId(3), Pc(0x1ab), NodeId(0), LineAddr(999), 4);
/// assert_eq!(key, (3 << 8) | 0xab);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexSpec {
    /// Use the writer's node id (whole).
    pub pid: bool,
    /// Number of low-order pc bits (0 = unused).
    pub pc_bits: u8,
    /// Use the home directory node id (whole).
    pub dir: bool,
    /// Number of low-order line-address bits (0 = unused).
    pub addr_bits: u8,
}

impl IndexSpec {
    /// Maximum bits allowed for each of the truncatable fields.
    pub const MAX_FIELD_BITS: u8 = 24;

    /// Creates an index specification.
    ///
    /// # Panics
    ///
    /// Panics if `pc_bits` or `addr_bits` exceeds
    /// [`MAX_FIELD_BITS`](Self::MAX_FIELD_BITS).
    pub fn new(pid: bool, pc_bits: u8, dir: bool, addr_bits: u8) -> Self {
        assert!(
            pc_bits <= Self::MAX_FIELD_BITS && addr_bits <= Self::MAX_FIELD_BITS,
            "index field limited to {} bits",
            Self::MAX_FIELD_BITS
        );
        IndexSpec {
            pid,
            pc_bits,
            dir,
            addr_bits,
        }
    }

    /// The no-indexing case (Table 1 case 0): a single entry for the whole
    /// system.
    pub fn none() -> Self {
        IndexSpec::new(false, 0, false, 0)
    }

    /// Total index bits on an `nodes`-node machine (`pid`/`dir` each
    /// contribute `ceil(log2(nodes))` bits).
    pub fn bits(&self, nodes: usize) -> u32 {
        let node_bits = node_bits(nodes);
        let mut bits = u32::from(self.pc_bits) + u32::from(self.addr_bits);
        if self.pid {
            bits += node_bits;
        }
        if self.dir {
            bits += node_bits;
        }
        bits
    }

    /// Packs the (truncated) fields into a table key. `node_bits` is
    /// `ceil(log2(nodes))`.
    #[inline]
    pub fn key(&self, writer: NodeId, pc: Pc, home: NodeId, line: LineAddr, node_bits: u32) -> u64 {
        let mut key = 0u64;
        if self.pid {
            key = (key << node_bits) | writer.index() as u64;
        }
        if self.pc_bits > 0 {
            key = (key << self.pc_bits) | u64::from(pc.low_bits(self.pc_bits));
        }
        if self.dir {
            key = (key << node_bits) | home.index() as u64;
        }
        if self.addr_bits > 0 {
            key = (key << self.addr_bits) | line.low_bits(self.addr_bits);
        }
        key
    }

    /// The key a [`SharingEvent`] consults (indexed by the *current*
    /// writer).
    #[inline]
    pub fn key_of(&self, event: &SharingEvent, node_bits: u32) -> u64 {
        self.key(event.writer, event.pc, event.home, event.line, node_bits)
    }

    /// The key the event's feedback is *forwarded to*: the previous
    /// writer's identity with the line's `dir`/`addr` (Figure 3 of the
    /// paper). `None` if the line has no previous writer.
    #[inline]
    pub fn forward_key_of(&self, event: &SharingEvent, node_bits: u32) -> Option<u64> {
        event
            .prev_writer
            .map(|(pid, pc)| self.key(pid, pc, event.home, event.line, node_bits))
    }

    /// The case number (0–15) of the paper's Table 1: bit 3 = `pid`,
    /// bit 2 = `pc`, bit 1 = `dir`, bit 0 = `addr`.
    pub fn table1_case(&self) -> u8 {
        (u8::from(self.pid) << 3)
            | (u8::from(self.pc_bits > 0) << 2)
            | (u8::from(self.dir) << 1)
            | u8::from(self.addr_bits > 0)
    }

    /// Whether the global predictor can be distributed across processors
    /// (requires `pid` indexing; Table 1).
    pub fn distributable_at_processors(&self) -> bool {
        self.pid
    }

    /// Whether the global predictor can be distributed across directories
    /// (requires `dir` indexing; Table 1).
    pub fn distributable_at_directories(&self) -> bool {
        self.dir
    }

    /// Whether only a centralized implementation exists (Table 1 cases 0,
    /// 1, 4, 5: neither `pid` nor `dir` in the index).
    pub fn centralized_only(&self) -> bool {
        !self.pid && !self.dir
    }

    /// Pure address-based indexing (only `dir`/`addr` components): the
    /// schemes for which the paper proves direct, forwarded and ordered
    /// update equivalent (Section 3.4).
    pub fn is_pure_address(&self) -> bool {
        !self.pid && self.pc_bits == 0
    }
}

/// `ceil(log2(nodes))`, the bits contributed by a whole `pid`/`dir` field.
/// This is the `node_bits` argument of [`IndexSpec::key`] and friends.
///
/// # Panics
///
/// Panics if `nodes` is zero.
pub fn node_bits(nodes: usize) -> u32 {
    assert!(nodes > 0, "machine must have at least one node");
    usize::BITS - (nodes - 1).leading_zeros().min(usize::BITS)
}

impl fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, "+")
            }
        };
        if self.pid {
            sep(f)?;
            write!(f, "pid")?;
        }
        if self.pc_bits > 0 {
            sep(f)?;
            write!(f, "pc{}", self.pc_bits)?;
        }
        if self.dir {
            sep(f)?;
            write!(f, "dir")?;
        }
        if self.addr_bits > 0 {
            sep(f)?;
            write!(f, "add{}", self.addr_bits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::SharingBitmap;
    use proptest::prelude::*;

    #[test]
    fn node_bits_is_ceil_log2() {
        assert_eq!(node_bits(1), 0);
        assert_eq!(node_bits(2), 1);
        assert_eq!(node_bits(3), 2);
        assert_eq!(node_bits(16), 4);
        assert_eq!(node_bits(17), 5);
        assert_eq!(node_bits(64), 6);
    }

    #[test]
    fn bits_sums_active_fields() {
        assert_eq!(IndexSpec::none().bits(16), 0);
        assert_eq!(IndexSpec::new(true, 0, true, 0).bits(16), 8);
        assert_eq!(IndexSpec::new(true, 8, false, 6).bits(16), 18);
        assert_eq!(IndexSpec::new(false, 0, true, 14).bits(16), 18);
    }

    #[test]
    fn key_packs_fields_in_order() {
        let ix = IndexSpec::new(true, 4, true, 4);
        let key = ix.key(NodeId(0xA), Pc(0xBB), NodeId(0xC), LineAddr(0xDD), 4);
        // pid(4) | pc(4) | dir(4) | addr(4): 0xA, 0xB, 0xC, 0xD.
        assert_eq!(key, 0xABCD);
    }

    #[test]
    fn unused_fields_do_not_affect_key() {
        let ix = IndexSpec::new(false, 0, false, 8);
        let k1 = ix.key(NodeId(0), Pc(1), NodeId(2), LineAddr(0x34), 4);
        let k2 = ix.key(NodeId(9), Pc(7), NodeId(5), LineAddr(0x34), 4);
        assert_eq!(k1, k2);
        assert_eq!(k1, 0x34);
    }

    #[test]
    fn forward_key_uses_previous_writer() {
        let ix = IndexSpec::new(true, 8, false, 0);
        let e = SharingEvent::new(
            NodeId(1),
            Pc(0x10),
            LineAddr(5),
            NodeId(0),
            SharingBitmap::empty(),
            Some((NodeId(2), Pc(0x20))),
        );
        assert_eq!(ix.key_of(&e, 4), (1 << 8) | 0x10);
        assert_eq!(ix.forward_key_of(&e, 4), Some((2 << 8) | 0x20));
        let first = SharingEvent::new(
            NodeId(1),
            Pc(0x10),
            LineAddr(5),
            NodeId(0),
            SharingBitmap::empty(),
            None,
        );
        assert_eq!(ix.forward_key_of(&first, 4), None);
    }

    #[test]
    fn table1_cases() {
        assert_eq!(IndexSpec::none().table1_case(), 0);
        assert_eq!(IndexSpec::new(false, 0, false, 8).table1_case(), 1);
        assert_eq!(IndexSpec::new(false, 0, true, 0).table1_case(), 2);
        assert_eq!(IndexSpec::new(false, 8, false, 0).table1_case(), 4);
        assert_eq!(IndexSpec::new(true, 0, false, 0).table1_case(), 8);
        assert_eq!(IndexSpec::new(true, 8, true, 8).table1_case(), 15);
    }

    #[test]
    fn distribution_rules_match_table1() {
        let centralized = IndexSpec::new(false, 8, false, 8);
        assert!(centralized.centralized_only());
        let at_dir = IndexSpec::new(false, 0, true, 8);
        assert!(at_dir.distributable_at_directories());
        assert!(!at_dir.distributable_at_processors());
        let at_proc = IndexSpec::new(true, 8, false, 0);
        assert!(at_proc.distributable_at_processors());
        assert!(!at_proc.distributable_at_directories());
    }

    #[test]
    fn pure_address_detection() {
        assert!(IndexSpec::new(false, 0, true, 8).is_pure_address());
        assert!(IndexSpec::new(false, 0, false, 16).is_pure_address());
        assert!(IndexSpec::none().is_pure_address());
        assert!(!IndexSpec::new(true, 0, true, 8).is_pure_address());
        assert!(!IndexSpec::new(false, 2, true, 8).is_pure_address());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            IndexSpec::new(true, 8, false, 6).to_string(),
            "pid+pc8+add6"
        );
        assert_eq!(IndexSpec::new(false, 0, true, 14).to_string(), "dir+add14");
        assert_eq!(IndexSpec::none().to_string(), "");
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn rejects_oversized_fields() {
        let _ = IndexSpec::new(false, 30, false, 0);
    }

    proptest! {
        /// Keys fit in `bits(nodes)` bits.
        #[test]
        fn prop_key_within_bits(
            pid: bool, pc_bits in 0u8..=16, dir: bool, addr_bits in 0u8..=16,
            w in 0u8..16, pc: u32, h in 0u8..16, line: u64,
        ) {
            let ix = IndexSpec::new(pid, pc_bits, dir, addr_bits);
            let key = ix.key(NodeId(w), Pc(pc), NodeId(h), LineAddr(line), 4);
            let bits = ix.bits(16);
            if bits < 64 {
                prop_assert!(key < (1u64 << bits));
            }
        }

        /// Two events differing only in an unused field collide.
        #[test]
        fn prop_unused_pid_ignored(pc: u32, line: u64, w1 in 0u8..16, w2 in 0u8..16) {
            let ix = IndexSpec::new(false, 8, false, 8);
            let k1 = ix.key(NodeId(w1), Pc(pc), NodeId(0), LineAddr(line), 4);
            let k2 = ix.key(NodeId(w2), Pc(pc), NodeId(0), LineAddr(line), 4);
            prop_assert_eq!(k1, k2);
        }
    }
}
