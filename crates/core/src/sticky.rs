//! Sticky-spatial prediction (Bilir et al., "Multicast Snooping", ISCA
//! 1999 — the paper's reference \[4\]).
//!
//! The paper's footnote 2 excludes this scheme from its taxonomy because
//! "the bitmaps of neighboring cache lines also play a part", but notes
//! "our work can be expanded to include such schemes". This module is that
//! expansion.
//!
//! The predictor is address-indexed with two twists:
//!
//! * **sticky masks** — instead of storing raw feedback bitmaps, each
//!   entry maintains a mask that nodes *join* on any appearance in
//!   feedback but only *leave* after missing from [`STICKY_TOLERANCE`]
//!   consecutive feedbacks. The mask forgives one skipped interval, which
//!   plain `last` prediction punishes immediately.
//! * **spatial widening** — the prediction for line *L* is the union of
//!   the sticky masks of all lines within a configurable radius of *L*.
//!   Readers of adjacent lines are likely readers of this one (block
//!   partitioning puts neighbouring lines in the same consumer's
//!   working set).
//!
//! Because the scheme is purely address-indexed, the paper's Section 3.4
//! argument applies: direct, forwarded and ordered update coincide, so a
//! single (direct) update path is provided.

use crate::hash::FxHashMap;
use csp_metrics::ConfusionMatrix;
use csp_trace::{NodeId, SharingBitmap, Trace};

/// Feedbacks a mask member may miss consecutively before being dropped.
pub const STICKY_TOLERANCE: u8 = 2;

/// One sticky entry: the persistent mask plus per-node absence counters.
#[derive(Clone, Debug)]
struct StickyEntry {
    mask: SharingBitmap,
    misses: [u8; csp_trace::MAX_NODES],
}

impl Default for StickyEntry {
    fn default() -> Self {
        StickyEntry {
            mask: SharingBitmap::empty(),
            misses: [0; csp_trace::MAX_NODES],
        }
    }
}

impl StickyEntry {
    fn update(&mut self, feedback: SharingBitmap, nodes: usize) {
        for n in 0..nodes {
            let node = NodeId(n as u8);
            if feedback.contains(node) {
                self.mask.insert(node);
                self.misses[n] = 0;
            } else if self.mask.contains(node) {
                self.misses[n] += 1;
                if self.misses[n] >= STICKY_TOLERANCE {
                    self.mask.remove(node);
                    self.misses[n] = 0;
                }
            }
        }
    }
}

/// Configuration of a sticky-spatial predictor.
///
/// # Example
///
/// ```
/// use csp_core::sticky::StickySpatial;
/// let p = StickySpatial::new(16, 1);
/// assert_eq!(p.addr_bits(), 16);
/// assert_eq!(p.radius(), 1);
/// // Entry: a 16-bit mask + 16 two-bit absence counters.
/// assert_eq!(p.size_log2_bits(16), 16 + 6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StickySpatial {
    addr_bits: u8,
    radius: u64,
}

impl StickySpatial {
    /// Creates a predictor indexed by `addr_bits` low line-address bits,
    /// widening each prediction with neighbours within `radius` lines.
    ///
    /// # Panics
    ///
    /// Panics if `addr_bits` is zero or exceeds
    /// [`IndexSpec::MAX_FIELD_BITS`](crate::IndexSpec::MAX_FIELD_BITS).
    pub fn new(addr_bits: u8, radius: u64) -> Self {
        assert!(
            addr_bits > 0 && addr_bits <= crate::IndexSpec::MAX_FIELD_BITS,
            "addr_bits must be in 1..={}",
            crate::IndexSpec::MAX_FIELD_BITS
        );
        StickySpatial { addr_bits, radius }
    }

    /// The address index width.
    pub fn addr_bits(&self) -> u8 {
        self.addr_bits
    }

    /// The spatial widening radius in lines (0 = no widening: a plain
    /// sticky address predictor).
    pub fn radius(&self) -> u64 {
        self.radius
    }

    /// Cost figure on the paper's scale: `ceil(log2(total bits))` for
    /// `2^addr_bits` entries of one mask plus per-node 2-bit counters.
    pub fn size_log2_bits(&self, nodes: usize) -> u32 {
        let entry_bits = (nodes + nodes * 2) as u64;
        let bits = entry_bits << self.addr_bits;
        63 - bits.leading_zeros() + u32::from(!bits.is_power_of_two())
    }

    /// Runs the predictor over a trace, scoring every decision.
    pub fn run(&self, trace: &Trace) -> ConfusionMatrix {
        let nodes = trace.nodes();
        let mask = if self.addr_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.addr_bits) - 1
        };
        let actuals = trace.resolve_actuals();
        let mut table: FxHashMap<u64, StickyEntry> = FxHashMap::default();
        let mut matrix = ConfusionMatrix::default();
        for (event, &actual) in trace.events().iter().zip(&actuals) {
            let key = event.line.0 & mask;
            // Direct update (== forwarded == ordered for address indexing).
            if event.prev_writer.is_some() {
                table
                    .entry(key)
                    .or_default()
                    .update(event.invalidated, nodes);
            }
            // Spatial union over the neighbourhood.
            let mut predicted = SharingBitmap::empty();
            let line = event.line.0;
            for neighbour in line.saturating_sub(self.radius)..=line.saturating_add(self.radius) {
                if let Some(e) = table.get(&(neighbour & mask)) {
                    predicted |= e.mask;
                }
            }
            matrix.record(predicted.without(event.writer), actual, nodes);
        }
        matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::{LineAddr, Pc, SharingEvent};

    fn bm(nodes: &[u8]) -> SharingBitmap {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    fn event(line: u64, inv: &[u8], first: bool) -> SharingEvent {
        SharingEvent::new(
            NodeId(0),
            Pc(1),
            LineAddr(line),
            NodeId(0),
            bm(inv),
            if first {
                None
            } else {
                Some((NodeId(0), Pc(1)))
            },
        )
    }

    /// A stable single-line trace.
    fn stable_trace(n: usize, readers: &[u8]) -> Trace {
        let mut t = Trace::new(16);
        for i in 0..n {
            t.push(event(10, if i == 0 { &[] } else { readers }, i == 0));
        }
        t.set_final_readers(LineAddr(10), bm(readers));
        t
    }

    #[test]
    fn sticky_entry_joins_immediately_leaves_slowly() {
        let mut e = StickyEntry::default();
        e.update(bm(&[3]), 16);
        assert!(e.mask.contains(NodeId(3)));
        // One absent feedback: still in the mask (sticky).
        e.update(bm(&[5]), 16);
        assert!(e.mask.contains(NodeId(3)));
        assert!(e.mask.contains(NodeId(5)));
        // Second consecutive absence: dropped.
        e.update(bm(&[5]), 16);
        assert!(!e.mask.contains(NodeId(3)));
    }

    #[test]
    fn absence_counter_resets_on_reappearance() {
        let mut e = StickyEntry::default();
        e.update(bm(&[3]), 16);
        e.update(bm(&[]), 16); // miss 1
        e.update(bm(&[3]), 16); // back: counter resets
        e.update(bm(&[]), 16); // miss 1 again
        assert!(e.mask.contains(NodeId(3)));
    }

    #[test]
    fn predicts_stable_readers() {
        let trace = stable_trace(30, &[2, 6]);
        let m = StickySpatial::new(16, 0).run(&trace);
        let s = m.screening();
        assert!(s.pvp > 0.9, "pvp {}", s.pvp);
        assert!(s.sensitivity > 0.9, "sens {}", s.sensitivity);
    }

    #[test]
    fn stickiness_forgives_single_skips() {
        // Reader 2 skips every third interval; plain `last` is wrong on
        // the interval after each skip, sticky is not.
        let mut t = Trace::new(16);
        for i in 0..60 {
            let readers: &[u8] = if i % 3 == 2 { &[] } else { &[2] };
            t.push(event(10, if i == 0 { &[] } else { readers }, i == 0));
        }
        let sticky = StickySpatial::new(16, 0).run(&t).screening();
        let last = crate::engine::run_scheme(&t, &"last(add16)1".parse().unwrap()).screening();
        assert!(
            sticky.sensitivity > last.sensitivity + 0.2,
            "sticky {} should beat last {} on skipping readers",
            sticky.sensitivity,
            last.sensitivity
        );
    }

    #[test]
    fn spatial_widening_predicts_neighbours_cold_lines() {
        // Lines 10..20 all share the same reader; line 15 is written once
        // at the end. With radius 1 its very first prediction can borrow
        // the neighbours' masks.
        let mut t = Trace::new(16);
        for round in 0..5 {
            for line in 10..20u64 {
                if line == 15 {
                    continue;
                }
                let first = round == 0;
                t.push(event(line, if first { &[] } else { &[4] }, first));
            }
        }
        t.push(event(15, &[], true));
        for line in 10..20u64 {
            t.set_final_readers(LineAddr(line), bm(&[4]));
        }
        let wide = StickySpatial::new(16, 1).run(&t);
        let narrow = StickySpatial::new(16, 0).run(&t);
        assert!(
            wide.screening().sensitivity > narrow.screening().sensitivity,
            "widening should capture the cold line's reader"
        );
    }

    #[test]
    fn writer_never_predicted() {
        // Entry masks can contain the writer (it may read other intervals)
        // but the emitted prediction must not target the writer itself.
        let mut t = Trace::new(16);
        for i in 0..10 {
            t.push(event(10, if i == 0 { &[] } else { &[0, 2] }, i == 0));
        }
        t.set_final_readers(LineAddr(10), bm(&[0, 2]));
        // The writer of every event is node 0; prediction excludes it, so
        // node 0 contributes no false positives.
        let m = StickySpatial::new(16, 0).run(&t);
        let max_fp_from_node0 = 0;
        // All FPs would have to come from node 2 mispredictions; on this
        // stable trace there are none.
        assert_eq!(m.fp, max_fp_from_node0);
    }

    #[test]
    #[should_panic(expected = "addr_bits")]
    fn zero_addr_bits_rejected() {
        let _ = StickySpatial::new(0, 1);
    }

    #[test]
    fn cost_model() {
        // 2^8 entries x 48 bits = 12288 -> ceil(log2) = 14.
        assert_eq!(StickySpatial::new(8, 1).size_log2_bits(16), 14);
    }
}
