//! The prepared-evaluation layer: per-trace resolution and per-index key
//! streams, computed once and shared across every scheme of a sweep.
//!
//! The naive evaluation path ([`crate::engine::run_scheme`]) pays three
//! per-call costs that a design-space sweep repeats hundreds of times per
//! trace: it re-resolves the ground-truth actuals (a hash pass over the
//! whole trace), recomputes `key_of`/`forward_key_of` for every event even
//! when dozens of schemes share one [`IndexSpec`], and probes the predictor
//! table twice per event. This module hoists the first two out of the
//! per-event loop:
//!
//! * [`KeyStream`] — the predictor keys (and forward keys) of every event
//!   under one [`IndexSpec`], as flat `Vec<u64>` columns, plus the
//!   distinct-key counts that size predictor tables up front and a dense
//!   slot remap that lets hot loops replace hashed table probes with
//!   array indexing;
//! * [`PreparedTrace`] — a [`ResolvedTrace`] (actuals / feedback /
//!   previous-writer columns, resolved once) plus a concurrent cache of
//!   [`KeyStream`]s keyed by [`IndexSpec`], shared by reference across
//!   every scheme in a sweep.
//!
//! The prepared engine entry points
//! ([`crate::engine::run_scheme_prepared`],
//! [`crate::engine::run_history_family_prepared`]) consume these columns
//! and are bit-identical to the naive path — the equivalence suite in
//! `tests/prepared_equivalence.rs` pins that.

use crate::hash::FxBuildHasher;
use crate::IndexSpec;
use csp_trace::{ResolvedTrace, SharingBitmap, Trace};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Most key streams a [`PreparedTrace`] keeps cached at once. Sized for
/// the sweep planners, which walk the design space in index clusters and
/// evict behind themselves; the cap only matters for callers that touch
/// many indexes without evicting.
const STREAM_CACHE_CAP: usize = 8;

/// The key columns of one trace under one [`IndexSpec`]: everything the
/// per-event loop needs from the access axis, computed in a single pass.
///
/// # Example
///
/// ```
/// use csp_core::{IndexSpec, KeyStream};
/// use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};
///
/// let mut t = Trace::new(16);
/// t.push(SharingEvent::new(NodeId(3), Pc(0x1ab), LineAddr(9), NodeId(0),
///                          SharingBitmap::empty(), None));
/// let stream = KeyStream::compute(&t, IndexSpec::new(true, 8, false, 0));
/// assert_eq!(stream.keys(), &[(3 << 8) | 0xab]);
/// assert_eq!(stream.distinct_keys(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct KeyStream {
    index: IndexSpec,
    keys: Vec<u64>,
    forward_keys: Vec<u64>,
    slots: Vec<u32>,
    forward_slots: Vec<u32>,
    slot_count: usize,
    distinct_keys: usize,
    distinct_forward_keys: usize,
    slot_starts: Vec<u32>,
    slot_events: Vec<u32>,
    slot_data: Vec<SlotData>,
    op_starts: Vec<u32>,
    ops: Vec<u32>,
    op_data: Vec<SharingBitmap>,
}

/// Everything the slot-major family loop needs about one event, gathered
/// into slot order so the hot loop streams through memory instead of
/// chasing event indices back into the event-order columns.
#[derive(Clone, Copy, Debug)]
pub struct SlotData {
    /// The event's ground-truth actual bitmap (what to score, and the
    /// *ordered*-update feedback).
    pub actual: SharingBitmap,
    /// The event's invalidation feedback (the *direct*-update feedback).
    pub feedback: SharingBitmap,
    /// Whether the event has a previous writer (gates the direct-update
    /// push).
    pub has_prev: bool,
}

impl KeyStream {
    /// Computes the key columns of `trace` under `index`: one
    /// [`IndexSpec::key_of`] / [`IndexSpec::forward_key_of`] pass, plus
    /// the distinct-key counts used as predictor-table capacity hints.
    ///
    /// This is the *single* key-derivation implementation in the
    /// workspace: the offline engine, the sweep planner and the online
    /// serving engine (`csp-serve`) all replay keys from here, so they
    /// cannot drift apart.
    pub fn compute(trace: &Trace, index: IndexSpec) -> Self {
        Self::compute_with_actuals(trace, index, &trace.resolve_actuals())
    }

    /// [`KeyStream::compute`] with the trace's actuals already resolved —
    /// the entry point [`PreparedTrace::key_stream`] uses so that one
    /// resolution pass serves every index of a sweep. `actuals` must be
    /// `trace.resolve_actuals()` (one bitmap per event).
    ///
    /// # Panics
    ///
    /// Panics if `actuals` is not one bitmap per trace event.
    pub fn compute_with_actuals(
        trace: &Trace,
        index: IndexSpec,
        actuals: &[SharingBitmap],
    ) -> Self {
        assert_eq!(
            actuals.len(),
            trace.len(),
            "actuals must be one bitmap per event"
        );
        let node_bits = crate::index::node_bits(trace.nodes());
        let mut keys = Vec::with_capacity(trace.len());
        let mut forward_keys = Vec::with_capacity(trace.len());
        let mut slots = Vec::with_capacity(trace.len());
        let mut forward_slots = Vec::with_capacity(trace.len());
        // One remap over the *union* of predictor and forward keys assigns
        // each distinct key a dense slot id: a forwarded update and a later
        // prediction through the same index value must land on the same
        // entry, so both key kinds share one id space.
        let mut remap: HashMap<u64, u32, FxBuildHasher> = HashMap::default();
        let mut distinct_keys = 0usize;
        // Which slots have been seen through each key kind, indexed by
        // slot id — distinct-count bookkeeping without a second hash
        // probe per event.
        let mut seen_primary: Vec<bool> = Vec::new();
        let mut seen_forward: Vec<bool> = Vec::new();
        let mut distinct_forward = 0usize;
        let mut has_prev = Vec::with_capacity(trace.len());
        for event in trace.events() {
            let key = index.key_of(event, node_bits);
            let next = remap.len() as u32;
            let slot = match remap.entry(key) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(v) => {
                    seen_primary.push(false);
                    seen_forward.push(false);
                    *v.insert(next)
                }
            };
            if !seen_primary[slot as usize] {
                seen_primary[slot as usize] = true;
                distinct_keys += 1;
            }
            keys.push(key);
            slots.push(slot);
            // Slots without a previous writer hold 0 and are never read:
            // every consumer gates on the event's `has_prev` column.
            match index.forward_key_of(event, node_bits) {
                Some(fkey) => {
                    let next = remap.len() as u32;
                    let fslot = match remap.entry(fkey) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(v) => {
                            seen_primary.push(false);
                            seen_forward.push(false);
                            *v.insert(next)
                        }
                    };
                    if !seen_forward[fslot as usize] {
                        seen_forward[fslot as usize] = true;
                        distinct_forward += 1;
                    }
                    forward_keys.push(fkey);
                    forward_slots.push(fslot);
                    has_prev.push(true);
                }
                None => {
                    forward_keys.push(0);
                    forward_slots.push(0);
                    has_prev.push(false);
                }
            }
        }
        let slot_count = remap.len();
        let (slot_starts, slot_events) = events_by_slot(&slots, slot_count);
        let (op_starts, ops) = ops_by_slot(&slots, &forward_slots, &has_prev, slot_count);
        // Gather the per-event payloads into slot/op order once, so the
        // slot-major loops stream through contiguous memory instead of
        // scattering loads across the event-order columns for every
        // scheme of the sweep.
        let events = trace.events();
        let slot_data = slot_events
            .iter()
            .map(|&e| {
                let e = e as usize;
                SlotData {
                    actual: actuals[e],
                    feedback: events[e].invalidated,
                    has_prev: has_prev[e],
                }
            })
            .collect();
        let op_data = ops
            .iter()
            .map(|&op| {
                let e = (op >> 1) as usize;
                if op & 1 == 0 {
                    events[e].invalidated
                } else {
                    actuals[e]
                }
            })
            .collect();
        KeyStream {
            index,
            keys,
            forward_keys,
            slots,
            forward_slots,
            slot_count,
            distinct_keys,
            distinct_forward_keys: distinct_forward,
            slot_starts,
            slot_events,
            slot_data,
            op_starts,
            ops,
            op_data,
        }
    }

    /// The index specification this stream was computed for.
    #[inline]
    pub fn index(&self) -> IndexSpec {
        self.index
    }

    /// The predictor key of every event ([`IndexSpec::key_of`]), in event
    /// order.
    #[inline]
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The forward key of every event ([`IndexSpec::forward_key_of`]), in
    /// event order. A slot is meaningful only where the event has a
    /// previous writer (see [`ResolvedTrace::has_prev`]); other slots are 0.
    #[inline]
    pub fn forward_keys(&self) -> &[u64] {
        &self.forward_keys
    }

    /// Number of events in the stream.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` for an empty trace.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The dense slot id of every event's predictor key, in event order.
    ///
    /// Slot ids remap the union of predictor and forward keys onto
    /// `0..slot_count()`: two events share a slot iff they share a key, and
    /// a forward key equal to some predictor key shares that key's slot.
    /// Hot loops use them to index a flat `Vec` of entries instead of
    /// probing a hash table per event.
    #[inline]
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }

    /// The dense slot id of every event's forward key. Meaningful only
    /// where the event has a previous writer (like
    /// [`KeyStream::forward_keys`]); other slots hold 0 and are never read.
    #[inline]
    pub fn forward_slots(&self) -> &[u32] {
        &self.forward_slots
    }

    /// Number of dense slots: the distinct keys in the union of the
    /// predictor and forward key columns — the length of the flat entry
    /// table the slot columns index.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// Number of distinct predictor keys the trace consults — the entry
    /// count a `direct`/`ordered` table converges to, used as the
    /// capacity hint of [`crate::PredictorTable::with_capacity`].
    #[inline]
    pub fn distinct_keys(&self) -> usize {
        self.distinct_keys
    }

    /// Number of distinct forward keys — the entry count a `forwarded`
    /// table's update path converges to.
    #[inline]
    pub fn distinct_forward_keys(&self) -> usize {
        self.distinct_forward_keys
    }

    /// The events of `slot`, in event order — the slot-major view of the
    /// stream. An event's predictor-table interactions touch only its own
    /// slot's entry (for `direct`/`ordered` updates), so a loop over
    /// slots that replays each slot's events against one *local* entry
    /// visits exactly the entry states the event-order loop would, with
    /// the entry register-resident instead of randomly probed.
    #[inline]
    pub fn slot_events(&self, slot: usize) -> &[u32] {
        &self.slot_events[self.slot_starts[slot] as usize..self.slot_starts[slot + 1] as usize]
    }

    /// The payloads of [`KeyStream::slot_events`] — actual, feedback and
    /// previous-writer flag of each of `slot`'s events, in event order,
    /// pre-gathered so the slot-major loop reads contiguously.
    #[inline]
    pub fn slot_data(&self, slot: usize) -> &[SlotData] {
        &self.slot_data[self.slot_starts[slot] as usize..self.slot_starts[slot + 1] as usize]
    }

    /// The table interactions targeting `slot` under *forwarded* update,
    /// in event order: `op >> 1` is the event index, and the low bit
    /// distinguishes a feedback push through the event's forward key
    /// (`0`) from a prediction/score through its predictor key (`1`). A
    /// forwarded event touches up to two slots (update via forward key,
    /// predict via its own), so the slot-major view needs this merged
    /// sequence rather than [`KeyStream::slot_events`].
    #[inline]
    pub fn slot_ops(&self, slot: usize) -> &[u32] {
        &self.ops[self.op_starts[slot] as usize..self.op_starts[slot + 1] as usize]
    }

    /// The payloads of [`KeyStream::slot_ops`], parallel to them: a push
    /// op's invalidation feedback, or a score op's actual bitmap.
    #[inline]
    pub fn slot_op_data(&self, slot: usize) -> &[SharingBitmap] {
        &self.op_data[self.op_starts[slot] as usize..self.op_starts[slot + 1] as usize]
    }
}

/// CSR layout of event indices grouped by slot, preserving event order
/// within each slot.
fn events_by_slot(slots: &[u32], slot_count: usize) -> (Vec<u32>, Vec<u32>) {
    let mut starts = vec![0u32; slot_count + 1];
    for &s in slots {
        starts[s as usize + 1] += 1;
    }
    for i in 0..slot_count {
        starts[i + 1] += starts[i];
    }
    let mut cursor = starts.clone();
    let mut events = vec![0u32; slots.len()];
    for (e, &s) in slots.iter().enumerate() {
        let c = &mut cursor[s as usize];
        events[*c as usize] = e as u32;
        *c += 1;
    }
    (starts, events)
}

/// CSR layout of forwarded-update table interactions grouped by target
/// slot: for each event, a push op through its forward slot (where it has
/// a previous writer) followed by a score op through its own slot. The
/// scatter walks events in order, so within a slot ops stay in event
/// order and a same-event push precedes its score — exactly the
/// event-order update-then-predict sequence.
fn ops_by_slot(
    slots: &[u32],
    forward_slots: &[u32],
    has_prev: &[bool],
    slot_count: usize,
) -> (Vec<u32>, Vec<u32>) {
    let mut starts = vec![0u32; slot_count + 1];
    for e in 0..slots.len() {
        if has_prev[e] {
            starts[forward_slots[e] as usize + 1] += 1;
        }
        starts[slots[e] as usize + 1] += 1;
    }
    for i in 0..slot_count {
        starts[i + 1] += starts[i];
    }
    let mut cursor = starts.clone();
    let mut ops = vec![0u32; starts[slot_count] as usize];
    for e in 0..slots.len() {
        if has_prev[e] {
            let c = &mut cursor[forward_slots[e] as usize];
            ops[*c as usize] = (e as u32) << 1;
            *c += 1;
        }
        let c = &mut cursor[slots[e] as usize];
        ops[*c as usize] = ((e as u32) << 1) | 1;
        *c += 1;
    }
    (starts, ops)
}

/// A trace prepared for repeated evaluation: ground truth resolved once,
/// key streams computed once per [`IndexSpec`] and shared by reference.
///
/// A `PreparedTrace` is `Sync`: sweep workers on different threads share
/// one instance per benchmark, and the key-stream cache hands each of them
/// an [`Arc`] to the same columns.
///
/// # Example
///
/// ```
/// use csp_core::{engine, PreparedTrace, Scheme};
/// use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};
///
/// let mut t = Trace::new(16);
/// t.push(SharingEvent::new(NodeId(0), Pc(7), LineAddr(3), NodeId(1),
///                          SharingBitmap::empty(), None));
/// let prepared = PreparedTrace::new(&t);
/// let scheme: Scheme = "union(pid+pc8)2[direct]".parse()?;
/// // Bit-identical to engine::run_scheme(&t, &scheme), without re-resolving.
/// let m = engine::run_scheme_prepared(&prepared, &scheme);
/// assert_eq!(m, engine::run_scheme(&t, &scheme));
/// # Ok::<(), csp_core::ParseSchemeError>(())
/// ```
#[derive(Debug)]
pub struct PreparedTrace<'t> {
    resolved: ResolvedTrace<'t>,
    node_bits: u32,
    streams: Mutex<HashMap<IndexSpec, Arc<KeyStream>>>,
}

impl<'t> PreparedTrace<'t> {
    /// Prepares `trace`: resolves the actuals and flattens the per-event
    /// columns, once.
    pub fn new(trace: &'t Trace) -> Self {
        PreparedTrace {
            resolved: ResolvedTrace::new(trace),
            node_bits: crate::index::node_bits(trace.nodes()),
            streams: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying trace.
    #[inline]
    pub fn trace(&self) -> &'t Trace {
        self.resolved.trace()
    }

    /// Number of events.
    #[inline]
    pub fn len(&self) -> usize {
        self.resolved.len()
    }

    /// Returns `true` for an empty trace.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.resolved.is_empty()
    }

    /// The machine's node count.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.resolved.nodes()
    }

    /// `ceil(log2(nodes))` — the `node_bits` of [`IndexSpec::key`].
    #[inline]
    pub fn node_bits(&self) -> u32 {
        self.node_bits
    }

    /// The ground-truth actual bitmap of every event (resolved once).
    #[inline]
    pub fn actuals(&self) -> &[SharingBitmap] {
        self.resolved.actuals()
    }

    /// The invalidation feedback of every event.
    #[inline]
    pub fn invalidated(&self) -> &[SharingBitmap] {
        self.resolved.invalidated()
    }

    /// Whether each event has a previous writer.
    #[inline]
    pub fn has_prev(&self) -> &[bool] {
        self.resolved.has_prev()
    }

    /// The key stream for `index`, computing it on first request and
    /// serving every later request (from any thread) out of the cache.
    ///
    /// # Panics
    ///
    /// Panics if the internal cache lock was poisoned, which requires a
    /// panic *inside* this method on another thread (key computation
    /// happens outside the lock).
    pub fn key_stream(&self, index: IndexSpec) -> Arc<KeyStream> {
        if let Some(stream) = self
            .streams
            .lock()
            .expect("key-stream cache poisoned")
            .get(&index)
        {
            return Arc::clone(stream);
        }
        // Compute outside the lock: a long build must not serialize other
        // indexes' lookups. Two threads racing on the same index both
        // compute; the first insert wins and both results are identical.
        let computed = Arc::new(KeyStream::compute_with_actuals(
            self.trace(),
            index,
            self.actuals(),
        ));
        let mut cache = self.streams.lock().expect("key-stream cache poisoned");
        // Bound the cache: a full design-space sweep visits hundreds of
        // indexes, and an unbounded cache would hold every one of their
        // column sets for the whole sweep. Eviction is coarse (drop
        // everything) because sweeps touch indexes in clusters; streams
        // still in use stay alive through their `Arc`s.
        if cache.len() >= STREAM_CACHE_CAP && !cache.contains_key(&index) {
            cache.clear();
        }
        Arc::clone(cache.entry(index).or_insert(computed))
    }

    /// Drops the cached key stream for `index`, if any, returning whether
    /// one was cached. Sweep planners call this when no further scheme of
    /// the sweep will need the index, keeping a long sweep's footprint at
    /// `O(live groups)` instead of `O(all indexes)`. Dropping is safe at
    /// any time: callers holding the stream's `Arc` keep it alive, and a
    /// later request simply recomputes.
    pub fn evict_stream(&self, index: IndexSpec) -> bool {
        self.streams
            .lock()
            .expect("key-stream cache poisoned")
            .remove(&index)
            .is_some()
    }

    /// Number of key streams currently cached (diagnostics / tests).
    ///
    /// # Panics
    ///
    /// Panics if the internal cache lock was poisoned (see
    /// [`PreparedTrace::key_stream`]).
    pub fn cached_streams(&self) -> usize {
        self.streams
            .lock()
            .expect("key-stream cache poisoned")
            .len()
    }
}

// Sweep workers share one PreparedTrace per benchmark across threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedTrace<'static>>();
    assert_send_sync::<KeyStream>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::{LineAddr, NodeId, Pc, SharingEvent};

    fn sample_trace() -> Trace {
        let mut t = Trace::new(16);
        let mut prev: Option<(NodeId, Pc)> = None;
        for i in 0..20u64 {
            let writer = NodeId((i % 3) as u8);
            let pc = Pc(0x40 + (i % 2) as u32);
            let inv = if prev.is_some() {
                SharingBitmap::from_nodes(&[NodeId(((i + 5) % 16) as u8)])
            } else {
                SharingBitmap::empty()
            };
            t.push(SharingEvent::new(
                writer,
                pc,
                LineAddr(i % 4),
                NodeId((i % 4) as u8),
                inv,
                prev,
            ));
            prev = Some((writer, pc));
        }
        t.set_final_readers(LineAddr(1), SharingBitmap::from_nodes(&[NodeId(9)]));
        t
    }

    #[test]
    fn key_stream_matches_per_event_key_of() {
        let trace = sample_trace();
        let nb = crate::index::node_bits(trace.nodes());
        for index in [
            IndexSpec::new(true, 8, false, 0),
            IndexSpec::new(false, 0, true, 4),
            IndexSpec::new(true, 4, true, 6),
            IndexSpec::none(),
        ] {
            let stream = KeyStream::compute(&trace, index);
            assert_eq!(stream.index(), index);
            assert_eq!(stream.len(), trace.len());
            for (i, event) in trace.events().iter().enumerate() {
                assert_eq!(stream.keys()[i], index.key_of(event, nb), "event {i}");
                if let Some(fkey) = index.forward_key_of(event, nb) {
                    assert_eq!(stream.forward_keys()[i], fkey, "forward {i}");
                }
            }
        }
    }

    #[test]
    fn distinct_counts_match_brute_force() {
        let trace = sample_trace();
        let nb = crate::index::node_bits(trace.nodes());
        let index = IndexSpec::new(true, 1, false, 2);
        let stream = KeyStream::compute(&trace, index);
        let brute: std::collections::HashSet<u64> =
            trace.events().iter().map(|e| index.key_of(e, nb)).collect();
        let brute_fwd: std::collections::HashSet<u64> = trace
            .events()
            .iter()
            .filter_map(|e| index.forward_key_of(e, nb))
            .collect();
        assert_eq!(stream.distinct_keys(), brute.len());
        assert_eq!(stream.distinct_forward_keys(), brute_fwd.len());
    }

    #[test]
    fn prepared_trace_caches_streams() {
        let trace = sample_trace();
        let prepared = PreparedTrace::new(&trace);
        assert_eq!(prepared.cached_streams(), 0);
        let ix = IndexSpec::new(true, 8, false, 0);
        let a = prepared.key_stream(ix);
        let b = prepared.key_stream(ix);
        assert!(Arc::ptr_eq(&a, &b), "same index must share one stream");
        assert_eq!(prepared.cached_streams(), 1);
        let _ = prepared.key_stream(IndexSpec::none());
        assert_eq!(prepared.cached_streams(), 2);
    }

    #[test]
    fn prepared_columns_match_trace() {
        let trace = sample_trace();
        let prepared = PreparedTrace::new(&trace);
        assert_eq!(prepared.len(), trace.len());
        assert_eq!(prepared.nodes(), 16);
        assert_eq!(prepared.node_bits(), 4);
        assert_eq!(prepared.actuals(), trace.resolve_actuals().as_slice());
        for (i, e) in trace.events().iter().enumerate() {
            assert_eq!(prepared.invalidated()[i], e.invalidated);
            assert_eq!(prepared.has_prev()[i], e.prev_writer.is_some());
        }
    }

    #[test]
    fn empty_trace_prepares_cleanly() {
        let trace = Trace::new(4);
        let prepared = PreparedTrace::new(&trace);
        assert!(prepared.is_empty());
        let stream = prepared.key_stream(IndexSpec::new(true, 2, false, 2));
        assert!(stream.is_empty());
        assert_eq!(stream.distinct_keys(), 0);
        assert_eq!(stream.distinct_forward_keys(), 0);
    }
}
