//! Cosmos-style next-writer prediction (after Mukherjee & Hill, "Using
//! Prediction to Accelerate Coherence Protocols", ISCA 1998 — the paper's
//! reference \[24\]).
//!
//! The paper's footnote 5 declines to classify Mukherjee & Hill's
//! predictors "because they were predicting coherence messages, not
//! sharing bitmaps". This module implements that complementary predictor
//! so the two philosophies can be compared on the same traces: a two-level
//! per-address predictor that guesses *which node writes the line next* —
//! the key question for accelerating migratory sharing, where
//! reader-bitmap predictors are weakest.
//!
//! Structure, following Cosmos:
//!
//! * level 1 — per (truncated) line address, a history register of the
//!   last `depth` writer ids;
//! * level 2 — a pattern table mapping (address, history) to the writer
//!   that followed that history last time, with a 2-bit hysteresis
//!   counter (replace the stored successor only after two misses).

use crate::hash::FxHashMap;
use csp_trace::{NodeId, Trace};
use std::collections::VecDeque;

/// Maximum history depth (writer ids tracked per line).
pub const MAX_COSMOS_DEPTH: usize = 4;

/// Outcome counts of a next-writer prediction run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NextWriterReport {
    /// Events at which the predictor ventured a guess.
    pub predictions: u64,
    /// Guesses that named the correct next writer.
    pub correct: u64,
    /// Events at which no guess was available (cold history/pattern).
    pub abstained: u64,
}

impl NextWriterReport {
    /// Fraction of guesses that were correct (`0.0` when no guesses).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    /// Fraction of scoreable events at which a guess was made.
    pub fn coverage(&self) -> f64 {
        let total = self.predictions + self.abstained;
        if total == 0 {
            0.0
        } else {
            self.predictions as f64 / total as f64
        }
    }
}

#[derive(Clone, Debug)]
struct PatternEntry {
    successor: NodeId,
    confidence: u8,
}

/// The two-level next-writer predictor.
///
/// # Example
///
/// ```
/// use csp_core::cosmos::Cosmos;
/// use csp_trace::{NodeId, Pc, LineAddr, SharingBitmap, SharingEvent, Trace};
///
/// // A strict ping-pong: writers 1 and 2 alternate on one line.
/// let mut trace = Trace::new(16);
/// let mut prev = None;
/// for i in 0..40u32 {
///     let w = NodeId(1 + (i % 2) as u8);
///     trace.push(SharingEvent::new(w, Pc(5), LineAddr(9), NodeId(0),
///                                  SharingBitmap::empty(), prev));
///     prev = Some((w, Pc(5)));
/// }
/// let report = Cosmos::new(16, 2).run(&trace);
/// assert!(report.accuracy() > 0.9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cosmos {
    addr_bits: u8,
    depth: usize,
}

impl Cosmos {
    /// Creates a predictor with `addr_bits` of address index and a
    /// `depth`-writer history.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is outside `1..=MAX_COSMOS_DEPTH` or `addr_bits`
    /// is zero.
    pub fn new(addr_bits: u8, depth: usize) -> Self {
        assert!(
            (1..=MAX_COSMOS_DEPTH).contains(&depth),
            "depth must be in 1..={MAX_COSMOS_DEPTH}"
        );
        assert!(addr_bits > 0, "addr_bits must be positive");
        Cosmos { addr_bits, depth }
    }

    /// Packs a history of writer ids into a pattern-table key fragment.
    fn pack(history: &VecDeque<NodeId>) -> u64 {
        history
            .iter()
            .fold(1u64, |acc, w| (acc << 6) | w.index() as u64)
    }

    /// Runs the predictor over a trace.
    ///
    /// Every event after the first per (truncated) line is scoreable: the
    /// predictor's guess was staged when the *previous* event on that key
    /// was processed.
    pub fn run(&self, trace: &Trace) -> NextWriterReport {
        let mask = if self.addr_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.addr_bits) - 1
        };
        let mut histories: FxHashMap<u64, VecDeque<NodeId>> = FxHashMap::default();
        let mut patterns: FxHashMap<(u64, u64), PatternEntry> = FxHashMap::default();
        let mut staged: FxHashMap<u64, Option<NodeId>> = FxHashMap::default();
        let mut report = NextWriterReport::default();

        for event in trace.events() {
            let key = event.line.0 & mask;
            // Score the guess staged at the previous event on this key.
            if let Some(guess) = staged.remove(&key) {
                match guess {
                    Some(w) => {
                        report.predictions += 1;
                        if w == event.writer {
                            report.correct += 1;
                        }
                    }
                    None => report.abstained += 1,
                }
            }
            // Train the pattern table: the old history led to this writer.
            let history = histories.entry(key).or_default();
            if history.len() == self.depth {
                let pkey = (key, Self::pack(history));
                match patterns.get_mut(&pkey) {
                    None => {
                        patterns.insert(
                            pkey,
                            PatternEntry {
                                successor: event.writer,
                                confidence: 1,
                            },
                        );
                    }
                    Some(e) if e.successor == event.writer => {
                        e.confidence = (e.confidence + 1).min(3);
                    }
                    Some(e) => {
                        if e.confidence <= 1 {
                            e.successor = event.writer;
                            e.confidence = 1;
                        } else {
                            e.confidence -= 1;
                        }
                    }
                }
            }
            // Shift in this writer and stage the next guess.
            history.push_back(event.writer);
            if history.len() > self.depth {
                history.pop_front();
            }
            let guess = if history.len() == self.depth {
                patterns
                    .get(&(key, Self::pack(history)))
                    .map(|e| e.successor)
            } else {
                None
            };
            staged.insert(key, guess);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::{LineAddr, Pc, SharingBitmap, SharingEvent};

    fn trace_of_writers(writers: &[u8]) -> Trace {
        let mut t = Trace::new(16);
        let mut prev = None;
        for &w in writers {
            let node = NodeId(w);
            t.push(SharingEvent::new(
                node,
                Pc(1),
                LineAddr(5),
                NodeId(0),
                SharingBitmap::empty(),
                prev,
            ));
            prev = Some((node, Pc(1)));
        }
        t
    }

    #[test]
    fn learns_a_cycle() {
        // 1 -> 2 -> 3 -> 1 -> ... with depth 1 history.
        let writers: Vec<u8> = (0..60).map(|i| 1 + (i % 3) as u8).collect();
        let report = Cosmos::new(16, 1).run(&trace_of_writers(&writers));
        assert!(report.accuracy() > 0.85, "accuracy {}", report.accuracy());
        assert!(report.coverage() > 0.9);
    }

    #[test]
    fn depth_two_disambiguates_what_depth_one_cannot() {
        // Pattern 1,2,1,3,1,2,1,3...: after "1" the successor alternates,
        // so depth 1 tops out near 50%; depth 2 sees (2,1)->3 and (3,1)->2.
        let mut writers = Vec::new();
        for _ in 0..40 {
            writers.extend_from_slice(&[1, 2, 1, 3]);
        }
        let d1 = Cosmos::new(16, 1).run(&trace_of_writers(&writers));
        let d2 = Cosmos::new(16, 2).run(&trace_of_writers(&writers));
        assert!(d1.accuracy() < 0.7, "depth-1 accuracy {}", d1.accuracy());
        assert!(d2.accuracy() > 0.9, "depth-2 accuracy {}", d2.accuracy());
    }

    #[test]
    fn random_writers_are_unpredictable() {
        // A xorshift-random sequence: accuracy should be near chance.
        let mut state = 0x0001_2345_u32;
        let writers: Vec<u8> = (0..400)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state % 16) as u8
            })
            .collect();
        let report = Cosmos::new(16, 2).run(&trace_of_writers(&writers));
        assert!(report.accuracy() < 0.35, "accuracy {}", report.accuracy());
    }

    #[test]
    fn hysteresis_survives_single_disruptions() {
        // Stable 1->2->1->2 with a rare interloper.
        let mut writers = Vec::new();
        for i in 0..50 {
            writers.push(1 + (i % 2) as u8);
            if i % 10 == 9 {
                writers.push(9);
            }
        }
        let report = Cosmos::new(16, 1).run(&trace_of_writers(&writers));
        assert!(report.accuracy() > 0.6, "accuracy {}", report.accuracy());
    }

    #[test]
    fn cold_start_abstains() {
        let report = Cosmos::new(16, 2).run(&trace_of_writers(&[1, 2]));
        assert_eq!(report.predictions, 0);
        assert_eq!(report.accuracy(), 0.0);
        assert!(report.coverage() < 1.0);
    }

    #[test]
    fn empty_trace() {
        let report = Cosmos::new(16, 1).run(&Trace::new(16));
        assert_eq!(report, NextWriterReport::default());
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        let _ = Cosmos::new(16, 0);
    }
}
