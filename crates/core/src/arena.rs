//! Flat open-addressing storage for history predictor entries.
//!
//! The evaluation hot loops spend most of their table time in one-probe
//! operations ([`PredictorTable::update_and_predict`] and friends, see
//! [`crate::table`]): hash the key, land on an entry, mutate it, fold a
//! prediction out of it. A general-purpose `HashMap` pays for that probe
//! twice — once to hash into its control metadata and again to chase the
//! entry out of a separate storage array. The arena here collapses the
//! probe to a single indexed load: a power-of-two slot array in which
//! each slot holds the key *and* the full [`HistoryEntry`] inline
//! (slot-major layout), so the cache line the probe touches is the cache
//! line the fold reads and the update writes.
//!
//! Design constraints, in order:
//!
//! * **Exact `HashMap` semantics.** Create-on-update, replace-on-insert,
//!   iteration over every occupied slot. The hashed storage remains in
//!   [`crate::table`] as the reference twin; equivalence tests drive both
//!   backends through identical op sequences.
//! * **No deletions.** Predictor tables only ever grow (entries are
//!   created lazily and never evicted), so linear probing needs no
//!   tombstones and lookups can stop at the first vacant slot.
//! * **Fibonacci spreading.** Keys are truncated index fields packed into
//!   a `u64` — highly structured low bits — so the slot index comes from
//!   the *top* bits of a Fibonacci multiply, the same spreading
//!   [`crate::shard_of_key`] uses.
//!
//! [`PredictorTable::update_and_predict`]: crate::PredictorTable::update_and_predict

use crate::entry::HistoryEntry;

/// Smallest non-empty slot array. Small sweeps (baseline schemes have a
/// single entry) stay tiny; one growth step doubles from here.
const MIN_SLOTS: usize = 16;

/// Fibonacci multiplier (2^64 / phi), shared with [`crate::shard_of_key`].
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// One slot of the arena: the key and its entry, inline.
#[derive(Clone, Debug)]
struct Slot {
    key: u64,
    occupied: bool,
    entry: HistoryEntry,
}

/// A flat open-addressing map from predictor key to [`HistoryEntry`].
///
/// All entries share one history depth, fixed at construction (vacant
/// slots pre-hold a cold entry of that depth, so occupying a slot writes
/// only the key and the occupancy flag).
///
/// # Example
///
/// ```
/// use csp_core::arena::HistoryArena;
/// use csp_trace::{NodeId, SharingBitmap};
///
/// let mut a = HistoryArena::new(2);
/// a.entry_mut(7).push(SharingBitmap::from_nodes(&[NodeId(3)]));
/// assert_eq!(a.get(7).unwrap().last(), SharingBitmap::from_nodes(&[NodeId(3)]));
/// assert!(a.get(8).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct HistoryArena {
    slots: Vec<Slot>,
    /// `slots.len() - 1` when allocated (power-of-two capacity).
    mask: usize,
    /// `64 - log2(slots.len())`: the Fibonacci hash keeps the top bits.
    shift: u32,
    len: usize,
    depth: usize,
}

impl HistoryArena {
    /// An empty arena whose entries will hold `depth` bitmaps.
    ///
    /// Allocates nothing until the first insertion.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is out of `1..=`[`crate::MAX_DEPTH`].
    pub fn new(depth: usize) -> Self {
        Self::with_capacity(depth, 0)
    }

    /// An empty arena pre-sized so `capacity` entries fit without growth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is out of `1..=`[`crate::MAX_DEPTH`].
    pub fn with_capacity(depth: usize, capacity: usize) -> Self {
        // Constructing an entry validates the depth even when `capacity`
        // is zero and the slot array stays unallocated.
        let cold = HistoryEntry::new(depth);
        let mut arena = HistoryArena {
            slots: Vec::new(),
            mask: 0,
            shift: 0,
            len: 0,
            depth,
        };
        if capacity > 0 {
            // Size for a load factor at or below 3/4.
            let want = (capacity * 4 / 3 + 1).next_power_of_two().max(MIN_SLOTS);
            arena.allocate(want, cold);
        }
        arena
    }

    /// The history depth every entry of this arena carries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of occupied slots (distinct keys touched).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no key has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated slots (zero until the first insertion).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn allocate(&mut self, slots: usize, cold: HistoryEntry) {
        debug_assert!(slots.is_power_of_two());
        self.slots = vec![
            Slot {
                key: 0,
                occupied: false,
                entry: cold,
            };
            slots
        ];
        self.mask = slots - 1;
        self.shift = 64 - slots.trailing_zeros();
    }

    /// Index of `key`'s slot if present, else of the vacant slot where it
    /// would be inserted. Requires an allocated slot array with at least
    /// one vacancy (guaranteed by the growth policy).
    #[inline]
    fn probe(&self, key: u64) -> usize {
        let mut i = (key.wrapping_mul(FIB) >> self.shift) as usize;
        loop {
            let slot = &self.slots[i];
            if !slot.occupied || slot.key == key {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The entry for `key`, if it has been touched.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&HistoryEntry> {
        if self.slots.is_empty() {
            return None;
        }
        let slot = &self.slots[self.probe(key)];
        slot.occupied.then_some(&slot.entry)
    }

    /// The entry for `key`, creating a cold one if absent — the
    /// create-on-update probe every table mutation goes through.
    #[inline]
    pub fn entry_mut(&mut self, key: u64) -> &mut HistoryEntry {
        if self.slots.is_empty() || (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let i = self.probe(key);
        let slot = &mut self.slots[i];
        if !slot.occupied {
            slot.occupied = true;
            slot.key = key;
            self.len += 1;
        }
        &mut slot.entry
    }

    /// Inserts a fully-formed entry under `key`, replacing any existing
    /// one (the restore half of [`iter`](Self::iter)).
    ///
    /// The entry's depth is the caller's contract ([`crate::PredictorTable`]
    /// validates it); a mismatched depth corrupts only that entry's
    /// predictions, never the arena structure.
    pub fn insert(&mut self, key: u64, entry: HistoryEntry) {
        *self.entry_mut(key) = entry;
    }

    fn grow(&mut self) {
        let next = (self.slots.len() * 2).max(MIN_SLOTS);
        let old = std::mem::take(&mut self.slots);
        self.allocate(next, HistoryEntry::new(self.depth));
        for slot in old {
            if slot.occupied {
                let i = self.probe(slot.key);
                self.slots[i] = slot;
            }
        }
    }

    /// Iterates over every occupied slot as `(key, entry)`, in arbitrary
    /// (probe-order) sequence — mirrors the hashed storage's contract.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &HistoryEntry)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.occupied)
            .map(|s| (s.key, &s.entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::{NodeId, SharingBitmap};

    fn bm(nodes: &[u8]) -> SharingBitmap {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    #[test]
    fn empty_arena_allocates_nothing() {
        let a = HistoryArena::new(4);
        assert_eq!(a.capacity(), 0);
        assert_eq!(a.len(), 0);
        assert!(a.is_empty());
        assert!(a.get(0).is_none());
        assert_eq!(a.depth(), 4);
    }

    #[test]
    fn create_on_update_and_lookup() {
        let mut a = HistoryArena::new(2);
        a.entry_mut(10).push(bm(&[1]));
        a.entry_mut(10).push(bm(&[2]));
        a.entry_mut(11).push(bm(&[3]));
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(10).unwrap().union(2), bm(&[1, 2]));
        assert_eq!(a.get(11).unwrap().last(), bm(&[3]));
        assert!(a.get(12).is_none());
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut a = HistoryArena::new(1);
        for key in 0..1000u64 {
            a.entry_mut(key * 0x1_0001).push(bm(&[(key % 64) as u8]));
        }
        assert_eq!(a.len(), 1000);
        assert!(a.capacity().is_power_of_two());
        // Load factor stays at or below 3/4.
        assert!(a.len() * 4 <= a.capacity() * 3);
        for key in 0..1000u64 {
            let e = a.get(key * 0x1_0001).expect("entry survives growth");
            assert_eq!(e.last(), bm(&[(key % 64) as u8]), "key {key}");
        }
    }

    #[test]
    fn matches_hashmap_reference_on_random_ops() {
        use crate::hash::FxHashMap;
        let mut arena = HistoryArena::new(3);
        let mut map: FxHashMap<u64, HistoryEntry> = FxHashMap::default();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..5000 {
            // xorshift64
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 257; // force collisions
            let fb = SharingBitmap::from_bits(x >> 32);
            arena.entry_mut(key).push(fb);
            map.entry(key)
                .or_insert_with(|| HistoryEntry::new(3))
                .push(fb);
        }
        assert_eq!(arena.len(), map.len());
        for (key, entry) in map.iter() {
            assert_eq!(arena.get(*key), Some(entry), "key {key}");
        }
        let mut from_arena: Vec<(u64, HistoryEntry)> = arena.iter().map(|(k, e)| (k, *e)).collect();
        from_arena.sort_by_key(|(k, _)| *k);
        let mut from_map: Vec<(u64, HistoryEntry)> = map.iter().map(|(&k, e)| (k, *e)).collect();
        from_map.sort_by_key(|(k, _)| *k);
        assert_eq!(from_arena, from_map);
    }

    #[test]
    fn insert_replaces() {
        let mut a = HistoryArena::new(2);
        a.entry_mut(5).push(bm(&[1]));
        let mut replacement = HistoryEntry::new(2);
        replacement.push(bm(&[7]));
        a.insert(5, replacement);
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(5).unwrap().last(), bm(&[7]));
    }

    #[test]
    fn with_capacity_avoids_growth_and_behaves_identically() {
        let mut sized = HistoryArena::with_capacity(2, 300);
        let before = sized.capacity();
        let mut plain = HistoryArena::new(2);
        for key in 0..300u64 {
            let fb = bm(&[(key % 16) as u8]);
            sized.entry_mut(key).push(fb);
            plain.entry_mut(key).push(fb);
        }
        assert_eq!(sized.capacity(), before, "pre-sized arena never grew");
        for key in 0..300u64 {
            assert_eq!(sized.get(key), plain.get(key));
        }
    }

    #[test]
    #[should_panic(expected = "history depth")]
    fn rejects_out_of_range_depth() {
        HistoryArena::new(0);
    }
}
