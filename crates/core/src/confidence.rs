//! Confidence-gated prediction (after Grunwald, Klauser, Manne & Pleszkun,
//! "Confidence Estimation for Speculation Control", ISCA 1998 — the
//! paper's reference \[11\], from which it borrows its statistical framing).
//!
//! A confidence estimator attaches a saturating counter to every predictor
//! entry: the counter rises when the entry's prediction was *clean* (no
//! false positive among its bits) and falls otherwise. Predictions are
//! only emitted once the counter reaches a threshold. This converts any
//! base scheme into a family of schemes trading sensitivity for PVP — the
//! knob a deployment would turn as network load changes ("on a machine
//! with a very busy communications network, only sure bets should be
//! made", paper Section 6).

use crate::hash::FxHashMap;
use crate::{PredictorTable, Scheme, UpdateMode};
use csp_metrics::ConfusionMatrix;
use csp_trace::{SharingBitmap, Trace};

/// Maximum confidence-counter value (2-bit saturating counter).
pub const MAX_CONFIDENCE: u8 = 3;

/// Runs `scheme` gated by per-entry confidence: a prediction is emitted
/// only when the entry's counter is at least `threshold`.
///
/// * `threshold == 0` reproduces the ungated scheme exactly.
/// * The counter is trained on every decision (whether emitted or not):
///   +1 when the base prediction contained no false positive, -1 when it
///   contained at least one.
///
/// # Example
///
/// ```
/// use csp_core::confidence::run_with_confidence;
/// use csp_core::{engine, Scheme};
/// # use csp_trace::{NodeId, Pc, LineAddr, SharingBitmap, SharingEvent, Trace};
/// # let mut trace = Trace::new(16);
/// # for i in 0..40 {
/// #     let inv = if i == 0 { SharingBitmap::empty() }
/// #               else { SharingBitmap::from_nodes(&[NodeId(1)]) };
/// #     let prev = if i == 0 { None } else { Some((NodeId(0), Pc(7))) };
/// #     trace.push(SharingEvent::new(NodeId(0), Pc(7), LineAddr(3), NodeId(1), inv, prev));
/// # }
/// let scheme: Scheme = "union(pid+pc8)2[direct]".parse()?;
/// let ungated = engine::run_scheme(&trace, &scheme);
/// assert_eq!(run_with_confidence(&trace, &scheme, 0), ungated);
/// # Ok::<(), csp_core::ParseSchemeError>(())
/// ```
///
/// # Panics
///
/// Panics if `threshold` exceeds [`MAX_CONFIDENCE`].
pub fn run_with_confidence(trace: &Trace, scheme: &Scheme, threshold: u8) -> ConfusionMatrix {
    assert!(
        threshold <= MAX_CONFIDENCE,
        "threshold must be at most {MAX_CONFIDENCE}"
    );
    let nodes = trace.nodes();
    let node_bits = crate::index::node_bits(nodes);
    let actuals = trace.resolve_actuals();
    let mut table = PredictorTable::new(scheme, nodes);
    let mut confidence: FxHashMap<u64, u8> = FxHashMap::default();
    let mut matrix = ConfusionMatrix::default();

    for (i, event) in trace.events().iter().enumerate() {
        let key = scheme.index.key_of(event, node_bits);
        let base = match scheme.update {
            UpdateMode::Direct => {
                if event.prev_writer.is_some() {
                    table.update(key, event.invalidated);
                }
                table.predict(key)
            }
            UpdateMode::Forwarded => {
                if let Some(fkey) = scheme.index.forward_key_of(event, node_bits) {
                    table.update(fkey, event.invalidated);
                }
                table.predict(key)
            }
            UpdateMode::Ordered => {
                let p = table.predict(key);
                table.update(key, actuals[i]);
                p
            }
        };
        let conf = confidence.entry(key).or_insert(0);
        let emitted = if *conf >= threshold {
            base
        } else {
            SharingBitmap::empty()
        };
        matrix.record(emitted, actuals[i], nodes);
        // Train the estimator on the *base* prediction's cleanliness.
        let clean = (base.masked(nodes) - actuals[i]).is_empty();
        if clean {
            *conf = (*conf + 1).min(MAX_CONFIDENCE);
        } else {
            *conf = conf.saturating_sub(1);
        }
    }
    matrix
}

/// Evaluates the whole confidence ladder `0..=MAX_CONFIDENCE` in one call,
/// returning the matrices in threshold order — the PVP/sensitivity
/// trade-off curve of the estimator.
pub fn confidence_curve(trace: &Trace, scheme: &Scheme) -> Vec<ConfusionMatrix> {
    (0..=MAX_CONFIDENCE)
        .map(|t| run_with_confidence(trace, scheme, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use csp_trace::{LineAddr, NodeId, Pc, SharingEvent};

    fn bm(nodes: &[u8]) -> SharingBitmap {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    /// A line whose reader alternates between two disjoint sets: `last`
    /// prediction is always wrong, so confidence never rises.
    fn flapping_trace(n: usize) -> Trace {
        let mut t = Trace::new(16);
        for i in 0..n {
            let readers: &[u8] = if i % 2 == 0 { &[1] } else { &[2] };
            t.push(SharingEvent::new(
                NodeId(0),
                Pc(7),
                LineAddr(3),
                NodeId(1),
                if i == 0 {
                    SharingBitmap::empty()
                } else {
                    bm(readers)
                },
                if i == 0 {
                    None
                } else {
                    Some((NodeId(0), Pc(7)))
                },
            ));
        }
        t
    }

    fn stable_trace(n: usize) -> Trace {
        let mut t = Trace::new(16);
        for i in 0..n {
            t.push(SharingEvent::new(
                NodeId(0),
                Pc(7),
                LineAddr(3),
                NodeId(1),
                if i == 0 {
                    SharingBitmap::empty()
                } else {
                    bm(&[4, 5])
                },
                if i == 0 {
                    None
                } else {
                    Some((NodeId(0), Pc(7)))
                },
            ));
        }
        t.set_final_readers(LineAddr(3), bm(&[4, 5]));
        t
    }

    #[test]
    fn threshold_zero_is_the_base_scheme() {
        for trace in [stable_trace(40), flapping_trace(40)] {
            for spec in [
                "last(pid+pc8)1",
                "union(pid)2[forwarded]",
                "inter(add8)2[ordered]",
            ] {
                let scheme: Scheme = spec.parse().unwrap();
                assert_eq!(
                    run_with_confidence(&trace, &scheme, 0),
                    engine::run_scheme(&trace, &scheme),
                    "{spec}"
                );
            }
        }
    }

    #[test]
    fn gating_silences_a_flapping_predictor() {
        let trace = flapping_trace(100);
        let scheme: Scheme = "last(pid+pc8)1".parse().unwrap();
        let ungated = engine::run_scheme(&trace, &scheme);
        let gated = run_with_confidence(&trace, &scheme, 2);
        // Ungated last is always wrong here; gating should remove nearly
        // all of those false positives.
        assert!(ungated.fp > 50);
        assert!(
            gated.fp < ungated.fp / 4,
            "gated fp {} vs ungated {}",
            gated.fp,
            ungated.fp
        );
    }

    #[test]
    fn gating_keeps_a_stable_predictor() {
        let trace = stable_trace(100);
        let scheme: Scheme = "last(pid+pc8)1".parse().unwrap();
        let ungated = engine::run_scheme(&trace, &scheme).screening();
        let gated = run_with_confidence(&trace, &scheme, 3).screening();
        // Warmup costs a few true positives, no more.
        assert!(gated.sensitivity > ungated.sensitivity - 0.06);
        assert!(gated.pvp >= ungated.pvp);
    }

    #[test]
    fn curve_trades_sensitivity_for_pvp() {
        // On a mixed trace the curve should be monotone: sensitivity
        // non-increasing with threshold.
        let mut trace = flapping_trace(60);
        // Interleave a stable line.
        for i in 0..60 {
            trace.push(SharingEvent::new(
                NodeId(1),
                Pc(9),
                LineAddr(8),
                NodeId(1),
                if i == 0 {
                    SharingBitmap::empty()
                } else {
                    bm(&[7])
                },
                if i == 0 {
                    None
                } else {
                    Some((NodeId(1), Pc(9)))
                },
            ));
        }
        let scheme: Scheme = "last(pid+pc8)1".parse().unwrap();
        let curve = confidence_curve(&trace, &scheme);
        let sens: Vec<f64> = curve.iter().map(|m| m.screening().sensitivity).collect();
        for w in sens.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "sensitivity must fall with threshold: {sens:?}"
            );
        }
        let pvp0 = curve[0].screening().pvp;
        let pvp3 = curve[3].screening().pvp;
        assert!(pvp3 > pvp0, "gating should raise PVP: {pvp0} -> {pvp3}");
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn oversized_threshold_rejected() {
        let trace = stable_trace(4);
        let scheme: Scheme = "last()1".parse().unwrap();
        let _ = run_with_confidence(&trace, &scheme, 4);
    }
}
