//! Predictor entry state: bitmap histories and two-level PAs state.

use csp_trace::{NodeId, SharingBitmap};

/// Maximum supported history depth.
pub const MAX_DEPTH: usize = 8;

/// A ring of the most recent feedback bitmaps for one predictor entry.
///
/// `last`, `union` and `inter` prediction (and `overlap-last`) are all
/// combinatorial functions over this state (paper Section 3.2): updates
/// "replace the oldest bitmap in an entry with the feedback bitmap".
///
/// # Example
///
/// ```
/// use csp_core::HistoryEntry;
/// use csp_trace::{NodeId, SharingBitmap};
///
/// let mut h = HistoryEntry::new(2);
/// h.push(SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]));
/// h.push(SharingBitmap::from_nodes(&[NodeId(2), NodeId(3)]));
/// assert_eq!(h.union(2).count(), 3);
/// assert_eq!(h.inter(2), SharingBitmap::from_nodes(&[NodeId(2)]));
/// assert_eq!(h.last(), SharingBitmap::from_nodes(&[NodeId(2), NodeId(3)]));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoryEntry {
    bitmaps: [SharingBitmap; MAX_DEPTH],
    depth: u8,
    len: u8,
    head: u8, // slot of the most recent bitmap
}

/// The raw, serializable state of a [`HistoryEntry`].
///
/// Produced by [`HistoryEntry::to_raw`] and consumed by
/// [`HistoryEntry::from_raw`]: the exact ring contents, so a
/// snapshot/restore round-trip reconstructs an entry that is equal (not
/// just behaviorally equivalent) to the original.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawHistoryEntry {
    /// All ring slots, including never-written (empty) ones.
    pub bitmaps: [SharingBitmap; MAX_DEPTH],
    /// Ring capacity actually used by the entry.
    pub depth: u8,
    /// Number of feedback bitmaps stored so far (saturates at `depth`).
    pub len: u8,
    /// Slot index of the most recent bitmap.
    pub head: u8,
}

impl HistoryEntry {
    /// An empty history holding up to `depth` bitmaps.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or exceeds [`MAX_DEPTH`].
    pub fn new(depth: usize) -> Self {
        assert!(
            (1..=MAX_DEPTH).contains(&depth),
            "history depth must be in 1..={MAX_DEPTH}, got {depth}"
        );
        HistoryEntry {
            bitmaps: [SharingBitmap::empty(); MAX_DEPTH],
            depth: depth as u8,
            len: 0,
            head: 0,
        }
    }

    /// Number of bitmaps currently stored (saturates at the depth).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// The ring capacity this entry was created with.
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// The raw ring state, for serialization (e.g. table snapshots).
    pub fn to_raw(&self) -> RawHistoryEntry {
        RawHistoryEntry {
            bitmaps: self.bitmaps,
            depth: self.depth,
            len: self.len,
            head: self.head,
        }
    }

    /// Reconstructs an entry from raw ring state.
    ///
    /// # Errors
    ///
    /// Rejects state no sequence of [`push`](Self::push) calls could have
    /// produced: a depth outside `1..=MAX_DEPTH`, `len > depth`,
    /// `head >= depth`, or a non-empty bitmap in a slot the ring never
    /// writes (`>= depth`). This is what lets a restore path trust a
    /// decoded-but-hostile snapshot body.
    pub fn from_raw(raw: &RawHistoryEntry) -> Result<Self, String> {
        let depth = raw.depth as usize;
        if !(1..=MAX_DEPTH).contains(&depth) {
            return Err(format!("history depth {depth} outside 1..={MAX_DEPTH}"));
        }
        if raw.len > raw.depth {
            return Err(format!("history len {} exceeds depth {depth}", raw.len));
        }
        if raw.head as usize >= depth {
            return Err(format!("history head {} outside ring of {depth}", raw.head));
        }
        if raw.bitmaps[depth..].iter().any(|b| !b.is_empty()) {
            return Err("non-empty bitmap beyond the ring depth".into());
        }
        Ok(HistoryEntry {
            bitmaps: raw.bitmaps,
            depth: raw.depth,
            len: raw.len,
            head: raw.head,
        })
    }

    /// Returns `true` if no feedback has arrived yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shifts in a feedback bitmap, replacing the oldest if full.
    ///
    /// The head advances by compare-and-reset rather than `% depth`:
    /// `head` is always `< depth`, so `head + 1` either stays in range or
    /// lands exactly on `depth` — and an integer division in the hottest
    /// write path of every sweep is measurable.
    #[inline]
    pub fn push(&mut self, feedback: SharingBitmap) {
        let mut head = self.head + 1;
        if head == self.depth {
            head = 0;
        }
        self.head = head;
        self.bitmaps[head as usize] = feedback;
        if self.len < self.depth {
            self.len += 1;
        }
    }

    /// The most recent `k` bitmaps, newest first (fewer if less history
    /// exists).
    ///
    /// Walks the ring backwards by decrement-and-wrap (no per-item
    /// modulo; this iterator sits inside every `union`/`inter`
    /// prediction).
    #[inline]
    pub fn recent(&self, k: usize) -> impl Iterator<Item = SharingBitmap> + '_ {
        let take = k.min(self.len as usize);
        let depth = self.depth as usize;
        let mut slot = self.head as usize;
        (0..take).map(move |i| {
            if i > 0 {
                slot = if slot == 0 { depth - 1 } else { slot - 1 };
            }
            self.bitmaps[slot]
        })
    }

    /// Union of the most recent `k` bitmaps (empty if no history).
    #[inline]
    pub fn union(&self, k: usize) -> SharingBitmap {
        self.recent(k)
            .fold(SharingBitmap::empty(), |acc, b| acc | b)
    }

    /// Intersection of the most recent `k` bitmaps.
    ///
    /// A hardware entry's history slots initialize to all-zeros, so until
    /// `k` feedbacks have arrived the intersection is empty: a cold or
    /// warming intersection predictor bets on nothing. (Without this, a
    /// single stored bitmap would be predicted at full confidence, which
    /// poisons precision on migratory sharing.)
    #[inline]
    pub fn inter(&self, k: usize) -> SharingBitmap {
        if (self.len as usize) < k {
            return SharingBitmap::empty();
        }
        let mut it = self.recent(k);
        match it.next() {
            None => SharingBitmap::empty(),
            Some(first) => it.fold(first, |acc, b| acc & b),
        }
    }

    /// The most recent bitmap (empty if no history) — `last` prediction.
    #[inline]
    pub fn last(&self) -> SharingBitmap {
        if self.len == 0 {
            SharingBitmap::empty()
        } else {
            self.bitmaps[self.head as usize]
        }
    }

    /// Kaxiras & Goodman's `overlap-last` function (paper Section 3.5):
    /// predict the last bitmap only if it overlaps the one before it;
    /// otherwise predict nothing. With fewer than two bitmaps stored,
    /// predicts nothing (no evidence of stability yet).
    #[inline]
    pub fn overlap_last(&self) -> SharingBitmap {
        let mut it = self.recent(2);
        match (it.next(), it.next()) {
            (Some(last), Some(prev)) if last.overlaps(prev) => last,
            _ => SharingBitmap::empty(),
        }
    }
}

/// Two-level PAs state for one predictor entry (paper Section 3.2,
/// after Yeh & Patt).
///
/// Per potential reader: a `depth`-bit history register of that reader's
/// recent actual-sharing bits, indexing a private pattern table of
/// `2^depth` two-bit saturating counters. The aggregate of the per-reader
/// binary predictions is the predicted bitmap.
///
/// # Example
///
/// ```
/// use csp_core::PasEntry;
/// use csp_trace::{NodeId, SharingBitmap};
///
/// let mut e = PasEntry::new(16, 2);
/// let readers = SharingBitmap::from_nodes(&[NodeId(3)]);
/// for _ in 0..4 {
///     e.update(readers, 16);
/// }
/// assert!(e.predict(16).contains(NodeId(3)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PasEntry {
    /// Per-node history registers (low `depth` bits used).
    hist: Vec<u8>,
    /// `nodes << depth` two-bit counters, stored one per byte.
    counters: Vec<u8>,
    depth: u8,
}

/// The raw, serializable state of a [`PasEntry`] (see
/// [`PasEntry::to_raw`] / [`PasEntry::from_raw`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawPasEntry {
    /// Per-node history registers.
    pub hist: Vec<u8>,
    /// Per-node pattern tables of two-bit counters, one per byte.
    pub counters: Vec<u8>,
    /// History register width in bits.
    pub depth: u8,
}

impl PasEntry {
    /// Counter threshold at or above which a bit predicts "will read".
    const TAKEN: u8 = 2;

    /// Creates cold PAs state for `nodes` potential readers with a
    /// `depth`-bit history.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or exceeds [`MAX_DEPTH`].
    pub fn new(nodes: usize, depth: usize) -> Self {
        assert!(
            (1..=MAX_DEPTH).contains(&depth),
            "PAs history depth must be in 1..={MAX_DEPTH}, got {depth}"
        );
        PasEntry {
            hist: vec![0; nodes],
            counters: vec![0; nodes << depth],
            depth: depth as u8,
        }
    }

    /// The history register width in bits.
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// The raw two-level state, for serialization (e.g. table snapshots).
    pub fn to_raw(&self) -> RawPasEntry {
        RawPasEntry {
            hist: self.hist.clone(),
            counters: self.counters.clone(),
            depth: self.depth,
        }
    }

    /// Reconstructs an entry from raw two-level state for an
    /// `nodes`-node machine.
    ///
    /// # Errors
    ///
    /// Rejects state no sequence of [`update`](Self::update) calls could
    /// have produced: a depth outside `1..=MAX_DEPTH`, vector lengths
    /// that disagree with `nodes`/`depth`, a counter above the two-bit
    /// saturation ceiling, or history bits outside the register width.
    pub fn from_raw(raw: RawPasEntry, nodes: usize) -> Result<Self, String> {
        let depth = raw.depth as usize;
        if !(1..=MAX_DEPTH).contains(&depth) {
            return Err(format!("PAs depth {depth} outside 1..={MAX_DEPTH}"));
        }
        if raw.hist.len() != nodes {
            return Err(format!(
                "PAs history registers: {} for a {nodes}-node machine",
                raw.hist.len()
            ));
        }
        if raw.counters.len() != nodes << depth {
            return Err(format!(
                "PAs pattern table: {} counters, expected {}",
                raw.counters.len(),
                nodes << depth
            ));
        }
        if raw.counters.iter().any(|&c| c > 3) {
            return Err("PAs counter above two-bit saturation".into());
        }
        let mask = if depth >= 8 { 0xFF } else { (1u8 << depth) - 1 };
        if raw.hist.iter().any(|&h| h & !mask != 0) {
            return Err("PAs history register bits outside the width".into());
        }
        Ok(PasEntry {
            hist: raw.hist,
            counters: raw.counters,
            depth: raw.depth,
        })
    }

    /// The predicted reader bitmap.
    #[inline]
    pub fn predict(&self, nodes: usize) -> SharingBitmap {
        let mut b = SharingBitmap::empty();
        for i in 0..nodes {
            let idx = (i << self.depth) | self.hist[i] as usize;
            if self.counters[idx] >= Self::TAKEN {
                b.insert(NodeId(i as u8));
            }
        }
        b
    }

    /// Trains on a feedback bitmap: bumps each node's selected counter
    /// toward its actual bit and shifts the bit into its history register.
    #[inline]
    pub fn update(&mut self, feedback: SharingBitmap, nodes: usize) {
        let mask = if self.depth as u32 >= 8 {
            0xFF
        } else {
            (1u8 << self.depth) - 1
        };
        for i in 0..nodes {
            let bit = u8::from(feedback.contains(NodeId(i as u8)));
            let idx = (i << self.depth) | self.hist[i] as usize;
            let c = &mut self.counters[idx];
            if bit == 1 {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
            self.hist[i] = ((self.hist[i] << 1) | bit) & mask;
        }
    }
}

/// Bits of storage one entry of each kind costs (the paper's cost model,
/// Section 5.4: "we counted the bit costs for both the history shift
/// registers and the pattern history tables").
pub(crate) fn entry_bits(function: crate::PredictionFunction, depth: usize, nodes: usize) -> u64 {
    use crate::PredictionFunction::*;
    let n = nodes as u64;
    let d = depth as u64;
    match function {
        Last => n,
        Union | Inter => n * d,
        // Stores the last two bitmaps to evaluate the overlap test.
        OverlapLast => n * 2,
        // Per node: a depth-bit history register + 2^depth 2-bit counters.
        Pas => n * d + n * (1u64 << d) * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bm(nodes: &[u8]) -> SharingBitmap {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    #[test]
    fn empty_history_predicts_nothing() {
        let h = HistoryEntry::new(4);
        assert!(h.is_empty());
        assert_eq!(h.union(4), SharingBitmap::empty());
        assert_eq!(h.inter(4), SharingBitmap::empty());
        assert_eq!(h.last(), SharingBitmap::empty());
        assert_eq!(h.overlap_last(), SharingBitmap::empty());
    }

    #[test]
    fn ring_replaces_oldest() {
        let mut h = HistoryEntry::new(2);
        h.push(bm(&[1]));
        h.push(bm(&[2]));
        h.push(bm(&[3])); // evicts {1}
        assert_eq!(h.union(2), bm(&[2, 3]));
        assert_eq!(h.last(), bm(&[3]));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn partial_history_unions_but_does_not_intersect() {
        let mut h = HistoryEntry::new(4);
        h.push(bm(&[1, 2]));
        // Union folds over whatever exists; intersection waits for a full
        // history (empty slots are all-zeros).
        assert_eq!(h.union(4), bm(&[1, 2]));
        assert_eq!(h.inter(4), SharingBitmap::empty());
        assert_eq!(h.inter(1), bm(&[1, 2]));
        for _ in 0..3 {
            h.push(bm(&[1, 2]));
        }
        assert_eq!(h.inter(4), bm(&[1, 2]));
    }

    #[test]
    fn recent_is_newest_first() {
        let mut h = HistoryEntry::new(3);
        for i in 1..=3u8 {
            h.push(bm(&[i]));
        }
        let v: Vec<_> = h.recent(3).collect();
        assert_eq!(v, vec![bm(&[3]), bm(&[2]), bm(&[1])]);
        // Asking for fewer returns only the newest.
        let v2: Vec<_> = h.recent(2).collect();
        assert_eq!(v2, vec![bm(&[3]), bm(&[2])]);
    }

    #[test]
    fn overlap_last_requires_overlap() {
        let mut h = HistoryEntry::new(2);
        h.push(bm(&[1, 2]));
        h.push(bm(&[2, 3]));
        assert_eq!(h.overlap_last(), bm(&[2, 3])); // overlap at node 2
        h.push(bm(&[7]));
        assert_eq!(h.overlap_last(), SharingBitmap::empty()); // disjoint
    }

    #[test]
    fn overlap_last_needs_two_bitmaps() {
        let mut h = HistoryEntry::new(2);
        h.push(bm(&[1]));
        assert_eq!(h.overlap_last(), SharingBitmap::empty());
    }

    #[test]
    #[should_panic(expected = "history depth")]
    fn zero_depth_rejected() {
        let _ = HistoryEntry::new(0);
    }

    /// Ring semantics pinned against a straightforward deque model at
    /// every supported depth: regression guard for the compare-and-reset
    /// head advance in [`HistoryEntry::push`].
    #[test]
    fn ring_matches_deque_model_at_every_depth() {
        use std::collections::VecDeque;
        for depth in 1..=MAX_DEPTH {
            let mut h = HistoryEntry::new(depth);
            let mut model: VecDeque<SharingBitmap> = VecDeque::new();
            for step in 0..3 * MAX_DEPTH as u64 + 1 {
                let fb = SharingBitmap::from_bits(step.wrapping_mul(0x9E37_79B9) | 1);
                h.push(fb);
                model.push_front(fb);
                model.truncate(depth);

                assert_eq!(h.len(), model.len(), "depth {depth} step {step}");
                let got: Vec<_> = h.recent(depth).collect();
                let want: Vec<_> = model.iter().copied().collect();
                assert_eq!(got, want, "depth {depth} step {step}: newest-first order");
                assert_eq!(h.last(), model[0], "depth {depth} step {step}");
                assert_eq!(
                    h.union(depth),
                    model.iter().fold(SharingBitmap::empty(), |a, &b| a | b),
                    "depth {depth} step {step}"
                );
                if model.len() == depth {
                    assert_eq!(
                        h.inter(depth),
                        model.iter().skip(1).fold(model[0], |a, &b| a & b),
                        "depth {depth} step {step}"
                    );
                } else {
                    assert_eq!(h.inter(depth), SharingBitmap::empty());
                }
                // Partial windows walk the same ring.
                for k in 1..=depth {
                    let got: Vec<_> = h.recent(k).collect();
                    let want: Vec<_> = model.iter().take(k).copied().collect();
                    assert_eq!(got, want, "depth {depth} step {step} window {k}");
                }
            }
        }
    }

    #[test]
    fn pas_learns_stable_reader() {
        let mut e = PasEntry::new(16, 2);
        let readers = bm(&[5, 9]);
        assert_eq!(e.predict(16), SharingBitmap::empty()); // cold
        for _ in 0..4 {
            e.update(readers, 16);
        }
        assert_eq!(e.predict(16), readers);
    }

    #[test]
    fn pas_learns_alternating_pattern() {
        // Node 3 reads every other interval: 1,0,1,0,... With depth 2 the
        // PAs can learn both contexts (01 -> 0, 10 -> 1).
        let mut e = PasEntry::new(16, 2);
        let on = bm(&[3]);
        let off = SharingBitmap::empty();
        for _ in 0..12 {
            e.update(on, 16);
            e.update(off, 16);
        }
        // After an `off` the history is ..10 -> next is `on`.
        assert!(e.predict(16).contains(NodeId(3)));
        e.update(on, 16); // history ..01 -> next is `off`
        assert!(!e.predict(16).contains(NodeId(3)));
    }

    #[test]
    fn pas_counters_saturate() {
        let mut e = PasEntry::new(4, 1);
        for _ in 0..100 {
            e.update(bm(&[0]), 4);
        }
        assert!(e.predict(4).contains(NodeId(0)));
        // One disagreement must not unlearn the saturated pattern: once the
        // sharing context recurs, the prediction persists.
        e.update(SharingBitmap::empty(), 4);
        e.update(bm(&[0]), 4);
        assert!(e.predict(4).contains(NodeId(0)));
    }

    #[test]
    fn history_raw_round_trip_is_exact() {
        for depth in 1..=MAX_DEPTH {
            let mut h = HistoryEntry::new(depth);
            for i in 0..2 * depth as u64 + 1 {
                h.push(SharingBitmap::from_bits(i.wrapping_mul(0x1234_5677) | 1));
                let back = HistoryEntry::from_raw(&h.to_raw()).expect("own raw state is valid");
                assert_eq!(back, h, "depth {depth} step {i}");
            }
        }
    }

    #[test]
    fn history_from_raw_rejects_impossible_state() {
        let good = HistoryEntry::new(2).to_raw();
        for (name, bad) in [
            ("zero depth", RawHistoryEntry { depth: 0, ..good }),
            (
                "oversized depth",
                RawHistoryEntry {
                    depth: MAX_DEPTH as u8 + 1,
                    ..good
                },
            ),
            ("len > depth", RawHistoryEntry { len: 3, ..good }),
            ("head >= depth", RawHistoryEntry { head: 2, ..good }),
            ("dirty dead slot", {
                let mut r = good;
                r.bitmaps[5] = bm(&[1]);
                r
            }),
        ] {
            assert!(HistoryEntry::from_raw(&bad).is_err(), "{name} accepted");
        }
    }

    #[test]
    fn pas_raw_round_trip_is_exact() {
        let mut e = PasEntry::new(8, 3);
        for i in 0..20u8 {
            e.update(bm(&[i % 8, (i * 3) % 8]), 8);
            let back = PasEntry::from_raw(e.to_raw(), 8).expect("own raw state is valid");
            assert_eq!(back, e, "step {i}");
        }
    }

    #[test]
    fn pas_from_raw_rejects_impossible_state() {
        let good = PasEntry::new(4, 2).to_raw();
        assert!(PasEntry::from_raw(good.clone(), 8).is_err(), "wrong nodes");
        let mut hot = good.clone();
        hot.counters[0] = 4;
        assert!(PasEntry::from_raw(hot, 4).is_err(), "counter above 3");
        let mut wide = good.clone();
        wide.hist[0] = 0b100;
        assert!(PasEntry::from_raw(wide, 4).is_err(), "history bits wide");
        let mut short = good;
        short.counters.pop();
        assert!(PasEntry::from_raw(short, 4).is_err(), "short pattern table");
    }

    #[test]
    fn entry_bits_matches_paper_cost_model() {
        use crate::PredictionFunction::*;
        assert_eq!(entry_bits(Last, 1, 16), 16);
        assert_eq!(entry_bits(Union, 4, 16), 64);
        assert_eq!(entry_bits(Inter, 2, 16), 32);
        assert_eq!(entry_bits(OverlapLast, 1, 16), 32);
        // PAs depth 2: 16*2 history + 16*4*2 counters = 160.
        assert_eq!(entry_bits(Pas, 2, 16), 160);
    }

    proptest! {
        /// inter(k) ⊆ last ⊆ union(k): the containment chain behind the
        /// paper's sensitivity ordering.
        #[test]
        fn prop_inter_subset_last_subset_union(
            feedbacks in proptest::collection::vec(any::<u64>(), 1..20),
            k in 1usize..=4,
        ) {
            let mut h = HistoryEntry::new(4);
            for f in feedbacks {
                h.push(SharingBitmap::from_bits(f));
            }
            prop_assert!(h.inter(k).is_subset(h.last()));
            prop_assert!(h.last().is_subset(h.union(k)));
        }

        /// Deeper unions only grow; deeper intersections only shrink.
        #[test]
        fn prop_depth_monotonicity(feedbacks in proptest::collection::vec(any::<u64>(), 1..20)) {
            let mut h = HistoryEntry::new(MAX_DEPTH);
            for f in feedbacks {
                h.push(SharingBitmap::from_bits(f));
            }
            for k in 1..MAX_DEPTH {
                prop_assert!(h.union(k).is_subset(h.union(k + 1)));
                prop_assert!(h.inter(k + 1).is_subset(h.inter(k)));
            }
        }
    }
}
