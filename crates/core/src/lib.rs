//! Coherence communication prediction: the taxonomy, predictors and
//! evaluation engine of Kaxiras & Young (HPCA 2000).
//!
//! The paper unifies all previously proposed sharing predictors in a single
//! design space with three axes, each of which is a type here:
//!
//! * **Access** ([`IndexSpec`]) — which predictor entry a coherence store
//!   miss consults: any subset of `{pid, pc, dir, addr}`, with `pc`/`addr`
//!   truncatable to a bit budget. Address-based predictors (Lai & Falsafi)
//!   and instruction-based predictors (Kaxiras & Goodman) are just two
//!   points of this space; the rest are hybrids.
//! * **Prediction function** ([`PredictionFunction`]) — how entry state
//!   becomes a predicted reader bitmap: `last`, `union`, `inter` (over a
//!   [`Scheme::depth`]-deep history), two-level `PAs` pattern prediction,
//!   and the paper-named-but-unsimulated `overlap-last`.
//! * **Update** ([`UpdateMode`]) — when and where invalidation feedback
//!   lands: `direct` (current writer's entry), `forwarded` (previous
//!   writer's entry), or `ordered` (the unimplementable-in-hardware oracle
//!   ordering, simulated in two passes).
//!
//! A [`Scheme`] bundles the three axes with a history depth, provides the
//! paper's cost model ([`Scheme::size_log2_bits`]) and its textual notation
//! (`inter(pid+pc8+add6)4[direct]`, Section 3.5) via `Display`/`FromStr`.
//! The [`engine`] runs a scheme over a [`csp_trace::Trace`] and produces a
//! [`csp_metrics::ConfusionMatrix`].
//!
//! # Example
//!
//! ```
//! use csp_core::{engine, Scheme};
//! use csp_trace::{NodeId, Pc, LineAddr, SharingBitmap, SharingEvent, Trace};
//!
//! // A stable producer-consumer pattern: node 0 writes, nodes 1-2 read.
//! let mut trace = Trace::new(16);
//! let readers = SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]);
//! for i in 0..100 {
//!     let inv = if i == 0 { SharingBitmap::empty() } else { readers };
//!     let prev = if i == 0 { None } else { Some((NodeId(0), Pc(7))) };
//!     trace.push(SharingEvent::new(NodeId(0), Pc(7), LineAddr(3), NodeId(1), inv, prev));
//! }
//! trace.set_final_readers(LineAddr(3), readers);
//!
//! let scheme: Scheme = "inter(pid+pc8)2[direct]".parse()?;
//! let m = engine::run_scheme(&trace, &scheme);
//! let s = m.screening();
//! assert!(s.pvp > 0.95 && s.sensitivity > 0.95); // stable sharing is easy
//! # Ok::<(), csp_core::ParseSchemeError>(())
//! ```

// `deny` rather than `forbid`: the [`simd`] module carries the crate's
// only `unsafe` (runtime-dispatched `core::arch` intrinsics) under a
// scoped allow; everything else stays unsafe-free at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod confidence;
pub mod cosmos;
pub mod distribution;
pub mod engine;
mod entry;
mod function;
pub mod hash;
mod index;
mod prepared;
mod scheme;
pub mod simd;
pub mod sticky;
mod table;

pub use arena::HistoryArena;
pub use entry::{HistoryEntry, PasEntry, RawHistoryEntry, RawPasEntry, MAX_DEPTH};
pub use function::PredictionFunction;
pub use index::{node_bits, IndexSpec};
pub use prepared::{KeyStream, PreparedTrace, SlotData};
pub use scheme::{ParseSchemeError, Scheme, UpdateMode};
pub use simd::{run_scheme_simd, run_scheme_simd_with, SimdBackend};
pub use table::{shard_of_key, EntryView, HistoryBackend, PredictorTable, TableEntry};
