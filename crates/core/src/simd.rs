//! SIMD batch scoring: the `simd` evaluation engine.
//!
//! The scoring fold of every history scheme is pure bitmap algebra, and
//! the confusion-matrix bookkeeping reduces to three exact popcount sums
//! per decision (the counter algebra proven in
//! [`crate::engine::run_history_family_prepared`]):
//!
//! ```text
//! tp        += popcount(predicted & actual)
//! predicted += popcount(predicted)
//! actual    += popcount(actual)
//! ```
//!
//! with `fp = predicted − tp`, `fn = actual − tp` and
//! `tn = decisions − tp − fp − fn` recovered at the end. Integer sums are
//! order- and grouping-independent, so the decisions can be accumulated
//! in batches of 8 with `core::arch::x86_64` vector popcounts and remain
//! **bit-identical** to per-event [`ConfusionMatrix::record`] calls.
//!
//! [`run_scheme_simd`] combines that batched accumulator with the
//! slot-major walk over a [`KeyStream`]'s CSR payload columns (the same
//! walk the family evaluator uses): each predictor entry's interactions
//! replay in event order against one stack-local shift window, so the
//! hot loop does no hashing and no table probe at all, and a software
//! prefetch of the next slot's payload span hides the stream latency
//! behind the current batch. PAs schemes are control-flow-bound, not
//! popcount-bound; they fall back to the prepared evaluator unchanged.
//!
//! The vector path is selected at runtime with
//! `is_x86_feature_detected!("avx2")`; every other build (or
//! `CSP_SIMD=scalar` in the environment) takes the scalar-POPCNT
//! fallback, which sums the same integers and therefore produces the
//! same matrix.
//!
//! This module is the only place in the crate allowed to use `unsafe`
//! (the crate is `deny(unsafe_code)`): the intrinsics below are
//! feature-gated by the runtime dispatch and touch only stack buffers.

#![allow(unsafe_code)]

use crate::{KeyStream, PredictionFunction, PreparedTrace, Scheme, UpdateMode, MAX_DEPTH};
use csp_metrics::ConfusionMatrix;

/// Which accumulation path [`run_scheme_simd`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdBackend {
    /// 256-bit AVX2 nibble-LUT popcounts, 8 decisions per flush.
    Avx2,
    /// Scalar `count_ones` (hardware POPCNT on x86-64-v2 builds).
    Scalar,
}

impl SimdBackend {
    /// Stable lowercase name (for logs and diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Avx2 => "avx2",
            SimdBackend::Scalar => "scalar",
        }
    }
}

/// Picks the fastest backend the host supports.
///
/// Setting `CSP_SIMD=scalar` in the environment forces the scalar
/// fallback (used by CI to exercise that path on AVX2 hosts); any other
/// value is ignored. Non-x86 targets always get the scalar path.
pub fn detect_backend() -> SimdBackend {
    if std::env::var_os("CSP_SIMD").is_some_and(|v| v == "scalar") {
        return SimdBackend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdBackend::Avx2;
        }
    }
    SimdBackend::Scalar
}

/// Runs `scheme` over an already-prepared trace with the batched SIMD
/// scorer. Bit-identical to [`crate::engine::run_scheme_prepared`].
pub fn run_scheme_simd(prepared: &PreparedTrace<'_>, scheme: &Scheme) -> ConfusionMatrix {
    run_scheme_simd_with(prepared, scheme, detect_backend())
}

/// [`run_scheme_simd`] with an explicit backend — the forced-scalar
/// entry point equivalence tests pin against the vector path.
pub fn run_scheme_simd_with(
    prepared: &PreparedTrace<'_>,
    scheme: &Scheme,
    backend: SimdBackend,
) -> ConfusionMatrix {
    if !scheme.function.uses_history() {
        // PAs: per-reader counter state, no bitmap fold to vectorize.
        return crate::engine::run_scheme_prepared(prepared, scheme);
    }
    let stream = prepared.key_stream(scheme.index);
    let nodes = prepared.nodes();
    // Same effective ring depth the table constructor uses.
    let depth = match scheme.function {
        PredictionFunction::OverlapLast => 2,
        _ => scheme.depth,
    };
    match scheme.function {
        PredictionFunction::Last => {
            by_depth::<LastFold>(&stream, scheme.update, backend, nodes, depth)
        }
        PredictionFunction::Union => {
            by_depth::<UnionFold>(&stream, scheme.update, backend, nodes, depth)
        }
        PredictionFunction::Inter => {
            by_depth::<InterFold>(&stream, scheme.update, backend, nodes, depth)
        }
        PredictionFunction::OverlapLast => {
            sweep::<2, OverlapFold>(&stream, scheme.update, backend, nodes)
        }
        PredictionFunction::Pas => unreachable!("handled by the prepared fallback above"),
    }
}

/// Monomorphizes the sweep per history depth, so the per-decision fold
/// is a fixed-bound, fully unrollable loop.
fn by_depth<F: Fold>(
    stream: &KeyStream,
    update: UpdateMode,
    backend: SimdBackend,
    nodes: usize,
    depth: usize,
) -> ConfusionMatrix {
    match depth {
        1 => sweep::<1, F>(stream, update, backend, nodes),
        2 => sweep::<2, F>(stream, update, backend, nodes),
        3 => sweep::<3, F>(stream, update, backend, nodes),
        4 => sweep::<4, F>(stream, update, backend, nodes),
        5 => sweep::<5, F>(stream, update, backend, nodes),
        6 => sweep::<6, F>(stream, update, backend, nodes),
        7 => sweep::<7, F>(stream, update, backend, nodes),
        8 => sweep::<8, F>(stream, update, backend, nodes),
        _ => panic!("history depth must be in 1..={MAX_DEPTH}, got {depth}"),
    }
}

/// A predictor entry's history as a linear shift window of raw bits,
/// exactly like the family evaluator's `Window`: `bits[0]` is the newest
/// stored feedback, slots never written stay zero. Zero is the identity
/// of the union fold and absorbing for the intersection fold, so folding
/// all `D` slots of a partially-filled window reproduces the
/// shallow-entry semantics with no length bookkeeping.
struct BitWindow<const D: usize> {
    bits: [u64; D],
}

impl<const D: usize> BitWindow<D> {
    #[inline(always)]
    fn new() -> Self {
        BitWindow { bits: [0; D] }
    }

    #[inline(always)]
    fn push(&mut self, feedback: u64) {
        self.bits.copy_within(0..D - 1, 1);
        self.bits[0] = feedback;
    }
}

/// One prediction function's fold over a shift window.
trait Fold {
    fn fold<const D: usize>(w: &BitWindow<D>) -> u64;
}

/// `last`: the newest stored bitmap (zero while cold — a cold entry
/// predicts nothing, and a stored empty feedback predicts empty either
/// way).
struct LastFold;
impl Fold for LastFold {
    #[inline(always)]
    fn fold<const D: usize>(w: &BitWindow<D>) -> u64 {
        w.bits[0]
    }
}

/// `union(D)`: OR over the window; zero padding is the fold identity.
struct UnionFold;
impl Fold for UnionFold {
    #[inline(always)]
    fn fold<const D: usize>(w: &BitWindow<D>) -> u64 {
        let mut acc = 0;
        for d in 0..D {
            acc |= w.bits[d];
        }
        acc
    }
}

/// `inter(D)`: AND over the window; a not-yet-full history still holds a
/// zero slot, so the fold is empty exactly when
/// [`crate::HistoryEntry::inter`] abstains.
struct InterFold;
impl Fold for InterFold {
    #[inline(always)]
    fn fold<const D: usize>(w: &BitWindow<D>) -> u64 {
        let mut acc = w.bits[0];
        for d in 1..D {
            acc &= w.bits[d];
        }
        acc
    }
}

/// `overlap-last` (always depth 2): predict the newest bitmap only if it
/// overlaps the one before it. With fewer than two stored bitmaps the
/// older slot is zero, the overlap test fails, and the fold abstains —
/// matching [`crate::HistoryEntry::overlap_last`].
struct OverlapFold;
impl Fold for OverlapFold {
    #[inline(always)]
    fn fold<const D: usize>(w: &BitWindow<D>) -> u64 {
        if w.bits[0] & w.bits[1] != 0 {
            w.bits[0]
        } else {
            0
        }
    }
}

/// The slot-major evaluation at one const depth and fold, feeding every
/// decision through the batched accumulator.
fn sweep<const D: usize, F: Fold>(
    stream: &KeyStream,
    update: UpdateMode,
    backend: SimdBackend,
    nodes: usize,
) -> ConfusionMatrix {
    let mut acc = BatchAcc::new(backend);
    match update {
        UpdateMode::Direct => {
            for slot in 0..stream.slot_count() {
                if slot + 1 < stream.slot_count() {
                    prefetch_next(stream.slot_data(slot + 1));
                }
                let mut w = BitWindow::<D>::new();
                for d in stream.slot_data(slot) {
                    if d.has_prev {
                        w.push(d.feedback.bits());
                    }
                    acc.push(F::fold(&w), d.actual.bits());
                }
            }
        }
        UpdateMode::Ordered => {
            for slot in 0..stream.slot_count() {
                if slot + 1 < stream.slot_count() {
                    prefetch_next(stream.slot_data(slot + 1));
                }
                let mut w = BitWindow::<D>::new();
                for d in stream.slot_data(slot) {
                    acc.push(F::fold(&w), d.actual.bits());
                    w.push(d.actual.bits());
                }
            }
        }
        // Forwarded events touch up to two slots (push via the forward
        // key, score via their own), so this walks the merged per-slot
        // op sequence instead of the per-slot event list.
        UpdateMode::Forwarded => {
            for slot in 0..stream.slot_count() {
                if slot + 1 < stream.slot_count() {
                    prefetch_next(stream.slot_op_data(slot + 1));
                }
                let mut w = BitWindow::<D>::new();
                for (&op, &payload) in stream.slot_ops(slot).iter().zip(stream.slot_op_data(slot)) {
                    if op & 1 == 0 {
                        w.push(payload.bits());
                    } else {
                        acc.push(F::fold(&w), payload.bits());
                    }
                }
            }
        }
    }
    acc.finalize(nodes)
}

/// Requests the head of the next slot's pre-gathered payload span into
/// cache while the current slot's batch is still scoring. A miss costs
/// nothing (prefetch is a hint and any address is allowed); past the last
/// slot the slice is empty and no hint is issued.
#[inline(always)]
fn prefetch_next<T>(upcoming: &[T]) {
    #[cfg(target_arch = "x86_64")]
    if let Some(first) = upcoming.first() {
        // SAFETY: prefetch performs no memory access; the pointer is a
        // valid in-bounds reference anyway.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch::<_MM_HINT_T0>(first as *const T as *const i8);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = upcoming;
}

/// Decisions per accumulator flush: two 256-bit vectors of packed
/// bitmaps.
const BATCH: usize = 8;

/// The batched confusion accumulator: buffers `(predicted, actual)` bit
/// pairs and folds full batches into the three popcount sums.
struct BatchAcc {
    pred: [u64; BATCH],
    act: [u64; BATCH],
    fill: usize,
    tp: u64,
    predicted: u64,
    actual: u64,
    scored: u64,
    backend: SimdBackend,
}

impl BatchAcc {
    fn new(backend: SimdBackend) -> Self {
        BatchAcc {
            pred: [0; BATCH],
            act: [0; BATCH],
            fill: 0,
            tp: 0,
            predicted: 0,
            actual: 0,
            scored: 0,
            backend,
        }
    }

    #[inline(always)]
    fn push(&mut self, predicted: u64, actual: u64) {
        self.pred[self.fill] = predicted;
        self.act[self.fill] = actual;
        self.fill += 1;
        if self.fill == BATCH {
            self.flush();
        }
    }

    #[inline]
    fn flush(&mut self) {
        let n = self.fill;
        self.fill = 0;
        self.scored += n as u64;
        #[cfg(target_arch = "x86_64")]
        if self.backend == SimdBackend::Avx2 && n == BATCH {
            // SAFETY: the Avx2 backend is only constructed after
            // `is_x86_feature_detected!("avx2")` (or explicitly by tests
            // on hosts that pass the same check via `detect_backend`).
            let (tp, p, a) = unsafe { avx2_batch(&self.pred, &self.act) };
            self.tp += tp;
            self.predicted += p;
            self.actual += a;
            return;
        }
        for i in 0..n {
            let (p, a) = (self.pred[i], self.act[i]);
            self.tp += (p & a).count_ones() as u64;
            self.predicted += p.count_ones() as u64;
            self.actual += a.count_ones() as u64;
        }
    }

    /// Recovers the full matrix from the three sums — the exact counter
    /// algebra of the family evaluator.
    fn finalize(mut self, nodes: usize) -> ConfusionMatrix {
        self.flush();
        let tp = self.tp;
        let fp = self.predicted - tp;
        let fn_ = self.actual - tp;
        let decisions = self.scored * nodes as u64;
        ConfusionMatrix {
            tp,
            fp,
            fn_,
            tn: decisions - tp - fp - fn_,
        }
    }
}

/// Popcount-accumulates one full batch: returns the exact
/// `(Σ popcount(p & a), Σ popcount(p), Σ popcount(a))` over all 8 lanes.
///
/// # Safety
///
/// Requires AVX2 (callers gate on runtime feature detection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2_batch(pred: &[u64; BATCH], act: &[u64; BATCH]) -> (u64, u64, u64) {
    use core::arch::x86_64::*;
    // SAFETY: loads read 32 in-bounds bytes from the 64-byte stack
    // buffers; all other intrinsics are register-only.
    unsafe {
        let mut tp = _mm256_setzero_si256();
        let mut pp = _mm256_setzero_si256();
        let mut aa = _mm256_setzero_si256();
        for half in 0..2 {
            let p = _mm256_loadu_si256(pred.as_ptr().add(half * 4) as *const __m256i);
            let a = _mm256_loadu_si256(act.as_ptr().add(half * 4) as *const __m256i);
            tp = _mm256_add_epi64(tp, popcnt_epi64(_mm256_and_si256(p, a)));
            pp = _mm256_add_epi64(pp, popcnt_epi64(p));
            aa = _mm256_add_epi64(aa, popcnt_epi64(a));
        }
        (hsum_epi64(tp), hsum_epi64(pp), hsum_epi64(aa))
    }
}

/// Per-lane 64-bit popcount via the pshufb nibble LUT (Muła's method):
/// exact counts, no precision caveats.
///
/// # Safety
///
/// Requires AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn popcnt_epi64(v: core::arch::x86_64::__m256i) -> core::arch::x86_64::__m256i {
    use core::arch::x86_64::*;
    // Register-only AVX2 operations (safe in a matching
    // `target_feature` context).
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low_mask);
    let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
    let per_byte = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
    // Sum the byte counts of each 64-bit lane.
    _mm256_sad_epu8(per_byte, _mm256_setzero_si256())
}

/// Horizontal sum of the four 64-bit lanes.
///
/// # Safety
///
/// Requires AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn hsum_epi64(v: core::arch::x86_64::__m256i) -> u64 {
    use core::arch::x86_64::*;
    let mut lanes = [0u64; 4];
    // Stores 32 bytes into the 32-byte stack buffer.
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
    lanes[0] + lanes[1] + lanes[2] + lanes[3]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_scheme;
    use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};

    fn bm(nodes: &[u8]) -> SharingBitmap {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    /// Scalar always; the vector backend only where the host can run it.
    fn testable_backends() -> Vec<SimdBackend> {
        let mut backends = vec![SimdBackend::Scalar];
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            backends.push(SimdBackend::Avx2);
        }
        backends
    }

    /// Two writers alternating on one line plus a second independent
    /// line, exercising warmup, aging and multi-slot streams.
    fn mixed_trace(pairs: usize) -> Trace {
        let mut t = Trace::new(16);
        let mut prev: Option<(NodeId, Pc)> = None;
        for i in 0..pairs * 2 {
            let (writer, pc) = if i % 2 == 0 {
                (NodeId(0), Pc(10))
            } else {
                (NodeId(1), Pc(20))
            };
            let inv = match prev {
                None => SharingBitmap::empty(),
                Some((NodeId(0), _)) => bm(&[4, 5]),
                Some(_) => bm(&[8, 9]),
            };
            t.push(SharingEvent::new(
                writer,
                pc,
                LineAddr(1),
                NodeId(0),
                inv,
                prev,
            ));
            prev = Some((writer, pc));
            if i % 3 == 0 {
                t.push(SharingEvent::new(
                    NodeId(2),
                    Pc(30),
                    LineAddr(2),
                    NodeId(3),
                    if i == 0 {
                        SharingBitmap::empty()
                    } else {
                        bm(&[1])
                    },
                    if i == 0 {
                        None
                    } else {
                        Some((NodeId(2), Pc(30)))
                    },
                ));
            }
        }
        t.set_final_readers(LineAddr(1), bm(&[8, 9]));
        t.set_final_readers(LineAddr(2), bm(&[1]));
        t
    }

    #[test]
    fn simd_matches_naive_on_every_function_update_and_depth() {
        let trace = mixed_trace(40);
        let prepared = PreparedTrace::new(&trace);
        for func in ["last", "union", "inter", "overlap-last", "pas"] {
            for update in ["direct", "forwarded", "ordered"] {
                for depth in [1usize, 2, 4, 8] {
                    let spec = match func {
                        "overlap-last" => format!("overlap-last(pid+pc4)[{update}]"),
                        "last" => format!("last(pid+pc4)1[{update}]"),
                        _ => format!("{func}(pid+pc4){depth}[{update}]"),
                    };
                    let scheme: Scheme = spec.parse().unwrap();
                    let expected = run_scheme(&trace, &scheme);
                    for backend in testable_backends() {
                        assert_eq!(
                            run_scheme_simd_with(&prepared, &scheme, backend),
                            expected,
                            "{spec} via {}",
                            backend.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_trace_scores_empty() {
        let trace = Trace::new(16);
        let prepared = PreparedTrace::new(&trace);
        let scheme: Scheme = "union(pid+pc8)2[direct]".parse().unwrap();
        assert_eq!(run_scheme_simd(&prepared, &scheme).decisions(), 0);
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(SimdBackend::Avx2.name(), "avx2");
        assert_eq!(SimdBackend::Scalar.name(), "scalar");
        // Whatever the host supports, detection never panics and the
        // result evaluates correctly.
        let b = detect_backend();
        let trace = mixed_trace(5);
        let prepared = PreparedTrace::new(&trace);
        let scheme: Scheme = "last(pid)1[direct]".parse().unwrap();
        assert_eq!(
            run_scheme_simd_with(&prepared, &scheme, b),
            run_scheme(&trace, &scheme)
        );
    }
}
