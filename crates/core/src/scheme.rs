//! Schemes: one point of the design space, with the paper's notation and
//! cost model.

use crate::entry::entry_bits;
use crate::{IndexSpec, PredictionFunction, MAX_DEPTH};
use std::fmt;
use std::str::FromStr;

/// When and where invalidation feedback reaches predictor entries
/// (paper Section 3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UpdateMode {
    /// Feedback goes to the entry of the *current* event, right before its
    /// prediction. Exact for pure address indexing; a heuristic when
    /// multiple writers alternate (the feedback may be another writer's
    /// history, Figure 2/3).
    Direct,
    /// Feedback is forwarded to the entry of the line's *previous* writer,
    /// arriving before the current event's prediction. Requires last-writer
    /// (`pid`/`pc`) state per line at the directory.
    Forwarded,
    /// Forwarded update with oracle timing: every prediction by an entry
    /// sees the feedback of all earlier predictions through that entry.
    /// Not implementable for many schemes ("updates go back in time",
    /// Figure 4); simulated in two passes as an upper bound.
    Ordered,
}

impl UpdateMode {
    /// All modes in the paper's presentation order.
    pub const ALL: [UpdateMode; 3] = [
        UpdateMode::Direct,
        UpdateMode::Forwarded,
        UpdateMode::Ordered,
    ];

    /// The notation suffix (`direct`, `forwarded`, `ordered`).
    pub fn name(self) -> &'static str {
        match self {
            UpdateMode::Direct => "direct",
            UpdateMode::Forwarded => "forwarded",
            UpdateMode::Ordered => "ordered",
        }
    }
}

impl fmt::Display for UpdateMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete prediction scheme: `function(index)depth[update]`.
///
/// # Example
///
/// ```
/// use csp_core::{PredictionFunction, Scheme, UpdateMode};
///
/// let s: Scheme = "inter(pid+pc8+add6)4[forwarded]".parse()?;
/// assert_eq!(s.function, PredictionFunction::Inter);
/// assert_eq!(s.depth, 4);
/// assert_eq!(s.update, UpdateMode::Forwarded);
/// assert_eq!(s.size_log2_bits(16), 24); // 4+8+6 index bits + log2(16*4)
/// assert_eq!(s.to_string(), "inter(pid+pc8+add6)4[forwarded]");
/// # Ok::<(), csp_core::ParseSchemeError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Scheme {
    /// The prediction function.
    pub function: PredictionFunction,
    /// The indexing of the global predictor.
    pub index: IndexSpec,
    /// History depth (`1..=MAX_DEPTH`). Must be 1 for `last` and
    /// `overlap-last`.
    pub depth: usize,
    /// The update mechanism.
    pub update: UpdateMode,
}

impl Scheme {
    /// Creates a scheme.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is out of `1..=MAX_DEPTH`, or if a depth other
    /// than 1 is given for `last`/`overlap-last` (which have no depth
    /// parameter in the paper's notation).
    pub fn new(
        function: PredictionFunction,
        index: IndexSpec,
        depth: usize,
        update: UpdateMode,
    ) -> Self {
        assert!(
            (1..=MAX_DEPTH).contains(&depth),
            "depth must be in 1..={MAX_DEPTH}, got {depth}"
        );
        if matches!(
            function,
            PredictionFunction::Last | PredictionFunction::OverlapLast
        ) {
            assert_eq!(depth, 1, "{function} prediction has a fixed depth of 1");
        }
        Scheme {
            function,
            index,
            depth,
            update,
        }
    }

    /// The zero-indexing baseline of Table 7: a single system-wide `last`
    /// entry ("predict that the next sharing bitmap will be the same as the
    /// last direct sharing bitmap in the system").
    pub fn baseline_last() -> Self {
        Scheme::new(
            PredictionFunction::Last,
            IndexSpec::none(),
            1,
            UpdateMode::Direct,
        )
    }

    /// Total predictor storage in bits on an `nodes`-node machine:
    /// `2^index_bits x entry_bits`.
    pub fn total_bits(&self, nodes: usize) -> u64 {
        entry_bits(self.function, self.depth, nodes) << self.index.bits(nodes)
    }

    /// The paper's cost figure: `ceil(log2(total bits))`. (The paper quotes
    /// the baseline as size 0, treating its single bitmap register as free;
    /// this method reports its true cost, `log2(nodes)`.)
    pub fn size_log2_bits(&self, nodes: usize) -> u32 {
        let bits = self.total_bits(nodes);
        debug_assert!(bits > 0);
        // ceil(log2): position of the highest bit, +1 unless a power of 2.
        63 - bits.leading_zeros() + u32::from(!bits.is_power_of_two())
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.function, self.index)?;
        match self.function {
            PredictionFunction::Last | PredictionFunction::OverlapLast => {}
            _ => write!(f, "{}", self.depth)?,
        }
        write!(f, "[{}]", self.update)
    }
}

/// Error parsing a scheme string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSchemeError {
    message: String,
}

impl ParseSchemeError {
    fn new(message: impl Into<String>) -> Self {
        ParseSchemeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scheme: {}", self.message)
    }
}

impl std::error::Error for ParseSchemeError {}

impl FromStr for Scheme {
    type Err = ParseSchemeError;

    /// Parses the paper's notation, e.g. `union(dir+add14)4[direct]`.
    ///
    /// Accepted liberties: the `[update]` suffix may be omitted (defaults
    /// to `direct`); the depth may be omitted for `last`/`overlap-last`
    /// (fixed at 1); `mem` is accepted as a synonym for `add` (the paper
    /// writes Lai & Falsafi's scheme as `last(pid+mem8)`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let open = s
            .find('(')
            .ok_or_else(|| ParseSchemeError::new("missing '('"))?;
        let close = s
            .find(')')
            .ok_or_else(|| ParseSchemeError::new("missing ')'"))?;
        if close < open {
            return Err(ParseSchemeError::new("')' before '('"));
        }
        let function = match &s[..open] {
            "last" => PredictionFunction::Last,
            "union" => PredictionFunction::Union,
            "inter" => PredictionFunction::Inter,
            "pas" | "PAs" => PredictionFunction::Pas,
            "overlap-last" => PredictionFunction::OverlapLast,
            other => {
                return Err(ParseSchemeError::new(format!(
                    "unknown prediction function {other:?}"
                )))
            }
        };
        let index = parse_index(&s[open + 1..close])?;
        let rest = &s[close + 1..];
        let (depth_str, update_str) = match rest.find('[') {
            Some(b) => {
                if !rest.ends_with(']') {
                    return Err(ParseSchemeError::new("missing ']'"));
                }
                (&rest[..b], Some(&rest[b + 1..rest.len() - 1]))
            }
            None => (rest, None),
        };
        let depth = if depth_str.is_empty() {
            match function {
                PredictionFunction::Last | PredictionFunction::OverlapLast => 1,
                _ => return Err(ParseSchemeError::new("missing history depth")),
            }
        } else {
            depth_str
                .parse::<usize>()
                .map_err(|_| ParseSchemeError::new(format!("bad depth {depth_str:?}")))?
        };
        if !(1..=MAX_DEPTH).contains(&depth) {
            return Err(ParseSchemeError::new(format!(
                "depth must be in 1..={MAX_DEPTH}"
            )));
        }
        if matches!(
            function,
            PredictionFunction::Last | PredictionFunction::OverlapLast
        ) && depth != 1
        {
            return Err(ParseSchemeError::new(format!(
                "{function} has a fixed depth of 1"
            )));
        }
        let update = match update_str {
            None | Some("direct") => UpdateMode::Direct,
            Some("forwarded") | Some("forward") => UpdateMode::Forwarded,
            Some("ordered") => UpdateMode::Ordered,
            Some(other) => {
                return Err(ParseSchemeError::new(format!(
                    "unknown update mode {other:?}"
                )))
            }
        };
        Ok(Scheme {
            function,
            index,
            depth,
            update,
        })
    }
}

fn parse_index(s: &str) -> Result<IndexSpec, ParseSchemeError> {
    let mut ix = IndexSpec::none();
    if s.is_empty() {
        return Ok(ix);
    }
    for part in s.split('+') {
        match part {
            "pid" => {
                if ix.pid {
                    return Err(ParseSchemeError::new("duplicate pid component"));
                }
                ix.pid = true;
            }
            "dir" => {
                if ix.dir {
                    return Err(ParseSchemeError::new("duplicate dir component"));
                }
                ix.dir = true;
            }
            _ if part.starts_with("pc") => {
                ix.pc_bits = parse_bits(&part[2..], "pc", ix.pc_bits)?;
            }
            _ if part.starts_with("add") => {
                ix.addr_bits = parse_bits(&part[3..], "add", ix.addr_bits)?;
            }
            _ if part.starts_with("mem") => {
                ix.addr_bits = parse_bits(&part[3..], "mem", ix.addr_bits)?;
            }
            other => {
                return Err(ParseSchemeError::new(format!(
                    "unknown index component {other:?}"
                )))
            }
        }
    }
    Ok(ix)
}

fn parse_bits(s: &str, field: &str, existing: u8) -> Result<u8, ParseSchemeError> {
    if existing != 0 {
        return Err(ParseSchemeError::new(format!(
            "duplicate {field} component"
        )));
    }
    let bits = s
        .parse::<u8>()
        .map_err(|_| ParseSchemeError::new(format!("bad {field} bit count {s:?}")))?;
    if bits == 0 || bits > IndexSpec::MAX_FIELD_BITS {
        return Err(ParseSchemeError::new(format!(
            "{field} bits must be in 1..={}",
            IndexSpec::MAX_FIELD_BITS
        )));
    }
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_paper_schemes() {
        // Every scheme string quoted in the paper's tables.
        for s in [
            "last()1",
            "last(pid+pc8)1",
            "inter(pid+pc8)2",
            "last(pid+mem8)",
            "inter(pid+add6)4",
            "inter(pid+pc2+add6)4",
            "inter(pid+pc6+dir+add4)4",
            "union(dir+add14)4",
            "union(add16)4",
            "union(pc4+dir)4",
            "union(pc2+dir+add2)4",
            "union(pid+dir+add4)4",
        ] {
            let parsed: Result<Scheme, _> = s.parse();
            assert!(parsed.is_ok(), "failed to parse {s:?}: {parsed:?}");
        }
    }

    #[test]
    fn parse_specific_fields() {
        let s: Scheme = "inter(pid+pc8+add6)4[forwarded]".parse().unwrap();
        assert_eq!(s.function, PredictionFunction::Inter);
        assert!(s.index.pid);
        assert_eq!(s.index.pc_bits, 8);
        assert!(!s.index.dir);
        assert_eq!(s.index.addr_bits, 6);
        assert_eq!(s.depth, 4);
        assert_eq!(s.update, UpdateMode::Forwarded);
    }

    #[test]
    fn mem_is_addr_synonym() {
        let a: Scheme = "last(pid+mem8)".parse().unwrap();
        let b: Scheme = "last(pid+add8)1".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn update_defaults_to_direct() {
        let s: Scheme = "union(dir+add2)4".parse().unwrap();
        assert_eq!(s.update, UpdateMode::Direct);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "nope(pid)1",
            "inter pid 2",
            "inter(pid]2",
            "inter(pid)0",
            "inter(pid)9",
            "inter(pid)x",
            "inter(pid)",
            "last(pid)3",
            "inter(pid+pid)2",
            "inter(pc0)2",
            "inter(wat)2",
            "inter(pid)2[sometimes]",
            "inter(pid)2[direct",
        ] {
            assert!(bad.parse::<Scheme>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn sizes_match_paper_tables() {
        let nodes = 16;
        // Table 7.
        assert_eq!(
            "last(pid+pc8)1"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            16
        );
        assert_eq!(
            "inter(pid+pc8)2"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            17
        );
        assert_eq!(
            "last(pid+mem8)"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            16
        );
        // Table 8.
        assert_eq!(
            "inter(pid+add6)4"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            16
        );
        assert_eq!(
            "inter(pid+pc2+add6)4"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            18
        );
        assert_eq!(
            "inter(pid+add4)4"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            14
        );
        assert_eq!(
            "inter(pid+add8)3"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            18
        );
        // Table 9.
        assert_eq!(
            "inter(pid+pc8+add6)4"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            24
        );
        assert_eq!(
            "inter(pid+pc6+dir+add4)4"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            24
        );
        // Tables 10/11.
        assert_eq!(
            "union(dir+add14)4"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            24
        );
        assert_eq!(
            "union(add16)4"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            22
        );
        assert_eq!(
            "union(dir+add2)4"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            12
        );
        assert_eq!(
            "union(pc4+dir)4"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            14
        );
        assert_eq!(
            "union(pid+dir+add4)4"
                .parse::<Scheme>()
                .unwrap()
                .size_log2_bits(nodes),
            18
        );
    }

    #[test]
    fn baseline_cost_is_log2_nodes() {
        assert_eq!(Scheme::baseline_last().size_log2_bits(16), 4);
        assert_eq!(Scheme::baseline_last().total_bits(16), 16);
    }

    #[test]
    fn display_roundtrip_canonical_forms() {
        for s in [
            "last()[direct]",
            "union(pid+dir+add4)4[forwarded]",
            "inter(pc12)2[ordered]",
            "pas(pid+add4)2[direct]",
            "overlap-last(pid+pc8)[direct]",
        ] {
            let parsed: Scheme = s.parse().unwrap();
            assert_eq!(parsed.to_string(), s, "roundtrip failed for {s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "fixed depth")]
    fn last_with_depth_two_rejected() {
        let _ = Scheme::new(
            PredictionFunction::Last,
            IndexSpec::none(),
            2,
            UpdateMode::Direct,
        );
    }

    proptest! {
        /// Display/parse round-trips for arbitrary valid schemes.
        #[test]
        fn prop_roundtrip(
            func in 0usize..5,
            pid: bool, pc_bits in 0u8..=16, dir: bool, addr_bits in 0u8..=16,
            depth in 1usize..=MAX_DEPTH,
            update in 0usize..3,
        ) {
            let function = PredictionFunction::ALL[func];
            let depth = match function {
                PredictionFunction::Last | PredictionFunction::OverlapLast => 1,
                _ => depth,
            };
            let s = Scheme::new(
                function,
                IndexSpec::new(pid, pc_bits, dir, addr_bits),
                depth,
                UpdateMode::ALL[update],
            );
            let reparsed: Scheme = s.to_string().parse().unwrap();
            prop_assert_eq!(s, reparsed);
        }

        /// The cost figure decomposes as index bits + entry-cost bits.
        #[test]
        fn prop_size_decomposes(
            pid: bool, pc_bits in 0u8..=16, dir: bool, addr_bits in 0u8..=16,
            depth in 1usize..=4,
        ) {
            let ix = IndexSpec::new(pid, pc_bits, dir, addr_bits);
            let s = Scheme::new(PredictionFunction::Union, ix, depth, UpdateMode::Direct);
            let entry = Scheme::new(PredictionFunction::Union, IndexSpec::none(), depth, UpdateMode::Direct);
            prop_assert_eq!(
                s.size_log2_bits(16),
                ix.bits(16) + entry.size_log2_bits(16)
            );
        }
    }
}
