//! Predictor tables: sparse storage of entry state, keyed by index.

use crate::arena::HistoryArena;
use crate::entry::{HistoryEntry, PasEntry};
use crate::hash::FxHashMap;
use crate::{PredictionFunction, Scheme};
use csp_trace::SharingBitmap;

/// The state of one global predictor: a sparse map from index key to entry.
///
/// The table allocates entries lazily (only for keys that are touched), so
/// even a 24-bit index costs only as much as the distinct keys the trace
/// exercises. Prediction on a cold (never-updated) entry yields the empty
/// bitmap — a cold predictor forwards nothing.
///
/// History-family tables (`last`/`union`/`inter`/`overlap-last`) store
/// their entries in a flat open-addressing [`HistoryArena`] by default —
/// one probe of the one-probe API touches one slot-major cache line. The
/// original hashed storage remains available as the reference twin (see
/// [`HistoryBackend`]); PAs entries are heap-backed and stay hashed.
///
/// # Example
///
/// ```
/// use csp_core::{PredictorTable, Scheme};
/// use csp_trace::{NodeId, SharingBitmap};
///
/// let scheme: Scheme = "union(pid+add4)2[direct]".parse()?;
/// let mut t = PredictorTable::new(&scheme, 16);
/// assert!(t.predict(7).is_empty()); // cold
/// t.update(7, SharingBitmap::from_nodes(&[NodeId(2)]));
/// t.update(7, SharingBitmap::from_nodes(&[NodeId(3)]));
/// assert_eq!(t.predict(7).count(), 2); // union of the two feedbacks
/// # Ok::<(), csp_core::ParseSchemeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct PredictorTable {
    function: PredictionFunction,
    depth: usize,
    nodes: usize,
    storage: Storage,
}

#[derive(Clone, Debug)]
enum Storage {
    Arena(HistoryArena),
    Hashed(FxHashMap<u64, HistoryEntry>),
    Pas(FxHashMap<u64, PasEntry>),
}

/// Storage backend for history-family tables (see
/// [`PredictorTable::with_backend`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistoryBackend {
    /// Flat open-addressing arena (the default): key and entry inline in
    /// one power-of-two slot array.
    Arena,
    /// The original `FxHashMap` storage, kept as the bit-identity
    /// reference twin for the arena.
    Hashed,
}

/// A borrowed view of one table entry (see [`PredictorTable::entries`]).
#[derive(Clone, Copy, Debug)]
pub enum EntryView<'a> {
    /// A ring-history entry (`last`/`union`/`inter`/`overlap-last`).
    History(&'a HistoryEntry),
    /// A two-level PAs entry.
    Pas(&'a PasEntry),
}

/// An owned table entry for [`PredictorTable::insert_entry`].
#[derive(Clone, Debug)]
pub enum TableEntry {
    /// A ring-history entry.
    History(HistoryEntry),
    /// A two-level PAs entry.
    Pas(PasEntry),
}

impl PredictorTable {
    /// Creates an empty table for `scheme` on an `nodes`-node machine.
    pub fn new(scheme: &Scheme, nodes: usize) -> Self {
        Self::with_capacity(scheme, nodes, 0)
    }

    /// Creates an empty table pre-sized for `capacity` entries.
    ///
    /// The evaluation hot loop grows the table one entry at a time; with
    /// the default constructor that means a rehash-and-move of every
    /// entry at each power-of-two boundary. Sweeps that already know the
    /// trace's distinct-key count (see
    /// [`KeyStream::distinct_keys`](crate::KeyStream::distinct_keys))
    /// allocate the end-state table up front instead.
    pub fn with_capacity(scheme: &Scheme, nodes: usize, capacity: usize) -> Self {
        Self::with_backend(scheme, nodes, capacity, HistoryBackend::Arena)
    }

    /// Creates an empty table with an explicit history storage backend.
    ///
    /// The two backends are bit-identical through every table operation;
    /// the hashed twin exists so equivalence tests (and any caller wary
    /// of the arena) can cross-check them. PAs schemes ignore the choice
    /// (their entries are heap-backed and always hashed).
    pub fn with_backend(
        scheme: &Scheme,
        nodes: usize,
        capacity: usize,
        backend: HistoryBackend,
    ) -> Self {
        // `last`/`overlap-last` need up to 2 stored bitmaps.
        let depth = match scheme.function {
            PredictionFunction::OverlapLast => 2,
            _ => scheme.depth,
        };
        let storage = if scheme.function.uses_history() {
            match backend {
                HistoryBackend::Arena => {
                    Storage::Arena(HistoryArena::with_capacity(depth, capacity))
                }
                HistoryBackend::Hashed => Storage::Hashed(FxHashMap::with_capacity_and_hasher(
                    capacity,
                    Default::default(),
                )),
            }
        } else {
            Storage::Pas(FxHashMap::with_capacity_and_hasher(
                capacity,
                Default::default(),
            ))
        };
        PredictorTable {
            function: scheme.function,
            depth,
            nodes,
            storage,
        }
    }

    /// The prediction function applied to one history entry's state.
    #[inline]
    fn predict_history(
        function: PredictionFunction,
        depth: usize,
        h: &HistoryEntry,
    ) -> SharingBitmap {
        match function {
            PredictionFunction::Last => h.last(),
            PredictionFunction::Union => h.union(depth),
            PredictionFunction::Inter => h.inter(depth),
            PredictionFunction::OverlapLast => h.overlap_last(),
            PredictionFunction::Pas => unreachable!("PAs uses Pas storage"),
        }
    }

    /// The predicted reader bitmap for `key` (empty if the entry is cold).
    #[inline]
    pub fn predict(&self, key: u64) -> SharingBitmap {
        match &self.storage {
            Storage::Arena(arena) => match arena.get(key) {
                None => SharingBitmap::empty(),
                Some(h) => Self::predict_history(self.function, self.depth, h),
            },
            Storage::Hashed(map) => match map.get(&key) {
                None => SharingBitmap::empty(),
                Some(h) => Self::predict_history(self.function, self.depth, h),
            },
            Storage::Pas(map) => map
                .get(&key)
                .map(|e| e.predict(self.nodes))
                .unwrap_or(SharingBitmap::empty()),
        }
    }

    /// Delivers a feedback bitmap to the entry for `key`, creating it if
    /// needed.
    #[inline]
    pub fn update(&mut self, key: u64, feedback: SharingBitmap) {
        match &mut self.storage {
            Storage::Arena(arena) => {
                arena.entry_mut(key).push(feedback);
            }
            Storage::Hashed(map) => {
                map.entry(key)
                    .or_insert_with(|| HistoryEntry::new(self.depth))
                    .push(feedback);
            }
            Storage::Pas(map) => {
                map.entry(key)
                    .or_insert_with(|| PasEntry::new(self.nodes, self.depth))
                    .update(feedback, self.nodes);
            }
        }
    }

    /// Delivers `feedback` to `key`'s entry, then predicts through the
    /// *updated* entry — the `direct`-update step of the engine loop — in
    /// a single table probe.
    ///
    /// Bit-identical to `update(key, feedback)` followed by
    /// `predict(key)`, without the second hash lookup (the hottest pair
    /// of operations in a design-space sweep).
    #[inline]
    pub fn update_and_predict(&mut self, key: u64, feedback: SharingBitmap) -> SharingBitmap {
        match &mut self.storage {
            Storage::Arena(arena) => {
                let h = arena.entry_mut(key);
                h.push(feedback);
                Self::predict_history(self.function, self.depth, h)
            }
            Storage::Hashed(map) => {
                let h = map
                    .entry(key)
                    .or_insert_with(|| HistoryEntry::new(self.depth));
                h.push(feedback);
                Self::predict_history(self.function, self.depth, h)
            }
            Storage::Pas(map) => {
                let e = map
                    .entry(key)
                    .or_insert_with(|| PasEntry::new(self.nodes, self.depth));
                e.update(feedback, self.nodes);
                e.predict(self.nodes)
            }
        }
    }

    /// Predicts through `key`'s entry, then trains it with `feedback` —
    /// the `ordered`-update step of the engine loop — in a single table
    /// probe.
    ///
    /// Bit-identical to `predict(key)` followed by
    /// `update(key, feedback)`: the entry this creates for a cold key
    /// predicts exactly what the absent entry would have (empty), because
    /// a fresh entry holds no history.
    #[inline]
    pub fn predict_and_update(&mut self, key: u64, feedback: SharingBitmap) -> SharingBitmap {
        match &mut self.storage {
            Storage::Arena(arena) => {
                let h = arena.entry_mut(key);
                let predicted = Self::predict_history(self.function, self.depth, h);
                h.push(feedback);
                predicted
            }
            Storage::Hashed(map) => {
                let h = map
                    .entry(key)
                    .or_insert_with(|| HistoryEntry::new(self.depth));
                let predicted = Self::predict_history(self.function, self.depth, h);
                h.push(feedback);
                predicted
            }
            Storage::Pas(map) => {
                let e = map
                    .entry(key)
                    .or_insert_with(|| PasEntry::new(self.nodes, self.depth));
                let predicted = e.predict(self.nodes);
                e.update(feedback, self.nodes);
                predicted
            }
        }
    }

    /// Delivers `feedback` to `key`'s entry and returns a view of the
    /// updated history — the one-probe form of `update` +
    /// [`history`](Self::history) used by the family evaluator. Returns
    /// `None` on PAs storage.
    #[inline]
    pub fn update_and_history(
        &mut self,
        key: u64,
        feedback: SharingBitmap,
    ) -> Option<&HistoryEntry> {
        match &mut self.storage {
            Storage::Arena(arena) => {
                let h = arena.entry_mut(key);
                h.push(feedback);
                Some(h)
            }
            Storage::Hashed(map) => {
                let h = map
                    .entry(key)
                    .or_insert_with(|| HistoryEntry::new(self.depth));
                h.push(feedback);
                Some(h)
            }
            Storage::Pas(map) => {
                map.entry(key)
                    .or_insert_with(|| PasEntry::new(self.nodes, self.depth))
                    .update(feedback, self.nodes);
                None
            }
        }
    }

    /// Mutable access to `key`'s history entry, creating a cold one if
    /// absent — the family evaluator's one-probe score-then-train step
    /// for `ordered` update (a cold entry scores exactly like an absent
    /// one: it holds no history). Returns `None` on PAs storage.
    #[inline]
    pub fn history_mut(&mut self, key: u64) -> Option<&mut HistoryEntry> {
        match &mut self.storage {
            Storage::Arena(arena) => Some(arena.entry_mut(key)),
            Storage::Hashed(map) => Some(
                map.entry(key)
                    .or_insert_with(|| HistoryEntry::new(self.depth)),
            ),
            Storage::Pas(_) => None,
        }
    }

    /// Whether this table stores ring-history entries (`true`) or
    /// two-level PAs entries (`false`).
    pub fn uses_history(&self) -> bool {
        !matches!(self.storage, Storage::Pas(_))
    }

    /// The history depth entries of this table carry.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The machine width the table was created for.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Iterates over every allocated entry as `(key, view)` pairs, in
    /// arbitrary (hash-map) order. Serialization callers that need a
    /// canonical byte stream should sort by key.
    pub fn entries(&self) -> impl Iterator<Item = (u64, EntryView<'_>)> + '_ {
        let arena = match &self.storage {
            Storage::Arena(a) => Some(a.iter().map(|(k, e)| (k, EntryView::History(e)))),
            _ => None,
        };
        let hashed = match &self.storage {
            Storage::Hashed(m) => Some(m.iter().map(|(&k, e)| (k, EntryView::History(e)))),
            _ => None,
        };
        let pas = match &self.storage {
            Storage::Pas(m) => Some(m.iter().map(|(&k, e)| (k, EntryView::Pas(e)))),
            _ => None,
        };
        arena
            .into_iter()
            .flatten()
            .chain(hashed.into_iter().flatten())
            .chain(pas.into_iter().flatten())
    }

    /// Inserts a fully-formed entry under `key` (the restore half of
    /// [`entries`](Self::entries); replaces any existing entry).
    ///
    /// # Errors
    ///
    /// Rejects an entry of the wrong storage family for this table's
    /// prediction function, a history entry whose ring depth differs from
    /// the table's, or a PAs entry sized for a different machine width —
    /// the corruption classes a snapshot decoder cannot rule out on its
    /// own.
    pub fn insert_entry(&mut self, key: u64, entry: TableEntry) -> Result<(), String> {
        match (&mut self.storage, entry) {
            (Storage::Arena(arena), TableEntry::History(e)) => {
                if e.depth() != self.depth {
                    return Err(format!(
                        "history entry depth {} in a depth-{} table",
                        e.depth(),
                        self.depth
                    ));
                }
                arena.insert(key, e);
                Ok(())
            }
            (Storage::Hashed(map), TableEntry::History(e)) => {
                if e.depth() != self.depth {
                    return Err(format!(
                        "history entry depth {} in a depth-{} table",
                        e.depth(),
                        self.depth
                    ));
                }
                map.insert(key, e);
                Ok(())
            }
            (Storage::Pas(map), TableEntry::Pas(e)) => {
                if e.depth() != self.depth {
                    return Err(format!(
                        "PAs entry depth {} in a depth-{} table",
                        e.depth(),
                        self.depth
                    ));
                }
                map.insert(key, e);
                Ok(())
            }
            _ => Err("entry storage kind does not match the table's".into()),
        }
    }

    /// Number of entries allocated so far (distinct keys touched).
    pub fn entries_touched(&self) -> usize {
        match &self.storage {
            Storage::Arena(a) => a.len(),
            Storage::Hashed(m) => m.len(),
            Storage::Pas(m) => m.len(),
        }
    }

    /// Direct access to the history entry for `key`, if this is a
    /// history-based table and the entry exists.
    pub fn history(&self, key: u64) -> Option<&HistoryEntry> {
        match &self.storage {
            Storage::Arena(a) => a.get(key),
            Storage::Hashed(m) => m.get(&key),
            Storage::Pas(_) => None,
        }
    }

    /// Splits an empty table into `shards` independent shard tables.
    ///
    /// A sharded deployment (e.g. `csp-serve`) routes every key to the
    /// shard [`shard_of_key`] names and keeps one of these tables per
    /// shard. Because an entry's state depends only on the ordered
    /// sequence of updates to *its own key*, running each shard
    /// independently — as long as per-key operation order is preserved —
    /// produces bit-identical predictions to one global table.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn split(scheme: &Scheme, nodes: usize, shards: usize) -> Vec<PredictorTable> {
        assert!(shards > 0, "need at least one shard");
        (0..shards)
            .map(|_| PredictorTable::new(scheme, nodes))
            .collect()
    }

    /// Merges the entries of `other` into `self` (used to fold shard
    /// tables back into one global table, e.g. for snapshots).
    ///
    /// The two tables must come from the same scheme; keys present in
    /// both (impossible under disjoint shard routing) keep `other`'s
    /// entry. History tables absorb across backends (arena and hashed
    /// are the same storage family).
    ///
    /// # Panics
    ///
    /// Panics if the tables use different storage kinds (different
    /// prediction-function families).
    pub fn absorb(&mut self, other: PredictorTable) {
        match (&mut self.storage, other.storage) {
            (Storage::Arena(a), Storage::Arena(b)) => {
                for (k, e) in b.iter() {
                    a.insert(k, *e);
                }
            }
            (Storage::Arena(a), Storage::Hashed(b)) => {
                for (k, e) in b {
                    a.insert(k, e);
                }
            }
            (Storage::Hashed(a), Storage::Arena(b)) => {
                a.extend(b.iter().map(|(k, e)| (k, *e)));
            }
            (Storage::Hashed(a), Storage::Hashed(b)) => a.extend(b),
            (Storage::Pas(a), Storage::Pas(b)) => a.extend(b),
            _ => panic!("cannot absorb a table of a different storage kind"),
        }
    }
}

/// The shard that owns `key` in an `shards`-way partitioned predictor.
///
/// Fibonacci multiplicative spreading before the modulo, so that keys
/// whose low bits carry structured fields (truncated `addr`/`pc`) still
/// distribute evenly across any shard count.
///
/// # Panics
///
/// Panics (in debug builds) if `shards` is zero.
#[inline]
pub fn shard_of_key(key: u64, shards: usize) -> usize {
    debug_assert!(shards > 0, "need at least one shard");
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize % shards
}

// Shard workers move tables across threads; keep that possibility pinned
// at compile time.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PredictorTable>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::NodeId;

    fn bm(nodes: &[u8]) -> SharingBitmap {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    fn table(spec: &str) -> PredictorTable {
        PredictorTable::new(&spec.parse().unwrap(), 16)
    }

    #[test]
    fn cold_entries_predict_empty() {
        for spec in [
            "last()1",
            "union(pid)2",
            "inter(pid)4",
            "pas(pid)2",
            "overlap-last(pid)",
        ] {
            assert!(table(spec).predict(0).is_empty(), "{spec} cold prediction");
        }
    }

    #[test]
    fn last_predicts_most_recent() {
        let mut t = table("last(pid)1");
        t.update(1, bm(&[2]));
        t.update(1, bm(&[5]));
        assert_eq!(t.predict(1), bm(&[5]));
        assert!(t.predict(2).is_empty()); // other key untouched
    }

    #[test]
    fn union_and_inter_over_depth() {
        let mut u = table("union(pid)3");
        let mut i = table("inter(pid)3");
        for f in [bm(&[1, 2]), bm(&[2, 3]), bm(&[2, 4])] {
            u.update(0, f);
            i.update(0, f);
        }
        assert_eq!(u.predict(0), bm(&[1, 2, 3, 4]));
        assert_eq!(i.predict(0), bm(&[2]));
    }

    #[test]
    fn depth_window_slides() {
        let mut u = table("union(pid)2");
        u.update(0, bm(&[1]));
        u.update(0, bm(&[2]));
        u.update(0, bm(&[3]));
        assert_eq!(u.predict(0), bm(&[2, 3])); // {1} aged out
    }

    #[test]
    fn overlap_last_gates_on_overlap() {
        let mut t = table("overlap-last(pid)");
        t.update(0, bm(&[1, 2]));
        t.update(0, bm(&[2, 3]));
        assert_eq!(t.predict(0), bm(&[2, 3]));
        t.update(0, bm(&[9]));
        assert!(t.predict(0).is_empty());
    }

    #[test]
    fn pas_trains_per_key() {
        let mut t = table("pas(pid)2");
        for _ in 0..4 {
            t.update(3, bm(&[7]));
        }
        assert_eq!(t.predict(3), bm(&[7]));
        assert!(t.predict(4).is_empty());
        assert_eq!(t.entries_touched(), 1);
    }

    #[test]
    fn history_accessor() {
        let mut t = table("union(pid)2");
        t.update(0, bm(&[1]));
        assert_eq!(t.history(0).unwrap().last(), bm(&[1]));
        assert!(t.history(9).is_none());
        assert!(table("pas(pid)2").history(0).is_none());
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in [1, 2, 3, 7, 16] {
            for key in 0..1000u64 {
                let s = shard_of_key(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of_key(key, shards), "routing must be pure");
            }
        }
    }

    #[test]
    fn shard_routing_spreads_structured_keys() {
        // Keys that differ only in their low (addr) bits must not all land
        // on one shard.
        let shards = 8;
        let mut hit = vec![0usize; shards];
        for key in 0..64u64 {
            hit[shard_of_key(key, shards)] += 1;
        }
        let occupied = hit.iter().filter(|&&c| c > 0).count();
        assert!(occupied >= shards / 2, "low-bit keys collapsed: {hit:?}");
    }

    #[test]
    fn split_tables_reassemble_to_global_state() {
        let scheme: Scheme = "union(pid)2".parse().unwrap();
        let shards = 4;
        let mut global = PredictorTable::new(&scheme, 16);
        let mut split = PredictorTable::split(&scheme, 16, shards);
        for key in 0..200u64 {
            let fb = bm(&[(key % 16) as u8]);
            global.update(key, fb);
            split[shard_of_key(key, shards)].update(key, fb);
        }
        for key in 0..200u64 {
            assert_eq!(
                global.predict(key),
                split[shard_of_key(key, shards)].predict(key),
                "key {key}"
            );
        }
        let mut merged = PredictorTable::new(&scheme, 16);
        for t in split {
            merged.absorb(t);
        }
        assert_eq!(merged.entries_touched(), global.entries_touched());
        for key in 0..200u64 {
            assert_eq!(merged.predict(key), global.predict(key));
        }
    }

    #[test]
    fn entries_export_and_insert_rebuild_identical_tables() {
        for spec in ["union(pid)3", "pas(pid)2"] {
            let scheme: Scheme = spec.parse().unwrap();
            let mut original = PredictorTable::new(&scheme, 16);
            for key in 0..100u64 {
                original.update(key % 13, bm(&[(key % 16) as u8]));
            }
            let mut rebuilt = PredictorTable::new(&scheme, 16);
            for (key, view) in original.entries() {
                let entry = match view {
                    EntryView::History(h) => TableEntry::History(*h),
                    EntryView::Pas(p) => TableEntry::Pas(p.clone()),
                };
                rebuilt.insert_entry(key, entry).unwrap();
            }
            assert_eq!(rebuilt.entries_touched(), original.entries_touched());
            for key in 0..13u64 {
                assert_eq!(
                    rebuilt.predict(key),
                    original.predict(key),
                    "{spec} key {key}"
                );
            }
        }
    }

    #[test]
    fn insert_entry_rejects_mismatches() {
        let mut history = table("union(pid)3");
        let mut pas = table("pas(pid)2");
        assert!(history
            .insert_entry(0, TableEntry::Pas(PasEntry::new(16, 2)))
            .is_err());
        assert!(pas
            .insert_entry(0, TableEntry::History(HistoryEntry::new(2)))
            .is_err());
        // Right family, wrong depth.
        assert!(history
            .insert_entry(0, TableEntry::History(HistoryEntry::new(2)))
            .is_err());
        assert!(pas
            .insert_entry(0, TableEntry::Pas(PasEntry::new(16, 3)))
            .is_err());
        // Right family and depth.
        assert!(history
            .insert_entry(0, TableEntry::History(HistoryEntry::new(3)))
            .is_ok());
        assert!(pas
            .insert_entry(0, TableEntry::Pas(PasEntry::new(16, 2)))
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "different storage kind")]
    fn absorb_rejects_mismatched_storage() {
        let mut a = table("union(pid)2");
        a.absorb(table("pas(pid)2"));
    }

    /// One-probe ops must be bit-identical to their two-probe spellings,
    /// for both storage families and arbitrary interleavings.
    #[test]
    fn one_probe_ops_match_two_probe_spellings() {
        for spec in [
            "last(pid)1",
            "union(pid)3",
            "inter(pid)2",
            "overlap-last(pid)",
            "pas(pid)2",
        ] {
            let mut one = table(spec);
            let mut two = table(spec);
            for step in 0..60u64 {
                let key = step % 5;
                let feedback = bm(&[(step % 16) as u8, ((step * 7) % 16) as u8]);
                if step % 2 == 0 {
                    let got = one.update_and_predict(key, feedback);
                    two.update(key, feedback);
                    assert_eq!(got, two.predict(key), "{spec} update_and_predict @{step}");
                } else {
                    let got = one.predict_and_update(key, feedback);
                    let want = two.predict(key);
                    two.update(key, feedback);
                    assert_eq!(got, want, "{spec} predict_and_update @{step}");
                }
                // The tables must stay in lock-step on every key.
                for k in 0..5 {
                    assert_eq!(one.predict(k), two.predict(k), "{spec} key {k} @{step}");
                }
            }
        }
    }

    #[test]
    fn update_and_history_views_the_updated_entry() {
        let mut t = table("union(pid)2");
        let h = t.update_and_history(7, bm(&[1])).expect("history storage");
        assert_eq!(h.last(), bm(&[1]));
        assert!(table("pas(pid)2").update_and_history(0, bm(&[1])).is_none());
    }

    #[test]
    fn history_mut_creates_cold_entries_that_score_like_absent_ones() {
        let mut t = table("inter(pid)2");
        {
            let h = t.history_mut(3).expect("history storage");
            assert!(h.is_empty(), "fresh entry holds no history");
        }
        // The cold entry predicts exactly what the absent entry did.
        assert!(t.predict(3).is_empty());
        assert!(table("pas(pid)2").history_mut(0).is_none());
    }

    /// The arena backend must be bit-identical to the hashed reference
    /// twin through every table operation and interleaving.
    #[test]
    fn arena_and_hashed_backends_are_bit_identical() {
        for spec in [
            "last(pid)1",
            "union(pid)3",
            "inter(pid)2",
            "overlap-last(pid)",
        ] {
            let scheme: Scheme = spec.parse().unwrap();
            let mut arena = PredictorTable::with_backend(&scheme, 16, 0, HistoryBackend::Arena);
            let mut hashed = PredictorTable::with_backend(&scheme, 16, 0, HistoryBackend::Hashed);
            assert!(arena.uses_history() && hashed.uses_history());
            for step in 0..400u64 {
                let key = (step * 7) % 23;
                let feedback = bm(&[(step % 16) as u8, ((step * 3) % 16) as u8]);
                match step % 3 {
                    0 => assert_eq!(
                        arena.update_and_predict(key, feedback),
                        hashed.update_and_predict(key, feedback),
                        "{spec} update_and_predict @{step}"
                    ),
                    1 => assert_eq!(
                        arena.predict_and_update(key, feedback),
                        hashed.predict_and_update(key, feedback),
                        "{spec} predict_and_update @{step}"
                    ),
                    _ => {
                        arena.update(key, feedback);
                        hashed.update(key, feedback);
                    }
                }
            }
            assert_eq!(arena.entries_touched(), hashed.entries_touched(), "{spec}");
            for key in 0..23u64 {
                assert_eq!(arena.predict(key), hashed.predict(key), "{spec} key {key}");
                assert_eq!(arena.history(key), hashed.history(key), "{spec} key {key}");
            }
        }
    }

    /// History tables absorb across backends: a hashed shard folds into
    /// an arena global (and vice versa) without losing an entry.
    #[test]
    fn absorb_crosses_history_backends() {
        let scheme: Scheme = "union(pid)2".parse().unwrap();
        let mut arena = PredictorTable::with_backend(&scheme, 16, 0, HistoryBackend::Arena);
        let mut hashed = PredictorTable::with_backend(&scheme, 16, 0, HistoryBackend::Hashed);
        for key in 0..50u64 {
            hashed.update(key, bm(&[(key % 16) as u8]));
        }
        arena.absorb(hashed.clone());
        assert_eq!(arena.entries_touched(), 50);
        for key in 0..50u64 {
            assert_eq!(arena.predict(key), hashed.predict(key), "key {key}");
        }
        let mut hashed_global =
            PredictorTable::with_backend(&scheme, 16, 0, HistoryBackend::Hashed);
        hashed_global.absorb(arena);
        assert_eq!(hashed_global.entries_touched(), 50);
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let scheme: Scheme = "union(pid)2".parse().unwrap();
        let mut hinted = PredictorTable::with_capacity(&scheme, 16, 128);
        let mut plain = PredictorTable::new(&scheme, 16);
        for key in 0..200u64 {
            let fb = bm(&[(key % 16) as u8]);
            hinted.update(key, fb);
            plain.update(key, fb);
        }
        assert_eq!(hinted.entries_touched(), plain.entries_touched());
        for key in 0..200u64 {
            assert_eq!(hinted.predict(key), plain.predict(key));
        }
    }
}
