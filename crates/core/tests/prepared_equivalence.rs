//! Property-style equivalence suite: the prepared evaluation path must be
//! bit-identical to the naive one.
//!
//! The prepared engine ([`engine::run_scheme_prepared`] and friends) walks
//! flat resolved columns and shared key streams, and touches predictor
//! tables through the one-probe entry API. None of that may change a
//! single confusion-matrix count relative to the naive spelling: these
//! properties pin that across random small traces, all three update
//! modes, and both storage families (history and PAs).

use csp_core::{engine, IndexSpec, PredictionFunction, PreparedTrace, Scheme, UpdateMode};
use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

const NODES: usize = 8;

/// One raw generated event: `(line, writer, pc, feedback_bits, final_bits)`.
type RawEvent = (u64, u8, u32, u8, u8);

/// Builds a trace with *consistent* per-line previous-writer chains (the
/// invariant real traces have and `forward_key_of` relies on): each
/// event's `prev_writer` is the line's actual previous writer, and only
/// events with a previous writer carry invalidation feedback.
fn build_trace(raw: &[RawEvent]) -> Trace {
    let mut t = Trace::new(NODES);
    let mut last: HashMap<u64, (NodeId, Pc)> = HashMap::new();
    for &(line, writer, pc, bits, _) in raw {
        let writer = NodeId(writer % NODES as u8);
        let pc = Pc(pc % 16);
        let prev = last.get(&line).copied();
        let invalidated = if prev.is_some() {
            SharingBitmap::from_bits(u64::from(bits)).masked(NODES)
        } else {
            SharingBitmap::empty()
        };
        let dir = NodeId((line % NODES as u64) as u8);
        t.push(SharingEvent::new(
            writer,
            pc,
            LineAddr(line),
            dir,
            invalidated,
            prev,
        ));
        last.insert(line, (writer, pc));
    }
    for &(line, _, _, _, final_bits) in raw {
        t.set_final_readers(
            LineAddr(line),
            SharingBitmap::from_bits(u64::from(final_bits)).masked(NODES),
        );
    }
    t
}

/// The index points exercised: pc-hybrid, pure-address, full hybrid, and
/// the degenerate baseline (everything shares one entry).
fn index_points() -> [IndexSpec; 4] {
    [
        IndexSpec::new(true, 2, false, 0),
        IndexSpec::new(false, 0, false, 3),
        IndexSpec::new(true, 2, true, 2),
        IndexSpec::none(),
    ]
}

/// Every scheme shape the equivalence must hold for: both storage
/// families (history: last/union/inter/overlap-last; PAs) at a spread of
/// depths.
fn scheme_points(index: IndexSpec, update: UpdateMode) -> Vec<Scheme> {
    let mut out = vec![
        Scheme::new(PredictionFunction::Last, index, 1, update),
        Scheme::new(PredictionFunction::OverlapLast, index, 1, update),
    ];
    for depth in [1, 2, 4] {
        out.push(Scheme::new(PredictionFunction::Union, index, depth, update));
        out.push(Scheme::new(PredictionFunction::Inter, index, depth, update));
        out.push(Scheme::new(PredictionFunction::Pas, index, depth, update));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `run_scheme_prepared` == `run_scheme` for every update mode and
    /// both storage families, on random consistent traces.
    #[test]
    fn prepared_scheme_matches_naive(
        raw in vec((0u64..4, any::<u8>(), any::<u32>(), any::<u8>(), any::<u8>()), 1..40),
    ) {
        let trace = build_trace(&raw);
        let prepared = PreparedTrace::new(&trace);
        for index in index_points() {
            for update in UpdateMode::ALL {
                for scheme in scheme_points(index, update) {
                    prop_assert_eq!(
                        engine::run_scheme_prepared(&prepared, &scheme),
                        engine::run_scheme(&trace, &scheme),
                        "scheme {}", scheme
                    );
                }
            }
        }
    }

    /// The single-pass family evaluator stays equivalent too, at every
    /// depth it reports.
    #[test]
    fn prepared_family_matches_naive(
        raw in vec((0u64..4, any::<u8>(), any::<u32>(), any::<u8>(), any::<u8>()), 1..40),
        max_depth in 1usize..=4,
    ) {
        let trace = build_trace(&raw);
        let prepared = PreparedTrace::new(&trace);
        for index in index_points() {
            for update in UpdateMode::ALL {
                let fam_p = engine::run_history_family_prepared(&prepared, index, update, max_depth);
                let fam_n = engine::run_history_family(&trace, index, update, max_depth);
                prop_assert_eq!(&fam_p, &fam_n, "family {index} {update} depth {max_depth}");
                // And the family agrees with individual prepared runs.
                for d in 1..=max_depth {
                    let u = Scheme::new(PredictionFunction::Union, index, d, update);
                    let i = Scheme::new(PredictionFunction::Inter, index, d, update);
                    prop_assert_eq!(&fam_p.union[d - 1], &engine::run_scheme_prepared(&prepared, &u));
                    prop_assert_eq!(&fam_p.inter[d - 1], &engine::run_scheme_prepared(&prepared, &i));
                }
            }
        }
    }

    /// Per-event predictions (not just aggregate matrices) are identical,
    /// so downstream consumers (forwarding estimator, paired comparison,
    /// online replay) see the same stream.
    #[test]
    fn prepared_predictions_match_naive(
        raw in vec((0u64..6, any::<u8>(), any::<u32>(), any::<u8>(), any::<u8>()), 1..30),
    ) {
        let trace = build_trace(&raw);
        let prepared = PreparedTrace::new(&trace);
        for update in UpdateMode::ALL {
            let scheme = Scheme::new(
                PredictionFunction::Union,
                IndexSpec::new(true, 2, false, 2),
                2,
                update,
            );
            prop_assert_eq!(
                engine::predictions_for_prepared(&prepared, &scheme),
                engine::predictions_for(&trace, &scheme)
            );
        }
    }

    /// Paired comparisons ride the same prepared path without drift.
    #[test]
    fn prepared_compare_matches_naive(
        raw in vec((0u64..4, any::<u8>(), any::<u32>(), any::<u8>(), any::<u8>()), 1..30),
    ) {
        let trace = build_trace(&raw);
        let prepared = PreparedTrace::new(&trace);
        let a = Scheme::new(PredictionFunction::Last, IndexSpec::new(true, 2, false, 0), 1, UpdateMode::Direct);
        let b = Scheme::new(PredictionFunction::Pas, IndexSpec::new(false, 0, false, 3), 2, UpdateMode::Forwarded);
        let naive = engine::compare_schemes(&trace, &a, &b);
        let fast = engine::compare_schemes_prepared(&prepared, &a, &b);
        prop_assert_eq!(naive.both_correct, fast.both_correct);
        prop_assert_eq!(naive.both_wrong, fast.both_wrong);
        prop_assert_eq!(naive.only_a, fast.only_a);
        prop_assert_eq!(naive.only_b, fast.only_b);
    }
}

/// A deterministic exhaustive sweep on one fixed trace: every function x
/// update x depth x index point, so a failure here names the exact cell
/// without needing the property seed.
#[test]
fn exhaustive_fixed_trace_sweep() {
    let raw: Vec<RawEvent> = (0..48u64)
        .map(|i| {
            (
                i % 3,
                (i * 5 % 7) as u8,
                (i * 11 % 5) as u32,
                (i * 37 % 251) as u8,
                (i * 13 % 251) as u8,
            )
        })
        .collect();
    let trace = build_trace(&raw);
    let prepared = PreparedTrace::new(&trace);
    for index in index_points() {
        for update in UpdateMode::ALL {
            for scheme in scheme_points(index, update) {
                assert_eq!(
                    engine::run_scheme_prepared(&prepared, &scheme),
                    engine::run_scheme(&trace, &scheme),
                    "scheme {scheme}"
                );
            }
        }
    }
    // One key stream per index point, shared across all schemes above.
    assert_eq!(prepared.cached_streams(), index_points().len());
}
