//! Property-style equivalence suite: the prepared evaluation path must be
//! bit-identical to the naive one.
//!
//! The prepared engine ([`engine::run_scheme_prepared`] and friends) walks
//! flat resolved columns and shared key streams, and touches predictor
//! tables through the one-probe entry API. None of that may change a
//! single confusion-matrix count relative to the naive spelling: these
//! properties pin that across random small traces, all three update
//! modes, and both storage families (history and PAs).

use csp_core::{
    engine, run_scheme_simd, run_scheme_simd_with, IndexSpec, PredictionFunction, PredictorTable,
    PreparedTrace, Scheme, SimdBackend, UpdateMode,
};
use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

const NODES: usize = 8;

/// One raw generated event: `(line, writer, pc, feedback_bits, final_bits)`.
type RawEvent = (u64, u8, u32, u8, u8);

/// Builds a trace with *consistent* per-line previous-writer chains (the
/// invariant real traces have and `forward_key_of` relies on): each
/// event's `prev_writer` is the line's actual previous writer, and only
/// events with a previous writer carry invalidation feedback.
fn build_trace(raw: &[RawEvent]) -> Trace {
    let mut t = Trace::new(NODES);
    let mut last: HashMap<u64, (NodeId, Pc)> = HashMap::new();
    for &(line, writer, pc, bits, _) in raw {
        let writer = NodeId(writer % NODES as u8);
        let pc = Pc(pc % 16);
        let prev = last.get(&line).copied();
        let invalidated = if prev.is_some() {
            SharingBitmap::from_bits(u64::from(bits)).masked(NODES)
        } else {
            SharingBitmap::empty()
        };
        let dir = NodeId((line % NODES as u64) as u8);
        t.push(SharingEvent::new(
            writer,
            pc,
            LineAddr(line),
            dir,
            invalidated,
            prev,
        ));
        last.insert(line, (writer, pc));
    }
    for &(line, _, _, _, final_bits) in raw {
        t.set_final_readers(
            LineAddr(line),
            SharingBitmap::from_bits(u64::from(final_bits)).masked(NODES),
        );
    }
    t
}

/// The index points exercised: pc-hybrid, pure-address, full hybrid, and
/// the degenerate baseline (everything shares one entry).
fn index_points() -> [IndexSpec; 4] {
    [
        IndexSpec::new(true, 2, false, 0),
        IndexSpec::new(false, 0, false, 3),
        IndexSpec::new(true, 2, true, 2),
        IndexSpec::none(),
    ]
}

/// Every scheme shape the equivalence must hold for: both storage
/// families (history: last/union/inter/overlap-last; PAs) at a spread of
/// depths.
fn scheme_points(index: IndexSpec, update: UpdateMode) -> Vec<Scheme> {
    let mut out = vec![
        Scheme::new(PredictionFunction::Last, index, 1, update),
        Scheme::new(PredictionFunction::OverlapLast, index, 1, update),
    ];
    for depth in [1, 2, 4] {
        out.push(Scheme::new(PredictionFunction::Union, index, depth, update));
        out.push(Scheme::new(PredictionFunction::Inter, index, depth, update));
        out.push(Scheme::new(PredictionFunction::Pas, index, depth, update));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `run_scheme_prepared` == `run_scheme` for every update mode and
    /// both storage families, on random consistent traces.
    #[test]
    fn prepared_scheme_matches_naive(
        raw in vec((0u64..4, any::<u8>(), any::<u32>(), any::<u8>(), any::<u8>()), 1..40),
    ) {
        let trace = build_trace(&raw);
        let prepared = PreparedTrace::new(&trace);
        for index in index_points() {
            for update in UpdateMode::ALL {
                for scheme in scheme_points(index, update) {
                    prop_assert_eq!(
                        engine::run_scheme_prepared(&prepared, &scheme),
                        engine::run_scheme(&trace, &scheme),
                        "scheme {}", scheme
                    );
                }
            }
        }
    }

    /// The single-pass family evaluator stays equivalent too, at every
    /// depth it reports.
    #[test]
    fn prepared_family_matches_naive(
        raw in vec((0u64..4, any::<u8>(), any::<u32>(), any::<u8>(), any::<u8>()), 1..40),
        max_depth in 1usize..=4,
    ) {
        let trace = build_trace(&raw);
        let prepared = PreparedTrace::new(&trace);
        for index in index_points() {
            for update in UpdateMode::ALL {
                let fam_p = engine::run_history_family_prepared(&prepared, index, update, max_depth);
                let fam_n = engine::run_history_family(&trace, index, update, max_depth);
                prop_assert_eq!(&fam_p, &fam_n, "family {index} {update} depth {max_depth}");
                // And the family agrees with individual prepared runs.
                for d in 1..=max_depth {
                    let u = Scheme::new(PredictionFunction::Union, index, d, update);
                    let i = Scheme::new(PredictionFunction::Inter, index, d, update);
                    prop_assert_eq!(&fam_p.union[d - 1], &engine::run_scheme_prepared(&prepared, &u));
                    prop_assert_eq!(&fam_p.inter[d - 1], &engine::run_scheme_prepared(&prepared, &i));
                }
            }
        }
    }

    /// Per-event predictions (not just aggregate matrices) are identical,
    /// so downstream consumers (forwarding estimator, paired comparison,
    /// online replay) see the same stream.
    #[test]
    fn prepared_predictions_match_naive(
        raw in vec((0u64..6, any::<u8>(), any::<u32>(), any::<u8>(), any::<u8>()), 1..30),
    ) {
        let trace = build_trace(&raw);
        let prepared = PreparedTrace::new(&trace);
        for update in UpdateMode::ALL {
            let scheme = Scheme::new(
                PredictionFunction::Union,
                IndexSpec::new(true, 2, false, 2),
                2,
                update,
            );
            prop_assert_eq!(
                engine::predictions_for_prepared(&prepared, &scheme),
                engine::predictions_for(&trace, &scheme)
            );
        }
    }

    /// The SIMD engine (arena tables, slot-major windows, batched
    /// popcount accumulation, runtime-dispatched backend) is
    /// bit-identical to naive across every scheme family, update mode,
    /// and index point, on random consistent traces.
    #[test]
    fn simd_scheme_matches_naive(
        raw in vec((0u64..4, any::<u8>(), any::<u32>(), any::<u8>(), any::<u8>()), 1..40),
    ) {
        let trace = build_trace(&raw);
        let prepared = PreparedTrace::new(&trace);
        for index in index_points() {
            for update in UpdateMode::ALL {
                for scheme in scheme_points(index, update) {
                    prop_assert_eq!(
                        run_scheme_simd(&prepared, &scheme),
                        engine::run_scheme(&trace, &scheme),
                        "scheme {}", scheme
                    );
                }
            }
        }
    }

    /// The forced-scalar backend is bit-identical too, independently of
    /// what the host CPU supports — the equivalence CI relies on when it
    /// rebuilds without target features.
    #[test]
    fn simd_scalar_fallback_matches_naive(
        raw in vec((0u64..4, any::<u8>(), any::<u32>(), any::<u8>(), any::<u8>()), 1..40),
    ) {
        let trace = build_trace(&raw);
        let prepared = PreparedTrace::new(&trace);
        for update in UpdateMode::ALL {
            for scheme in scheme_points(IndexSpec::new(true, 2, false, 2), update) {
                prop_assert_eq!(
                    run_scheme_simd_with(&prepared, &scheme, SimdBackend::Scalar),
                    engine::run_scheme(&trace, &scheme),
                    "scheme {}", scheme
                );
            }
        }
    }

    /// Narrower machines keep the equivalence: the node count only
    /// changes the confusion matrix's true-negative algebra, which the
    /// batched counters must reproduce exactly.
    #[test]
    fn simd_matches_naive_across_node_counts(
        raw in vec((0u64..4, any::<u8>(), any::<u32>(), any::<u8>(), any::<u8>()), 1..30),
        nodes in 1usize..=16,
    ) {
        // Rebuild the trace at this width (build_trace pins NODES=8).
        let mut t = Trace::new(nodes);
        let mut last: HashMap<u64, (NodeId, Pc)> = HashMap::new();
        for &(line, writer, pc, bits, _) in &raw {
            let writer = NodeId(writer % nodes as u8);
            let prev = last.get(&line).copied();
            let invalidated = if prev.is_some() {
                SharingBitmap::from_bits(u64::from(bits)).masked(nodes)
            } else {
                SharingBitmap::empty()
            };
            t.push(SharingEvent::new(
                writer,
                Pc(pc % 16),
                LineAddr(line),
                NodeId((line % nodes as u64) as u8),
                invalidated,
                prev,
            ));
            last.insert(line, (writer, Pc(pc % 16)));
        }
        for &(line, _, _, _, final_bits) in &raw {
            t.set_final_readers(
                LineAddr(line),
                SharingBitmap::from_bits(u64::from(final_bits)).masked(nodes),
            );
        }
        let prepared = PreparedTrace::new(&t);
        for update in UpdateMode::ALL {
            for scheme in scheme_points(IndexSpec::new(true, 2, true, 2), update) {
                prop_assert_eq!(
                    run_scheme_simd(&prepared, &scheme),
                    engine::run_scheme(&t, &scheme),
                    "scheme {} nodes {}", scheme, nodes
                );
            }
        }
    }

    /// Splitting a table's key space across shards and absorbing the
    /// shards back reproduces the unsharded table exactly — the
    /// invariant the serving engine's scatter/gather rests on, now over
    /// the arena backend.
    #[test]
    fn arena_split_absorb_round_trips(
        ops in vec((any::<u64>(), any::<u8>()), 1..200),
        shards in 1usize..=5,
    ) {
        let scheme = Scheme::new(
            PredictionFunction::Union,
            IndexSpec::new(true, 2, false, 2),
            2,
            UpdateMode::Direct,
        );
        let mut whole = PredictorTable::new(&scheme, NODES);
        let mut parts = PredictorTable::split(&scheme, NODES, shards);
        for &(key, bits) in &ops {
            let feedback = SharingBitmap::from_bits(u64::from(bits)).masked(NODES);
            whole.update(key, feedback);
            parts[csp_core::shard_of_key(key, shards)].update(key, feedback);
        }
        let mut merged = PredictorTable::new(&scheme, NODES);
        for part in parts {
            merged.absorb(part);
        }
        prop_assert_eq!(merged.entries_touched(), whole.entries_touched());
        for &(key, _) in &ops {
            prop_assert_eq!(merged.predict(key), whole.predict(key), "key {}", key);
        }
    }

    /// Absorb crosses storage backends without drift: a hashed-backend
    /// shard absorbed into an arena-backed table (and vice versa) lands
    /// every entry.
    #[test]
    fn absorb_is_backend_agnostic(
        ops in vec((any::<u64>(), any::<u8>()), 1..120),
    ) {
        use csp_core::HistoryBackend;
        let scheme = Scheme::new(
            PredictionFunction::Inter,
            IndexSpec::new(true, 2, false, 0),
            2,
            UpdateMode::Direct,
        );
        for (into, from) in [
            (HistoryBackend::Arena, HistoryBackend::Hashed),
            (HistoryBackend::Hashed, HistoryBackend::Arena),
        ] {
            let mut reference = PredictorTable::new(&scheme, NODES);
            let mut dst = PredictorTable::with_backend(&scheme, NODES, 0, into);
            let mut src = PredictorTable::with_backend(&scheme, NODES, 0, from);
            for &(key, bits) in &ops {
                let feedback = SharingBitmap::from_bits(u64::from(bits)).masked(NODES);
                reference.update(key, feedback);
                // Route by key so each key's whole update sequence lands
                // on exactly one side (absorb replaces on collision).
                if key % 2 == 0 { dst.update(key, feedback) } else { src.update(key, feedback) }
            }
            dst.absorb(src);
            for &(key, _) in &ops {
                prop_assert_eq!(dst.predict(key), reference.predict(key), "key {}", key);
            }
        }
    }

    /// Paired comparisons ride the same prepared path without drift.
    #[test]
    fn prepared_compare_matches_naive(
        raw in vec((0u64..4, any::<u8>(), any::<u32>(), any::<u8>(), any::<u8>()), 1..30),
    ) {
        let trace = build_trace(&raw);
        let prepared = PreparedTrace::new(&trace);
        let a = Scheme::new(PredictionFunction::Last, IndexSpec::new(true, 2, false, 0), 1, UpdateMode::Direct);
        let b = Scheme::new(PredictionFunction::Pas, IndexSpec::new(false, 0, false, 3), 2, UpdateMode::Forwarded);
        let naive = engine::compare_schemes(&trace, &a, &b);
        let fast = engine::compare_schemes_prepared(&prepared, &a, &b);
        prop_assert_eq!(naive.both_correct, fast.both_correct);
        prop_assert_eq!(naive.both_wrong, fast.both_wrong);
        prop_assert_eq!(naive.only_a, fast.only_a);
        prop_assert_eq!(naive.only_b, fast.only_b);
    }
}

/// A deterministic exhaustive sweep on one fixed trace: every function x
/// update x depth x index point, so a failure here names the exact cell
/// without needing the property seed.
#[test]
fn exhaustive_fixed_trace_sweep() {
    let raw: Vec<RawEvent> = (0..48u64)
        .map(|i| {
            (
                i % 3,
                (i * 5 % 7) as u8,
                (i * 11 % 5) as u32,
                (i * 37 % 251) as u8,
                (i * 13 % 251) as u8,
            )
        })
        .collect();
    let trace = build_trace(&raw);
    let prepared = PreparedTrace::new(&trace);
    for index in index_points() {
        for update in UpdateMode::ALL {
            for scheme in scheme_points(index, update) {
                assert_eq!(
                    engine::run_scheme_prepared(&prepared, &scheme),
                    engine::run_scheme(&trace, &scheme),
                    "scheme {scheme}"
                );
            }
        }
    }
    // One key stream per index point, shared across all schemes above.
    assert_eq!(prepared.cached_streams(), index_points().len());
}
