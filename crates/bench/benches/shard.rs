//! Microbenchmarks of the serving layer: raw single-shard predictor
//! table lookups/updates (the per-shard inner loop of `csp-served`) and
//! the sharded online engine end to end — batched predictions and full
//! trace replay through the worker threads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csp_bench::bench_suite;
use csp_core::{PredictorTable, Scheme};
use csp_serve::{probe_stream, ShardedEngine};
use csp_workloads::Benchmark;

/// Keys a probe stream resolves to under `scheme`, precomputed so the
/// table benches time only the table, not the index packing.
fn keys_for(scheme: &Scheme, nodes: usize, count: usize) -> Vec<u64> {
    let engine = ShardedEngine::new(*scheme, nodes, 1);
    let keys = probe_stream(0x5EED, nodes, count)
        .iter()
        .map(|p| engine.key_of(p))
        .collect();
    drop(engine);
    keys
}

fn bench_single_shard_table(c: &mut Criterion) {
    let scheme: Scheme = "last(pid+pc8)1[direct]".parse().expect("valid scheme");
    let nodes = 16;
    let keys = keys_for(&scheme, nodes, 4096);
    let feedback = csp_trace::SharingBitmap::from_bits(0b1010);

    let mut g = c.benchmark_group("shard_table");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("lookup_4096", |b| {
        let mut table = PredictorTable::new(&scheme, nodes);
        for &k in &keys {
            table.update(k, feedback);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &keys {
                acc ^= table.predict(k).bits();
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("update_4096", |b| {
        let mut table = PredictorTable::new(&scheme, nodes);
        b.iter(|| {
            for &k in &keys {
                table.update(k, feedback);
            }
            std::hint::black_box(table.entries_touched())
        })
    });
    g.finish();
}

fn bench_sharded_engine(c: &mut Criterion) {
    let scheme: Scheme = "last(pid+pc8)1[direct]".parse().expect("valid scheme");
    let nodes = 16usize;
    let probes = probe_stream(0x5EED, nodes, 1024);

    let mut g = c.benchmark_group("sharded_engine");
    g.throughput(Throughput::Elements(probes.len() as u64));
    for shards in [1usize, 4] {
        let engine = ShardedEngine::new(scheme, nodes, shards);
        g.bench_function(format!("predict_batch_1024_x{shards}"), |b| {
            b.iter(|| std::hint::black_box(engine.predict_batch(&probes)))
        });
    }
    g.finish();

    let suite = bench_suite();
    let trace = &suite.trace(Benchmark::Unstruct).trace;
    let mut g = c.benchmark_group("sharded_replay");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for shards in [1usize, 4] {
        g.bench_function(format!("replay_unstruct_x{shards}"), |b| {
            b.iter(|| {
                let engine = ShardedEngine::new(scheme, trace.nodes(), shards);
                engine.replay_trace(trace).expect("matching width");
                std::hint::black_box(engine.stats().scored)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = shard;
    config = Criterion::default().sample_size(20);
    targets = bench_single_shard_table, bench_sharded_engine
}
criterion_main!(shard);
