//! Benches regenerating Figures 6–9 of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use csp_bench::{bench_suite, print_report};
use csp_harness::experiments::ExperimentId;

fn bench_figures(c: &mut Criterion) {
    let suite = bench_suite();
    for id in [
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::ExtA,
        ExperimentId::ExtC,
        ExperimentId::ExtDepth,
        ExperimentId::ExtField,
        ExperimentId::ExtSticky,
        ExperimentId::ExtConfidence,
        ExperimentId::ExtCosmos,
        ExperimentId::ExtDegree,
    ] {
        print_report(&id.run(suite));
        c.bench_function(id.name(), |b| {
            b.iter(|| std::hint::black_box(id.run(suite)))
        });
    }
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_figures
}
criterion_main!(figures);
