//! Bench regenerating Tables 8–11: the full design-space search.
//!
//! One sweep produces all four top-ten tables; the bench times the whole
//! search (the most expensive computation in the paper's evaluation).

use criterion::{criterion_group, criterion_main, Criterion};
use csp_bench::{bench_suite, print_report};
use csp_harness::experiments::top_tables;

fn bench_search(c: &mut Criterion) {
    let suite = bench_suite();
    let tops = top_tables(suite);
    print_report(&tops.table8);
    print_report(&tops.table9);
    print_report(&tops.table10);
    print_report(&tops.table11);
    c.bench_function("table8_to_11_design_space_search", |b| {
        b.iter(|| std::hint::black_box(top_tables(suite)))
    });
}

criterion_group! {
    name = search;
    config = Criterion::default().sample_size(10);
    targets = bench_search
}
criterion_main!(search);
