//! Benches regenerating Tables 3–7 of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use csp_bench::{bench_suite, print_report};
use csp_harness::experiments::ExperimentId;

fn bench_tables(c: &mut Criterion) {
    let suite = bench_suite();
    for id in [
        ExperimentId::Table3,
        ExperimentId::Table4,
        ExperimentId::Table5,
        ExperimentId::Table6,
        ExperimentId::Table7,
    ] {
        print_report(&id.run(suite));
        c.bench_function(id.name(), |b| {
            b.iter(|| std::hint::black_box(id.run(suite)))
        });
    }
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_tables
}
criterion_main!(tables);
