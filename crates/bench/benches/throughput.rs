//! Microbenchmarks of the library's hot paths: the memory-system
//! simulator, the prediction engine (per update mode and function), and
//! the single-pass family evaluator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csp_bench::bench_suite;
use csp_core::{engine, IndexSpec, Scheme, UpdateMode};
use csp_sim::{MemorySystem, SystemConfig};
use csp_workloads::Benchmark;

fn bench_simulator(c: &mut Criterion) {
    let accesses = Benchmark::Water.accesses(0.05, 1);
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(accesses.len() as u64));
    g.bench_function("memory_system_run", |b| {
        b.iter(|| {
            let mut sys = MemorySystem::new(SystemConfig::paper_16_node());
            sys.run(accesses.iter().copied());
            std::hint::black_box(sys.finish())
        })
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let suite = bench_suite();
    let trace = &suite.trace(Benchmark::Unstruct).trace;
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for spec in [
        "last(pid+pc8)1[direct]",
        "inter(pid+add6)4[direct]",
        "union(dir+add14)4[forwarded]",
        "inter(pid+pc8+add6)4[ordered]",
        "pas(pid+add4)2[direct]",
        "overlap-last(pid+pc8)[direct]",
    ] {
        let scheme: Scheme = spec.parse().expect("valid scheme");
        g.bench_function(spec, |b| {
            b.iter(|| std::hint::black_box(engine::run_scheme(trace, &scheme)))
        });
    }
    g.bench_function("family_sweep_depth4", |b| {
        b.iter(|| {
            std::hint::black_box(engine::run_history_family(
                trace,
                IndexSpec::new(true, 8, false, 6),
                UpdateMode::Direct,
                4,
            ))
        })
    });
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    for bench in [Benchmark::Barnes, Benchmark::Ocean] {
        g.bench_function(format!("generate_{bench}"), |b| {
            b.iter(|| std::hint::black_box(bench.accesses(0.05, 1)))
        });
    }
    g.finish();
}

criterion_group! {
    name = throughput;
    config = Criterion::default().sample_size(20);
    targets = bench_simulator, bench_engine, bench_workload_generation
}
criterion_main!(throughput);
