//! Observability overhead benchmarks.
//!
//! Two questions, answered directly:
//!
//! 1. What does each `csp-obs` primitive cost? (counter inc, histogram
//!    record, disabled span — the things sitting on the serving hot
//!    path.)
//! 2. What does the shard worker's full instrumentation add to a batch?
//!    The `obs_overhead` group runs the per-shard ingest inner loop bare
//!    and then with the *exact* instrument calls `csp_serve::shard`
//!    makes per message (queue-depth gauge add/sub, batch-size and
//!    batch-service-time histogram records); `main` re-times both loops
//!    head-to-head and prints the overhead ratio, which must stay under
//!    the 3% budget the serving layer promises.

use criterion::{criterion_group, Criterion, Throughput};
use csp_core::{PredictorTable, Scheme};
use csp_obs::{span, Counter, Gauge, Histogram};
use csp_serve::{probe_stream, ShardedEngine};
use std::time::Instant;

const BATCH: usize = 1024;

fn scheme() -> Scheme {
    "last(pid+pc8)1[direct]".parse().expect("valid scheme")
}

/// Keys a probe stream resolves to, precomputed so the loops time table
/// work, not index packing.
fn keys(nodes: usize, count: usize) -> Vec<u64> {
    let engine = ShardedEngine::new(scheme(), nodes, 1);
    probe_stream(0x5EED, nodes, count)
        .iter()
        .map(|p| engine.key_of(p))
        .collect()
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_primitives");
    g.throughput(Throughput::Elements(1));

    let counter = Counter::new();
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let gauge = Gauge::new();
    g.bench_function("gauge_add_sub", |b| {
        b.iter(|| {
            gauge.add(1);
            gauge.sub(1);
        })
    });

    let histogram = Histogram::new();
    let mut v = 0u64;
    g.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            histogram.record(v >> 32);
        })
    });

    // The common case on the serving path: tracing compiled in, turned
    // off. One relaxed load, no guard armed.
    csp_obs::global_ring().set_enabled(false);
    g.bench_function("span_disabled", |b| {
        b.iter(|| {
            let _g = span("bench.noop");
        })
    });
    g.finish();
}

/// The shard worker's ingest inner loop, bare.
fn ingest_bare(
    table: &mut PredictorTable,
    keys: &[u64],
    feedback: csp_trace::SharingBitmap,
) -> u64 {
    for &k in keys {
        table.update(k, feedback);
    }
    table.entries_touched() as u64
}

/// The same loop wrapped in exactly the instrument calls
/// `csp_serve::shard` makes per ingest message.
fn ingest_instrumented(
    table: &mut PredictorTable,
    keys: &[u64],
    feedback: csp_trace::SharingBitmap,
    queue_depth: &Gauge,
    batch_size: &Histogram,
    batch_ns: &Histogram,
) -> u64 {
    queue_depth.add(1);
    queue_depth.sub(1);
    let started = Instant::now();
    for &k in keys {
        table.update(k, feedback);
    }
    batch_size.record(keys.len() as u64);
    batch_ns.record_duration(started.elapsed());
    table.entries_touched() as u64
}

fn bench_overhead(c: &mut Criterion) {
    let nodes = 16;
    let keys = keys(nodes, BATCH);
    let feedback = csp_trace::SharingBitmap::from_bits(0b1010);

    let mut g = c.benchmark_group("obs_overhead");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("ingest_1024_bare", |b| {
        let mut table = PredictorTable::new(&scheme(), nodes);
        b.iter(|| std::hint::black_box(ingest_bare(&mut table, &keys, feedback)))
    });
    g.bench_function("ingest_1024_instrumented", |b| {
        let mut table = PredictorTable::new(&scheme(), nodes);
        let queue_depth = Gauge::new();
        let batch_size = Histogram::new();
        let batch_ns = Histogram::new();
        b.iter(|| {
            std::hint::black_box(ingest_instrumented(
                &mut table,
                &keys,
                feedback,
                &queue_depth,
                &batch_size,
                &batch_ns,
            ))
        })
    });
    g.finish();
}

/// Times the bare and instrumented ingest loops head to head and prints
/// the overhead as a percentage. Interleaves the two loops round-robin so
/// frequency scaling and cache warm-up hit both equally.
fn overhead_report() {
    let nodes = 16;
    let keys = keys(nodes, BATCH);
    let feedback = csp_trace::SharingBitmap::from_bits(0b1010);
    let mut bare_table = PredictorTable::new(&scheme(), nodes);
    let mut inst_table = PredictorTable::new(&scheme(), nodes);
    let queue_depth = Gauge::new();
    let batch_size = Histogram::new();
    let batch_ns = Histogram::new();

    const ROUNDS: usize = 2000;
    // Warm both tables to steady state first.
    for _ in 0..100 {
        std::hint::black_box(ingest_bare(&mut bare_table, &keys, feedback));
        std::hint::black_box(ingest_instrumented(
            &mut inst_table,
            &keys,
            feedback,
            &queue_depth,
            &batch_size,
            &batch_ns,
        ));
    }
    // Medians of interleaved per-round samples: robust against the
    // scheduler or a frequency ramp landing on one side.
    let mut bare_samples = Vec::with_capacity(ROUNDS);
    let mut inst_samples = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let t = Instant::now();
        std::hint::black_box(ingest_bare(&mut bare_table, &keys, feedback));
        bare_samples.push(t.elapsed().as_nanos());
        let t = Instant::now();
        std::hint::black_box(ingest_instrumented(
            &mut inst_table,
            &keys,
            feedback,
            &queue_depth,
            &batch_size,
            &batch_ns,
        ));
        inst_samples.push(t.elapsed().as_nanos());
    }
    bare_samples.sort_unstable();
    inst_samples.sort_unstable();
    let bare = bare_samples[ROUNDS / 2] as f64;
    let inst = inst_samples[ROUNDS / 2] as f64;
    let overhead = (inst - bare) / bare * 100.0;
    println!(
        "obs_overhead: bare {bare:.0} ns/batch, instrumented {inst:.0} ns/batch, \
         median overhead {overhead:+.2}% (budget 3%)"
    );
}

criterion_group! {
    name = obs;
    config = Criterion::default().sample_size(50);
    targets = bench_primitives, bench_overhead
}

fn main() {
    obs();
    overhead_report();
}
