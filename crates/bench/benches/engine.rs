//! Bench the evaluation engine itself: the naive per-cell family sweep
//! against the prepared single-pass sweep (shared trace resolution and
//! key streams).
//!
//! Both arms score the same decisions over the Figure 6 index grid under
//! every update mode, so the measured gap is exactly what the prepared
//! layer amortises. `csp-repro --bench-engine` runs the same workload and
//! writes the JSON report CI gates on; this target exists so `cargo
//! bench` covers the comparison too.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csp_bench::bench_suite;
use csp_core::engine::run_history_family_prepared;
use csp_core::{run_scheme_simd, PredictionFunction, Scheme, UpdateMode};
use csp_harness::bench_engine::family_reference;
use csp_harness::runner::PreparedSuite;
use csp_harness::space::figure6_index_grid;

const MAX_DEPTH: usize = 4;

fn bench_engine(c: &mut Criterion) {
    let suite = bench_suite();
    let indexes = figure6_index_grid();
    let updates = UpdateMode::ALL;
    let suite_events: u64 = suite.traces().iter().map(|b| b.trace.len() as u64).sum();
    let events = (indexes.len() * updates.len()) as u64 * suite_events;

    let mut group = c.benchmark_group("engine_family_sweep");
    group.throughput(Throughput::Elements(events));
    // Same reference arm as `csp-repro --bench-engine`: the frozen
    // pre-prepared-layer spelling, paying per-cell resolution, key
    // derivation, and hashed table probes.
    group.bench_function("naive_per_cell", |b| {
        b.iter(|| {
            for &index in &indexes {
                for &update in updates.iter() {
                    for bench in suite.traces() {
                        std::hint::black_box(family_reference(
                            &bench.trace,
                            index,
                            update,
                            MAX_DEPTH,
                        ));
                    }
                }
            }
        })
    });
    group.bench_function("prepared_shared_streams", |b| {
        b.iter(|| {
            let prepared = PreparedSuite::new(suite);
            for &index in &indexes {
                for &update in updates.iter() {
                    for pt in prepared.traces() {
                        std::hint::black_box(run_history_family_prepared(
                            pt, index, update, MAX_DEPTH,
                        ));
                    }
                }
                // Evict like the sweep planner once no remaining cell
                // needs this index, keeping the footprint bounded without
                // thrashing the stream cache mid-pass.
                for pt in prepared.traces() {
                    pt.evict_stream(index);
                }
            }
        })
    });
    // The simd engine scores one scheme per call, so it covers the same
    // union+inter x depth grid as the family sweep cell by cell — arena
    // tables, slot-major windows, batched popcount accumulation. Each
    // decision is scored once per (function, depth) cell rather than
    // once per pass, so its element count scales accordingly.
    group.throughput(Throughput::Elements(events * (2 * MAX_DEPTH) as u64));
    group.bench_function("simd_batch_scoring", |b| {
        b.iter(|| {
            let prepared = PreparedSuite::new(suite);
            for &index in &indexes {
                for &update in updates.iter() {
                    for pt in prepared.traces() {
                        for depth in 1..=MAX_DEPTH {
                            for func in [PredictionFunction::Union, PredictionFunction::Inter] {
                                let scheme = Scheme::new(func, index, depth, update);
                                std::hint::black_box(run_scheme_simd(pt, &scheme));
                            }
                        }
                    }
                }
                for pt in prepared.traces() {
                    pt.evict_stream(index);
                }
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(engine);
