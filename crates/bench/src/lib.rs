//! Shared helpers for the benchmark targets.
//!
//! Each Criterion bench regenerates one table or figure of the paper
//! (printing the rows once, so `cargo bench` output doubles as a
//! reproduction record) and then times the computation at a reduced
//! workload scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use csp_harness::Suite;
use std::sync::OnceLock;

/// The workload scale benchmarks run at: large enough for stable rates,
/// small enough that `cargo bench --workspace` stays in minutes.
pub const BENCH_SCALE: f64 = 0.05;

/// The per-session suite, generated once and shared by all bench targets
/// in a process.
pub fn bench_suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(|| Suite::generate(BENCH_SCALE, 1))
}

/// Prints a reproduction report once, flagged so it is easy to find in
/// `cargo bench` output.
pub fn print_report(report: &str) {
    println!("\n--- reproduction output (scale {BENCH_SCALE}) ---");
    println!("{report}");
}
