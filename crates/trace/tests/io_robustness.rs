//! Property tests for the on-disk trace format's failure behaviour:
//! `read_trace` must never panic — not on arbitrary bytes, not on any
//! mutation of a valid file — and v1 files must round-trip through the
//! v2-aware reader.

use csp_trace::fault::MutationStream;
use csp_trace::{io, LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};
use proptest::prelude::*;

/// An arbitrary small-but-structured trace: valid events over a 16-node
/// machine with optional prev-writer links and final reader sets.
fn arbitrary_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(
        (
            0u8..16,
            any::<u32>(),
            0u64..64,
            0u8..16,
            any::<u16>(),
            any::<bool>(),
        ),
        0..40,
    )
    .prop_map(|events| {
        let mut trace = Trace::new(16);
        let mut prev: Option<(NodeId, Pc)> = None;
        for (writer, pc, line, home, inv, link) in events {
            trace.push(SharingEvent::new(
                NodeId(writer),
                Pc(pc),
                LineAddr(line),
                NodeId(home),
                SharingBitmap::from_bits(u64::from(inv)).masked(16),
                if link { prev } else { None },
            ));
            prev = Some((NodeId(writer), Pc(pc)));
            if line % 3 == 0 {
                trace.set_final_readers(
                    LineAddr(line),
                    SharingBitmap::from_bits(u64::from(inv) >> 4).masked(16),
                );
            }
        }
        trace
    })
}

/// Runs the reader and demands a clean outcome (no panic is implicit: a
/// panic fails the test).
fn read_must_not_panic(bytes: &[u8]) {
    let _ = io::read_trace(bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte strings: garbage in, `Err` (or a valid trace) out —
    /// never a panic.
    #[test]
    fn prop_arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        read_must_not_panic(&bytes);
    }

    /// Randomly mutated valid v2 buffers never panic, and single-byte
    /// flips never yield a trace different from the original (the
    /// checksum catches them).
    #[test]
    fn prop_mutated_v2_never_panics(trace in arbitrary_trace(), seed: u64) {
        let mut buf = Vec::new();
        io::write_trace(&mut buf, &trace).expect("serialize");
        for mutation in MutationStream::new(buf.len(), seed).take(50) {
            let mutated = mutation.apply(&buf);
            if let Ok(back) = io::read_trace(mutated.as_slice()) {
                // A mutation that leaves the file readable must decode to
                // the original: v2's checksums leave no silent corruption.
                prop_assert_eq!(&back, &trace, "silent corruption via {:?}", mutation);
            }
        }
    }

    /// Randomly mutated valid v1 buffers never panic (they may decode to
    /// a different trace: v1 has no checksums, which is why v2 exists).
    #[test]
    fn prop_mutated_v1_never_panics(trace in arbitrary_trace(), seed: u64) {
        let mut buf = Vec::new();
        io::write_trace_v1(&mut buf, &trace).expect("serialize");
        for mutation in MutationStream::new(buf.len(), seed).take(50) {
            read_must_not_panic(&mutation.apply(&buf));
        }
    }

    /// Every trace written in the legacy v1 layout reads back identically
    /// through the v2-aware reader.
    #[test]
    fn prop_v1_roundtrips_through_v2_reader(trace in arbitrary_trace()) {
        let mut v1 = Vec::new();
        io::write_trace_v1(&mut v1, &trace).expect("serialize v1");
        let back = io::read_trace(v1.as_slice()).expect("v1 must stay readable");
        prop_assert_eq!(back, trace);
    }

    /// v2 write/read is the identity.
    #[test]
    fn prop_v2_roundtrips(trace in arbitrary_trace()) {
        let mut buf = Vec::new();
        io::write_trace(&mut buf, &trace).expect("serialize v2");
        prop_assert_eq!(io::read_trace(buf.as_slice()).expect("read back"), trace);
    }
}
