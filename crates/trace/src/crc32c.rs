//! CRC32c (Castagnoli) — the checksum guarding the on-disk trace format.
//!
//! Table-driven, reflected, polynomial `0x1EDC6F41` (table built from the
//! reversed form `0x82F63B78`), the same parametrisation used by iSCSI,
//! ext4 and SSE4.2's `crc32` instruction, so externally produced checksums
//! of trace sections can be cross-checked with standard tooling.
//!
//! Self-contained on purpose: the build environment has no registry
//! access, and sixty lines of table-driven CRC beat a dependency.

/// The reversed CRC32c polynomial.
const POLY: u32 = 0x82F6_3B78;

/// The 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC32c state.
///
/// # Example
///
/// ```
/// use csp_trace::crc32c::Hasher;
///
/// let mut h = Hasher::new();
/// h.update(b"123456789");
/// assert_eq!(h.finalize(), 0xE306_9283); // the CRC32c check value
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Hasher { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the finished checksum (the hasher may keep accumulating).
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

/// One-shot CRC32c of `bytes`.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The standard CRC32c test vector.
        assert_eq!(checksum(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(checksum(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Hasher::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), checksum(data));
    }

    #[test]
    fn single_bit_flips_change_checksum() {
        let data: Vec<u8> = (0u8..=255).collect();
        let base = checksum(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut mutated = data.clone();
                mutated[i] ^= 1 << bit;
                assert_ne!(
                    checksum(&mutated),
                    base,
                    "flip of bit {bit} in byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn zero_prefix_sensitivity() {
        // CRCs with an all-ones initial state distinguish leading zeros.
        assert_ne!(checksum(&[0]), checksum(&[0, 0]));
    }
}
