//! The trace container: an ordered sequence of sharing events plus the
//! final sharer state of memory.

use crate::{LineAddr, SharingBitmap, SharingEvent, TraceStats, MAX_NODES};
use std::collections::HashMap;

/// An ordered coherence trace for one program run on an `n`-node machine.
///
/// A trace is the complete input to a sharing-prediction experiment. It
/// contains every coherence store miss ([`SharingEvent`]) in program order
/// plus, for each line, the set of readers at the end of the run
/// ([`final_readers`](Self::set_final_readers)). Together these determine
/// the ground-truth *actual* bitmap of every event — the readers of the
/// interval between the event and the next write to the same line — which
/// [`resolve_actuals`](Self::resolve_actuals) computes (the paper's
/// "first pass through the trace and the final state of the memory",
/// Section 5.1).
///
/// # Example
///
/// ```
/// use csp_trace::{NodeId, Pc, LineAddr, SharingBitmap, SharingEvent, Trace};
///
/// let mut t = Trace::new(16);
/// t.push(SharingEvent::new(NodeId(0), Pc(1), LineAddr(9), NodeId(1),
///                          SharingBitmap::empty(), None));
/// t.set_final_readers(LineAddr(9), SharingBitmap::from_nodes(&[NodeId(4)]));
/// let actuals = t.resolve_actuals();
/// assert_eq!(actuals[0], SharingBitmap::from_nodes(&[NodeId(4)]));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    nodes: usize,
    events: Vec<SharingEvent>,
    final_readers: HashMap<LineAddr, SharingBitmap>,
}

impl Trace {
    /// Creates an empty trace for an `nodes`-node machine.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds [`MAX_NODES`].
    pub fn new(nodes: usize) -> Self {
        assert!(
            nodes > 0 && nodes <= MAX_NODES,
            "node count must be in 1..={MAX_NODES}, got {nodes}"
        );
        Trace {
            nodes,
            events: Vec::new(),
            final_readers: HashMap::new(),
        }
    }

    /// The machine's node count.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The events of the trace, in program order.
    #[inline]
    pub fn events(&self) -> &[SharingEvent] {
        &self.events
    }

    /// Number of events (coherence store misses) in the trace.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace contains no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics (debug builds assert, release builds check explicitly) if the
    /// event references a node id at or beyond the machine width.
    pub fn push(&mut self, event: SharingEvent) {
        assert!(
            event.writer.index() < self.nodes && event.home.index() < self.nodes,
            "event references node outside the {}-node machine",
            self.nodes
        );
        assert!(
            event.invalidated.masked(self.nodes) == event.invalidated,
            "invalidated bitmap references node outside the {}-node machine",
            self.nodes
        );
        self.events.push(event);
    }

    /// Records the set of nodes holding `line` as readers at the end of the
    /// run. Used to resolve the actual bitmap of the *last* write to each
    /// line, which no later invalidation ever reports.
    pub fn set_final_readers(&mut self, line: LineAddr, readers: SharingBitmap) {
        self.final_readers.insert(line, readers.masked(self.nodes));
    }

    /// The recorded final readers of `line`, if any.
    pub fn final_readers(&self, line: LineAddr) -> Option<SharingBitmap> {
        self.final_readers.get(&line).copied()
    }

    /// Computes the ground-truth *actual* bitmap of every event: the nodes
    /// that read the event's line between this write and the next write to
    /// the same line (with the event's own writer always excluded — its
    /// accesses hit its own modified copy).
    ///
    /// For every event except the last one per line, this is the
    /// `invalidated` feedback of the *next* event on the same line. For the
    /// last event per line it is the final reader set recorded by
    /// [`set_final_readers`](Self::set_final_readers) (empty if none was
    /// recorded).
    ///
    /// The returned vector is parallel to [`events`](Self::events).
    pub fn resolve_actuals(&self) -> Vec<SharingBitmap> {
        let mut actuals = vec![SharingBitmap::empty(); self.events.len()];
        // Index of the most recent event per line, waiting for its actual.
        let mut open: HashMap<LineAddr, usize> = HashMap::new();
        for (i, e) in self.events.iter().enumerate() {
            if let Some(prev) = open.insert(e.line, i) {
                actuals[prev] = e.invalidated.without(self.events[prev].writer);
            }
        }
        for (line, idx) in open {
            let readers = self
                .final_readers
                .get(&line)
                .copied()
                .unwrap_or(SharingBitmap::empty());
            actuals[idx] = readers.without(self.events[idx].writer);
        }
        actuals
    }

    /// Total number of set bits over all actual bitmaps — the paper's
    /// "dynamic sharing events" (Table 6 numerator).
    pub fn dynamic_sharing_events(&self) -> u64 {
        self.resolve_actuals()
            .iter()
            .map(|b| u64::from(b.count()))
            .sum()
    }

    /// Total number of per-node sharing decisions — the paper's Table 6
    /// denominator: one decision per node per coherence store miss.
    pub fn dynamic_sharing_decisions(&self) -> u64 {
        self.events.len() as u64 * self.nodes as u64
    }

    /// Prevalence of sharing: set bits over all decisions (Section 5.3).
    /// Returns 0 for an empty trace.
    pub fn prevalence(&self) -> f64 {
        let d = self.dynamic_sharing_decisions();
        if d == 0 {
            0.0
        } else {
            self.dynamic_sharing_events() as f64 / d as f64
        }
    }

    /// Computes the Table 5-style statistics of this trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_trace(self)
    }

    /// The invalidation-pattern histogram of Weber & Gupta (the paper's
    /// reference \[28\], which it equates prevalence with): `hist[k]` counts
    /// the events whose actual reader set has exactly `k` members, for
    /// `k` in `0..=nodes`.
    ///
    /// ```
    /// use csp_trace::{NodeId, Pc, LineAddr, SharingBitmap, SharingEvent, Trace};
    /// let mut t = Trace::new(4);
    /// t.push(SharingEvent::new(NodeId(0), Pc(1), LineAddr(9), NodeId(1),
    ///                          SharingBitmap::empty(), None));
    /// t.set_final_readers(LineAddr(9), SharingBitmap::from_nodes(&[NodeId(2), NodeId(3)]));
    /// assert_eq!(t.sharing_degree_histogram()[2], 1);
    /// ```
    pub fn sharing_degree_histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; self.nodes + 1];
        for actual in self.resolve_actuals() {
            hist[actual.count() as usize] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, Pc};

    fn ev(
        writer: u8,
        pc: u32,
        line: u64,
        invalidated: &[u8],
        prev: Option<(u8, u32)>,
    ) -> SharingEvent {
        SharingEvent::new(
            NodeId(writer),
            Pc(pc),
            LineAddr(line),
            NodeId((line % 4) as u8),
            invalidated.iter().map(|&n| NodeId(n)).collect(),
            prev.map(|(n, p)| (NodeId(n), Pc(p))),
        )
    }

    #[test]
    fn new_trace_is_empty() {
        let t = Trace::new(16);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.nodes(), 16);
        assert_eq!(t.prevalence(), 0.0);
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn zero_nodes_rejected() {
        let _ = Trace::new(0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_rejects_out_of_range_writer() {
        let mut t = Trace::new(4);
        t.push(ev(7, 0, 0, &[], None));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_rejects_out_of_range_bitmap() {
        let mut t = Trace::new(4);
        t.push(ev(0, 0, 0, &[9], None));
    }

    #[test]
    fn actuals_come_from_next_invalidation() {
        let mut t = Trace::new(8);
        t.push(ev(0, 1, 10, &[], None)); // first write to line 10
        t.push(ev(1, 2, 11, &[], None)); // unrelated line
        t.push(ev(2, 3, 10, &[3, 4], Some((0, 1)))); // invalidates readers of event 0
        let a = t.resolve_actuals();
        assert_eq!(a[0], SharingBitmap::from_nodes(&[NodeId(3), NodeId(4)]));
        assert_eq!(a[1], SharingBitmap::empty()); // no final readers recorded
        assert_eq!(a[2], SharingBitmap::empty()); // last event on line 10
    }

    #[test]
    fn actuals_exclude_own_writer() {
        let mut t = Trace::new(8);
        t.push(ev(0, 1, 10, &[], None));
        // The next write's invalidated set claims node 0 read it; node 0 is
        // event 0's writer, so it must be excluded from event 0's actual.
        t.push(ev(2, 3, 10, &[0, 5], Some((0, 1))));
        let a = t.resolve_actuals();
        assert_eq!(a[0], SharingBitmap::from_nodes(&[NodeId(5)]));
    }

    #[test]
    fn last_event_uses_final_readers() {
        let mut t = Trace::new(8);
        t.push(ev(0, 1, 10, &[], None));
        t.set_final_readers(LineAddr(10), SharingBitmap::from_nodes(&[NodeId(6)]));
        let a = t.resolve_actuals();
        assert_eq!(a[0], SharingBitmap::from_nodes(&[NodeId(6)]));
    }

    #[test]
    fn prevalence_counts_bits_over_decisions() {
        let mut t = Trace::new(4);
        t.push(ev(0, 1, 10, &[], None));
        t.push(ev(1, 2, 10, &[2, 3], Some((0, 1))));
        // 2 events x 4 nodes = 8 decisions, event 0 actual has 2 bits.
        assert_eq!(t.dynamic_sharing_decisions(), 8);
        assert_eq!(t.dynamic_sharing_events(), 2);
        assert!((t.prevalence() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn final_readers_masked_to_machine() {
        let mut t = Trace::new(4);
        t.set_final_readers(LineAddr(1), SharingBitmap::from_bits(u64::MAX));
        assert_eq!(t.final_readers(LineAddr(1)), Some(SharingBitmap::all(4)));
        assert_eq!(t.final_readers(LineAddr(2)), None);
    }
}
