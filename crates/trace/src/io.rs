//! A compact, self-describing, *checksummed* binary on-disk format for
//! traces.
//!
//! Traces can be expensive to regenerate (they come out of the
//! memory-system simulator), so the harness caches them on disk (see
//! `csp-harness`'s `cache` module). The format is deliberately simple —
//! little-endian fixed-width fields with a magic header and version byte —
//! and has no external dependencies. Version 2 adds per-section CRC32c
//! checksums ([`crate::crc32c`]) so that a bit-flip inside a structurally
//! valid file is detected instead of silently skewing results.
//!
//! # Layout (version 2)
//!
//! ```text
//! magic      [8]  b"CSPTRC\0\0"
//! version    [1]  2
//! nodes      [1]
//! n_events   [8]  u64
//! events     [n_events x 32]:
//!     writer[1] pc[4] line[8] home[1] invalidated[8]
//!     has_prev[1] prev_writer[1] prev_pc[4] pad[4] (pad must be zero)
//! events_crc [4]  CRC32c of every byte above (magic through events)
//! n_final    [8]  u64
//! finals     [n_final x 16]: line[8] readers[8]
//! finals_crc [4]  CRC32c of n_final + finals
//! ```
//!
//! # Version negotiation
//!
//! [`write_trace`] always writes the current version
//! ([`FORMAT_VERSION`] = 2). [`read_trace`] accepts both versions: v1
//! files (no checksums, laxer field validation) remain readable forever;
//! v2 files are verified section by section and additionally reject
//! non-canonical encodings (nonzero padding, out-of-range bitmap bits,
//! nonzero prev-writer fields when `has_prev` is 0). A checksum mismatch
//! surfaces as [`std::io::ErrorKind::InvalidData`] with a message naming
//! the failing section, which the harness cache uses to quarantine the
//! file and regenerate.
//!
//! # Example
//!
//! ```
//! # fn main() -> std::io::Result<()> {
//! use csp_trace::{io, Trace};
//! let trace = Trace::new(16);
//! let mut buf = Vec::new();
//! io::write_trace(&mut buf, &trace)?;
//! let back = io::read_trace(&mut buf.as_slice())?;
//! assert_eq!(trace, back);
//! # Ok(())
//! # }
//! ```

use crate::crc32c;
use crate::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"CSPTRC\0\0";

/// The version [`write_trace`] produces.
pub const FORMAT_VERSION: u8 = 2;

/// The legacy, checksum-free version still accepted by [`read_trace`].
pub const LEGACY_VERSION: u8 = 1;

/// A writer wrapper that checksums everything written through it.
///
/// The building block of every checksummed format in the workspace: the
/// trace format here, and the `csp-serve` snapshot format. Write section
/// bytes through the wrapper, then call
/// [`write_section_crc`](Self::write_section_crc) to emit the CRC32c of
/// the section and start the next one.
pub struct ChecksumWriter<W> {
    inner: W,
    hasher: crc32c::Hasher,
}

impl<W: Write> ChecksumWriter<W> {
    /// Wraps `inner`, starting the first section.
    pub fn new(inner: W) -> Self {
        ChecksumWriter {
            inner,
            hasher: crc32c::Hasher::new(),
        }
    }

    /// Emits the current section checksum (unhashed) and starts the next
    /// section.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the inner writer.
    pub fn write_section_crc(&mut self) -> io::Result<()> {
        let crc = self.hasher.finalize();
        self.inner.write_all(&crc.to_le_bytes())?;
        self.hasher = crc32c::Hasher::new();
        Ok(())
    }
}

impl<W: Write> Write for ChecksumWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hasher.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader wrapper that checksums everything read through it — the
/// decoding twin of [`ChecksumWriter`].
#[derive(Debug)]
pub struct ChecksumReader<R> {
    inner: R,
    hasher: crc32c::Hasher,
}

impl<R: Read> ChecksumReader<R> {
    /// Wraps `inner`, starting the first section.
    pub fn new(inner: R) -> Self {
        ChecksumReader {
            inner,
            hasher: crc32c::Hasher::new(),
        }
    }

    /// Reads the stored section checksum (unhashed), compares it with the
    /// computed one, and starts the next section.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] naming `section` on a
    /// mismatch, and propagates I/O errors from the inner reader.
    pub fn check_section_crc(&mut self, section: &str) -> io::Result<()> {
        let computed = self.hasher.finalize();
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b)?;
        let stored = u32::from_le_bytes(b);
        if stored != computed {
            return Err(bad(&format!(
                "{section} checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            )));
        }
        self.hasher = crc32c::Hasher::new();
        Ok(())
    }
}

impl<R: Read> Read for ChecksumReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hasher.update(&buf[..n]);
        Ok(n)
    }
}

/// Serializes `trace` to `w` in the current format version (v2, with
/// per-section CRC32c checksums).
///
/// Callers with a file should wrap it in a `BufWriter`; a `&mut Vec<u8>`
/// works directly.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace<W: Write>(w: W, trace: &Trace) -> io::Result<()> {
    let mut w = ChecksumWriter::new(w);
    write_header_and_events(&mut w, trace, FORMAT_VERSION)?;
    w.write_section_crc()?;
    write_finals(&mut w, trace)?;
    w.write_section_crc()?;
    Ok(())
}

/// Serializes `trace` in the legacy v1 layout (no checksums).
///
/// Exists for compatibility testing and for the fault-injection harness;
/// new files should use [`write_trace`].
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace_v1<W: Write>(mut w: W, trace: &Trace) -> io::Result<()> {
    write_header_and_events(&mut w, trace, LEGACY_VERSION)?;
    write_finals(&mut w, trace)?;
    Ok(())
}

fn write_header_and_events<W: Write>(w: &mut W, trace: &Trace, version: u8) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[version, trace.nodes() as u8])?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for e in trace.events() {
        w.write_all(&[e.writer.0])?;
        w.write_all(&e.pc.0.to_le_bytes())?;
        w.write_all(&e.line.0.to_le_bytes())?;
        w.write_all(&[e.home.0])?;
        w.write_all(&e.invalidated.bits().to_le_bytes())?;
        match e.prev_writer {
            Some((n, pc)) => {
                w.write_all(&[1, n.0])?;
                w.write_all(&pc.0.to_le_bytes())?;
            }
            None => {
                w.write_all(&[0, 0])?;
                w.write_all(&0u32.to_le_bytes())?;
            }
        }
        w.write_all(&[0u8; 4])?;
    }
    Ok(())
}

fn write_finals<W: Write>(w: &mut W, trace: &Trace) -> io::Result<()> {
    // Final reader sets, in deterministic (sorted) order so identical traces
    // serialize identically.
    let mut finals: Vec<(u64, u64)> = trace
        .events()
        .iter()
        .map(|e| e.line)
        .collect::<std::collections::HashSet<_>>()
        .into_iter()
        .filter_map(|l| trace.final_readers(l).map(|r| (l.0, r.bits())))
        .collect();
    finals.sort_unstable();
    w.write_all(&(finals.len() as u64).to_le_bytes())?;
    for (line, readers) in finals {
        w.write_all(&line.to_le_bytes())?;
        w.write_all(&readers.to_le_bytes())?;
    }
    Ok(())
}

/// Reads just the header of a trace stream and returns its format
/// version, without validating the body.
///
/// Useful for tooling that reports whether a file is the checksummed v2
/// format or a legacy v1 file.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidData`] on a bad magic or an
/// unsupported version, and propagates I/O errors from the reader.
pub fn probe_version<R: Read>(mut r: R) -> io::Result<u8> {
    let mut header = [0u8; 9];
    r.read_exact(&mut header)?;
    if header[..8] != MAGIC[..] {
        return Err(bad("bad magic; not a CSP trace file"));
    }
    let version = header[8];
    if version != LEGACY_VERSION && version != FORMAT_VERSION {
        return Err(bad(&format!(
            "unsupported trace format version {version} (this build reads 1..={FORMAT_VERSION})"
        )));
    }
    Ok(version)
}

/// Deserializes a trace from `r`, accepting format versions 1 and 2.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidData`] if the magic, version, any
/// field, or (v2) any section checksum is malformed, and propagates I/O
/// errors from the reader. Never panics, for any input bytes.
pub fn read_trace<R: Read>(r: R) -> io::Result<Trace> {
    let mut stream = EventStream::new(r)?;
    let mut trace = Trace::new(stream.nodes());
    while let Some(event) = stream.next_event()? {
        trace.push(event);
    }
    for (line, readers) in stream.finish()? {
        trace.set_final_readers(line, readers);
    }
    Ok(trace)
}

/// An incremental reader over the events of a trace stream.
///
/// Where [`read_trace`] materializes the whole [`Trace`] (events plus
/// final-reader state), this yields one [`SharingEvent`] at a time, so a
/// consumer — the `csp-serve` ingest path, `csp-trace-tool cat` — can
/// process arbitrarily long streams in constant memory. Both format
/// versions are accepted; for v2 the event-section checksum is verified
/// when the last event has been read (or in [`finish`](Self::finish)),
/// so a consumer that stops early trades away corruption detection for
/// latency, exactly like any streaming decoder.
///
/// # Example
///
/// ```
/// # fn main() -> std::io::Result<()> {
/// use csp_trace::{io, Trace, SharingEvent, SharingBitmap, NodeId, Pc, LineAddr};
/// let mut t = Trace::new(4);
/// t.push(SharingEvent::new(NodeId(1), Pc(2), LineAddr(3), NodeId(0),
///                          SharingBitmap::empty(), None));
/// let mut buf = Vec::new();
/// io::write_trace(&mut buf, &t)?;
/// let mut stream = io::EventStream::new(buf.as_slice())?;
/// assert_eq!(stream.nodes(), 4);
/// assert_eq!(stream.remaining(), 1);
/// let event = stream.next_event()?.expect("one event");
/// assert_eq!(event.writer, NodeId(1));
/// let finals = stream.finish()?;
/// assert!(finals.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EventStream<R> {
    r: ChecksumReader<R>,
    version: u8,
    nodes: usize,
    remaining: u64,
    events_verified: bool,
}

impl<R: Read> EventStream<R> {
    /// Opens a stream, consuming and validating the header.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] on a bad magic, an
    /// unsupported version or an out-of-range node count, and propagates
    /// I/O errors from the reader.
    pub fn new(r: R) -> io::Result<Self> {
        let mut r = ChecksumReader::new(r);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("bad magic; not a CSP trace file"));
        }
        let mut head = [0u8; 2];
        r.read_exact(&mut head)?;
        let version = head[0];
        if version != LEGACY_VERSION && version != FORMAT_VERSION {
            return Err(bad(&format!(
                "unsupported trace format version {version} (this build reads 1..={FORMAT_VERSION})"
            )));
        }
        let nodes = head[1] as usize;
        if nodes == 0 || nodes > crate::MAX_NODES {
            return Err(bad("node count out of range"));
        }
        let remaining = read_u64(&mut r)?;
        Ok(EventStream {
            r,
            version,
            nodes,
            remaining,
            events_verified: false,
        })
    }

    /// The format version of the stream (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The machine's node count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Events not yet read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Whether this stream's sections carry (and are checked against)
    /// CRC32c checksums.
    fn checked(&self) -> bool {
        self.version >= FORMAT_VERSION
    }

    /// Reads the next event, or `None` when the event section is done.
    ///
    /// Reading the final event of a v2 stream also verifies the
    /// event-section checksum.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] on any malformed field
    /// or checksum mismatch, and propagates I/O errors.
    pub fn next_event(&mut self) -> io::Result<Option<SharingEvent>> {
        if self.remaining == 0 {
            if self.checked() && !self.events_verified {
                self.r.check_section_crc("event section")?;
                self.events_verified = true;
            }
            return Ok(None);
        }
        let checked = self.checked();
        let nodes = self.nodes;
        let r = &mut self.r;
        let writer = read_u8(r)?;
        let pc = read_u32(r)?;
        let line = read_u64(r)?;
        let home = read_u8(r)?;
        let invalidated = read_u64(r)?;
        let has_prev = read_u8(r)?;
        let prev_writer = read_u8(r)?;
        let prev_pc = read_u32(r)?;
        let mut pad = [0u8; 4];
        r.read_exact(&mut pad)?;
        if writer as usize >= nodes || home as usize >= nodes {
            return Err(bad("event references node outside the machine"));
        }
        let bitmap = SharingBitmap::from_bits(invalidated);
        if checked {
            // v2 encodings are canonical: reserved bytes are zero and
            // bitmaps carry no bits outside the machine.
            if pad != [0u8; 4] {
                return Err(bad("nonzero reserved padding"));
            }
            if bitmap.masked(nodes) != bitmap {
                return Err(bad("invalidated bitmap has bits outside the machine"));
            }
            if has_prev == 0 && (prev_writer != 0 || prev_pc != 0) {
                return Err(bad("nonzero prev-writer fields without has_prev"));
            }
        }
        let prev = match has_prev {
            0 => None,
            1 if checked && prev_writer as usize >= nodes => {
                return Err(bad("prev-writer outside the machine"));
            }
            1 => Some((NodeId(prev_writer), Pc(prev_pc))),
            _ => return Err(bad("corrupt prev-writer flag")),
        };
        self.remaining -= 1;
        Ok(Some(SharingEvent::new(
            NodeId(writer),
            Pc(pc),
            LineAddr(line),
            NodeId(home),
            bitmap.masked(nodes),
            prev,
        )))
    }

    /// Drains any unread events, verifies the remaining checksums, and
    /// returns the final-reader section as `(line, readers)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] on any malformed field
    /// or checksum mismatch, and propagates I/O errors.
    pub fn finish(mut self) -> io::Result<Vec<(LineAddr, SharingBitmap)>> {
        while self.next_event()?.is_some() {}
        let checked = self.checked();
        let nodes = self.nodes;
        let r = &mut self.r;
        let n_final = read_u64(r)?;
        let mut finals = Vec::new();
        for _ in 0..n_final {
            let line = read_u64(r)?;
            let readers = read_u64(r)?;
            let bitmap = SharingBitmap::from_bits(readers);
            if checked && bitmap.masked(nodes) != bitmap {
                return Err(bad("final-reader bitmap has bits outside the machine"));
            }
            finals.push((LineAddr(line), bitmap.masked(nodes)));
        }
        if checked {
            r.check_section_crc("final-reader section")?;
        }
        Ok(finals)
    }
}

impl<R: Read> Iterator for EventStream<R> {
    type Item = io::Result<SharingEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_event().transpose()
    }
}

/// Writes `bytes` to `path` via a `.tmp` sibling, fsync, and rename — the
/// workspace-wide convention for crash-safe file writes (the harness
/// trace cache and the `csp-serve` snapshot store both use it): a crash
/// mid-write never leaves a plausible half-file under the real name.
///
/// # Errors
///
/// Propagates I/O errors from creating, writing, syncing, or renaming the
/// temporary file.
pub fn write_file_atomically(path: &std::path::Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(16);
        t.push(SharingEvent::new(
            NodeId(0),
            Pc(0x400),
            LineAddr(42),
            NodeId(2),
            SharingBitmap::empty(),
            None,
        ));
        t.push(SharingEvent::new(
            NodeId(3),
            Pc(0x404),
            LineAddr(42),
            NodeId(2),
            SharingBitmap::from_nodes(&[NodeId(1), NodeId(5)]),
            Some((NodeId(0), Pc(0x400))),
        ));
        t.set_final_readers(LineAddr(42), SharingBitmap::from_nodes(&[NodeId(7)]));
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn roundtrip_empty() {
        let t = Trace::new(2);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn v1_files_still_read() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace_v1(&mut buf, &t).unwrap();
        assert_eq!(buf[8], LEGACY_VERSION);
        assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn v2_is_v1_plus_checksums() {
        // The v2 payload is byte-identical to v1 apart from the version
        // byte and the two interleaved CRC fields.
        let t = sample_trace();
        let (mut v1, mut v2) = (Vec::new(), Vec::new());
        write_trace_v1(&mut v1, &t).unwrap();
        write_trace(&mut v2, &t).unwrap();
        assert_eq!(v2.len(), v1.len() + 8);
        let events_end = 10 + 8 + t.len() * 32;
        assert_eq!(v1[..8], v2[..8]);
        assert_eq!(v1[9..events_end], v2[9..events_end]);
        assert_eq!(v1[events_end..], v2[events_end + 4..v2.len() - 4]);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOTATRACE........"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::new(2)).unwrap();
        buf[8] = 99; // version byte
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        for cut in [3, buf.len() / 2, buf.len() - 3] {
            let mut short = buf.clone();
            short.truncate(buf.len() - cut);
            assert!(read_trace(short.as_slice()).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn rejects_out_of_range_node() {
        let mut buf = Vec::new();
        let mut t = Trace::new(16);
        t.push(SharingEvent::new(
            NodeId(15),
            Pc(0),
            LineAddr(0),
            NodeId(0),
            SharingBitmap::empty(),
            None,
        ));
        write_trace_v1(&mut buf, &t).unwrap();
        buf[9] = 4; // shrink machine to 4 nodes; writer 15 now invalid
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn serialization_is_deterministic() {
        let t = sample_trace();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_trace(&mut a, &t).unwrap();
        write_trace(&mut b, &t).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn checksum_catches_payload_corruption_v2_but_not_v1() {
        let t = sample_trace();
        // Flip one bit inside the invalidated bitmap of the second event:
        // structurally valid, semantically corrupt.
        let offset = 10 + 8 + 32 + 14; // header + count + event 0 + event 1 field offset
        let mut v2 = Vec::new();
        write_trace(&mut v2, &t).unwrap();
        v2[offset] ^= 1 << 2;
        let err = read_trace(v2.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "got: {err}");

        let mut v1 = Vec::new();
        write_trace_v1(&mut v1, &t).unwrap();
        v1[offset] ^= 1 << 2;
        // The legacy format cannot tell: the corrupt trace parses fine.
        let back = read_trace(v1.as_slice()).unwrap();
        assert_ne!(back, t, "flip should have changed the decoded trace");
    }

    #[test]
    fn event_stream_yields_same_events_as_read_trace() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let stream = EventStream::new(buf.as_slice()).unwrap();
        assert_eq!(stream.version(), FORMAT_VERSION);
        assert_eq!(stream.nodes(), 16);
        assert_eq!(stream.remaining(), 2);
        let events: Vec<SharingEvent> = stream.map(|e| e.unwrap()).collect();
        assert_eq!(events, t.events());
    }

    #[test]
    fn event_stream_finish_returns_finals_and_drains() {
        let t = sample_trace();
        type WriterFn = fn(&mut Vec<u8>, &Trace) -> io::Result<()>;
        let writers: [WriterFn; 2] = [|w, t| write_trace(w, t), |w, t| write_trace_v1(w, t)];
        for writer in writers {
            let mut buf = Vec::new();
            writer(&mut buf, &t).unwrap();
            // Finish without reading any event: it must drain and still
            // surface the final-reader section.
            let stream = EventStream::new(buf.as_slice()).unwrap();
            let finals = stream.finish().unwrap();
            assert_eq!(
                finals,
                vec![(LineAddr(42), SharingBitmap::from_nodes(&[NodeId(7)]))]
            );
        }
    }

    #[test]
    fn event_stream_detects_corruption_at_section_end() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf[10 + 8 + 2] ^= 0x10; // inside event 0's pc field
        let mut stream = EventStream::new(buf.as_slice()).unwrap();
        // Individual events still parse (the flip is structurally valid)...
        assert!(stream.next_event().unwrap().is_some());
        assert!(stream.next_event().unwrap().is_some());
        // ...but the section checksum catches it at the end.
        let err = stream.next_event().unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn checksum_mismatch_names_the_section() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF; // the finals CRC itself
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("final-reader"), "got: {err}");
    }
}
