//! A compact, self-describing binary on-disk format for traces.
//!
//! Traces can be expensive to regenerate (they come out of the memory-system
//! simulator), so the harness caches them on disk. The format is
//! deliberately simple — little-endian fixed-width fields with a magic
//! header and version byte — and has no external dependencies.
//!
//! # Layout
//!
//! ```text
//! magic   [8]  b"CSPTRC\0\0"
//! version [1]  1
//! nodes   [1]
//! n_events[8]  u64
//! events  [n_events x 32]:
//!     writer[1] pc[4] line[8] home[1] invalidated[8]
//!     has_prev[1] prev_writer[1] prev_pc[4] pad[4]
//! n_final [8]  u64
//! finals  [n_final x 16]: line[8] readers[8]
//! ```
//!
//! # Example
//!
//! ```
//! # fn main() -> std::io::Result<()> {
//! use csp_trace::{io, Trace};
//! let trace = Trace::new(16);
//! let mut buf = Vec::new();
//! io::write_trace(&mut buf, &trace)?;
//! let back = io::read_trace(&mut buf.as_slice())?;
//! assert_eq!(trace, back);
//! # Ok(())
//! # }
//! ```

use crate::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"CSPTRC\0\0";
const VERSION: u8 = 1;

/// Serializes `trace` to `w`.
///
/// Callers with a file should wrap it in a `BufWriter`; a `&mut Vec<u8>`
/// works directly.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION, trace.nodes() as u8])?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for e in trace.events() {
        w.write_all(&[e.writer.0])?;
        w.write_all(&e.pc.0.to_le_bytes())?;
        w.write_all(&e.line.0.to_le_bytes())?;
        w.write_all(&[e.home.0])?;
        w.write_all(&e.invalidated.bits().to_le_bytes())?;
        match e.prev_writer {
            Some((n, pc)) => {
                w.write_all(&[1, n.0])?;
                w.write_all(&pc.0.to_le_bytes())?;
            }
            None => {
                w.write_all(&[0, 0])?;
                w.write_all(&0u32.to_le_bytes())?;
            }
        }
        w.write_all(&[0u8; 4])?;
    }
    // Final reader sets, in deterministic (sorted) order so identical traces
    // serialize identically.
    let mut finals: Vec<(u64, u64)> = trace
        .events()
        .iter()
        .map(|e| e.line)
        .collect::<std::collections::HashSet<_>>()
        .into_iter()
        .filter_map(|l| trace.final_readers(l).map(|r| (l.0, r.bits())))
        .collect();
    finals.sort_unstable();
    w.write_all(&(finals.len() as u64).to_le_bytes())?;
    for (line, readers) in finals {
        w.write_all(&line.to_le_bytes())?;
        w.write_all(&readers.to_le_bytes())?;
    }
    Ok(())
}

/// Deserializes a trace from `r`.
///
/// # Errors
///
/// Returns `InvalidData` if the magic, version, or any field is malformed,
/// and propagates I/O errors from the reader.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Trace> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad magic; not a CSP trace file"));
    }
    let mut head = [0u8; 2];
    r.read_exact(&mut head)?;
    if head[0] != VERSION {
        return Err(bad("unsupported trace format version"));
    }
    let nodes = head[1] as usize;
    if nodes == 0 || nodes > crate::MAX_NODES {
        return Err(bad("node count out of range"));
    }
    let n_events = read_u64(&mut r)?;
    let mut trace = Trace::new(nodes);
    for _ in 0..n_events {
        let writer = read_u8(&mut r)?;
        let pc = read_u32(&mut r)?;
        let line = read_u64(&mut r)?;
        let home = read_u8(&mut r)?;
        let invalidated = read_u64(&mut r)?;
        let has_prev = read_u8(&mut r)?;
        let prev_writer = read_u8(&mut r)?;
        let prev_pc = read_u32(&mut r)?;
        let mut pad = [0u8; 4];
        r.read_exact(&mut pad)?;
        if writer as usize >= nodes || home as usize >= nodes {
            return Err(bad("event references node outside the machine"));
        }
        let prev = match has_prev {
            0 => None,
            1 => Some((NodeId(prev_writer), Pc(prev_pc))),
            _ => return Err(bad("corrupt prev-writer flag")),
        };
        trace.push(SharingEvent::new(
            NodeId(writer),
            Pc(pc),
            LineAddr(line),
            NodeId(home),
            SharingBitmap::from_bits(invalidated).masked(nodes),
            prev,
        ));
    }
    let n_final = read_u64(&mut r)?;
    for _ in 0..n_final {
        let line = read_u64(&mut r)?;
        let readers = read_u64(&mut r)?;
        trace.set_final_readers(LineAddr(line), SharingBitmap::from_bits(readers));
    }
    Ok(trace)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(16);
        t.push(SharingEvent::new(
            NodeId(0),
            Pc(0x400),
            LineAddr(42),
            NodeId(2),
            SharingBitmap::empty(),
            None,
        ));
        t.push(SharingEvent::new(
            NodeId(3),
            Pc(0x404),
            LineAddr(42),
            NodeId(2),
            SharingBitmap::from_nodes(&[NodeId(1), NodeId(5)]),
            Some((NodeId(0), Pc(0x400))),
        ));
        t.set_final_readers(LineAddr(42), SharingBitmap::from_nodes(&[NodeId(7)]));
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn roundtrip_empty() {
        let t = Trace::new(2);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOTATRACE........"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::new(2)).unwrap();
        buf[8] = 99; // version byte
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_out_of_range_node() {
        let mut buf = Vec::new();
        let mut t = Trace::new(16);
        t.push(SharingEvent::new(
            NodeId(15),
            Pc(0),
            LineAddr(0),
            NodeId(0),
            SharingBitmap::empty(),
            None,
        ));
        write_trace(&mut buf, &t).unwrap();
        buf[9] = 4; // shrink machine to 4 nodes; writer 15 now invalid
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn serialization_is_deterministic() {
        let t = sample_trace();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_trace(&mut a, &t).unwrap();
        write_trace(&mut b, &t).unwrap();
        assert_eq!(a, b);
    }
}
