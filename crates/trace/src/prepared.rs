//! Flat, per-event column views of a trace: the trace-level half of the
//! prepared-evaluation layer.
//!
//! Every evaluation of a scheme over a [`Trace`] needs the same three
//! per-event facts: the ground-truth *actual* bitmap, the invalidation
//! feedback, and whether the event has a previous writer. The naive path
//! recomputes the actuals (a full [`Trace::resolve_actuals`] pass with a
//! hash map over lines) on *every* call, even though a design-space sweep
//! evaluates hundreds of schemes over the same trace. [`ResolvedTrace`]
//! hoists that work out of the loop: it resolves the actuals once and lays
//! the three columns out as flat, cache-friendly vectors that any number
//! of scheme evaluations can then share by reference.
//!
//! The predictor-level half (per-index key streams) lives in `csp-core`,
//! which knows about index specifications; this module is deliberately
//! free of predictor concepts.

use crate::{SharingBitmap, Trace};

/// A trace with its per-event ground truth resolved once and flattened
/// into columns.
///
/// Borrowing (rather than owning) the trace keeps a resolved view cheap to
/// create per evaluation site while letting many sites share one trace.
///
/// # Example
///
/// ```
/// use csp_trace::{LineAddr, NodeId, Pc, ResolvedTrace, SharingBitmap, SharingEvent, Trace};
///
/// let mut t = Trace::new(16);
/// t.push(SharingEvent::new(NodeId(0), Pc(1), LineAddr(9), NodeId(1),
///                          SharingBitmap::empty(), None));
/// t.set_final_readers(LineAddr(9), SharingBitmap::from_nodes(&[NodeId(4)]));
/// let r = ResolvedTrace::new(&t);
/// assert_eq!(r.len(), 1);
/// assert_eq!(r.actuals()[0], SharingBitmap::from_nodes(&[NodeId(4)]));
/// assert!(!r.has_prev()[0]);
/// ```
#[derive(Clone, Debug)]
pub struct ResolvedTrace<'t> {
    trace: &'t Trace,
    actuals: Vec<SharingBitmap>,
    invalidated: Vec<SharingBitmap>,
    has_prev: Vec<bool>,
}

impl<'t> ResolvedTrace<'t> {
    /// Resolves `trace` once: one actuals pass plus one flattening pass.
    pub fn new(trace: &'t Trace) -> Self {
        let actuals = trace.resolve_actuals();
        let mut invalidated = Vec::with_capacity(trace.len());
        let mut has_prev = Vec::with_capacity(trace.len());
        for event in trace.events() {
            invalidated.push(event.invalidated);
            has_prev.push(event.prev_writer.is_some());
        }
        ResolvedTrace {
            trace,
            actuals,
            invalidated,
            has_prev,
        }
    }

    /// The underlying trace.
    #[inline]
    pub fn trace(&self) -> &'t Trace {
        self.trace
    }

    /// Number of events.
    #[inline]
    pub fn len(&self) -> usize {
        self.actuals.len()
    }

    /// Returns `true` if the trace has no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.actuals.is_empty()
    }

    /// The machine's node count.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.trace.nodes()
    }

    /// The ground-truth actual bitmap of every event, in event order
    /// (identical to [`Trace::resolve_actuals`], computed once).
    #[inline]
    pub fn actuals(&self) -> &[SharingBitmap] {
        &self.actuals
    }

    /// The invalidation feedback of every event, in event order.
    #[inline]
    pub fn invalidated(&self) -> &[SharingBitmap] {
        &self.invalidated
    }

    /// Whether each event has a previous writer (and therefore carries
    /// invalidation feedback / a forward target), in event order.
    #[inline]
    pub fn has_prev(&self) -> &[bool] {
        &self.has_prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LineAddr, NodeId, Pc, SharingEvent};

    fn sample_trace() -> Trace {
        let mut t = Trace::new(8);
        t.push(SharingEvent::new(
            NodeId(0),
            Pc(1),
            LineAddr(10),
            NodeId(2),
            SharingBitmap::empty(),
            None,
        ));
        t.push(SharingEvent::new(
            NodeId(1),
            Pc(2),
            LineAddr(10),
            NodeId(2),
            SharingBitmap::from_nodes(&[NodeId(3), NodeId(4)]),
            Some((NodeId(0), Pc(1))),
        ));
        t.set_final_readers(LineAddr(10), SharingBitmap::from_nodes(&[NodeId(5)]));
        t
    }

    #[test]
    fn columns_match_trace_fields() {
        let trace = sample_trace();
        let r = ResolvedTrace::new(&trace);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.nodes(), 8);
        assert_eq!(r.actuals(), trace.resolve_actuals().as_slice());
        for (i, e) in trace.events().iter().enumerate() {
            assert_eq!(r.invalidated()[i], e.invalidated);
            assert_eq!(r.has_prev()[i], e.prev_writer.is_some());
        }
    }

    #[test]
    fn empty_trace_resolves_to_empty_columns() {
        let trace = Trace::new(4);
        let r = ResolvedTrace::new(&trace);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.actuals().is_empty());
        assert!(r.invalidated().is_empty());
        assert!(r.has_prev().is_empty());
    }
}
