//! Trace transforms: filtering, windowing, and CSV export.
//!
//! Analysis often wants a *view* of a trace — one data structure's lines,
//! one program phase — without regenerating it. Transforms preserve the
//! trace's semantics: ground-truth actual bitmaps of retained events are
//! identical to what they were in the source trace.

use crate::{LineAddr, Trace};
use std::io::{self, Write};
use std::ops::Range;

impl Trace {
    /// Keeps only events whose line satisfies `keep`, preserving per-line
    /// event order, previous-writer chains and final reader sets.
    ///
    /// Because sharing is resolved per line, dropping whole lines never
    /// changes the actual bitmap of any retained event.
    ///
    /// # Example
    ///
    /// ```
    /// use csp_trace::{NodeId, Pc, LineAddr, SharingBitmap, SharingEvent, Trace};
    /// let mut t = Trace::new(4);
    /// for line in [1u64, 2, 1] {
    ///     t.push(SharingEvent::new(NodeId(0), Pc(1), LineAddr(line), NodeId(1),
    ///                              SharingBitmap::empty(), None));
    /// }
    /// let only_line_1 = t.filter_lines(|l| l.0 == 1);
    /// assert_eq!(only_line_1.len(), 2);
    /// ```
    pub fn filter_lines<F: Fn(LineAddr) -> bool>(&self, keep: F) -> Trace {
        let mut out = Trace::new(self.nodes());
        for e in self.events() {
            if keep(e.line) {
                out.push(*e);
            }
        }
        for e in self.events() {
            if keep(e.line) {
                if let Some(readers) = self.final_readers(e.line) {
                    out.set_final_readers(e.line, readers);
                }
            }
        }
        out
    }

    /// Extracts the events in `range` (by event index) as a standalone
    /// trace — one program phase.
    ///
    /// The actual bitmap of every retained event is preserved exactly:
    /// lines whose post-window events are cut get their last in-window
    /// actual recorded as a final reader set.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn window(&self, range: Range<usize>) -> Trace {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "window {range:?} out of bounds for {} events",
            self.len()
        );
        let actuals = self.resolve_actuals();
        let mut out = Trace::new(self.nodes());
        // Last in-window event index per line.
        let mut last_in_window: std::collections::HashMap<LineAddr, usize> =
            std::collections::HashMap::new();
        for (i, e) in self.events()[range.clone()].iter().enumerate() {
            out.push(*e);
            last_in_window.insert(e.line, range.start + i);
        }
        for (line, idx) in last_in_window {
            // The source actual already excludes the event's writer, so the
            // windowed trace's own resolution reproduces it unchanged.
            out.set_final_readers(line, actuals[idx]);
        }
        out
    }

    /// Writes the trace as CSV (`writer,pc,line,home,invalidated,actual,
    /// prev_writer,prev_pc`), one row per event, with bitmaps in hex.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn to_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(
            w,
            "writer,pc,line,home,invalidated,actual,prev_writer,prev_pc"
        )?;
        let actuals = self.resolve_actuals();
        for (e, actual) in self.events().iter().zip(&actuals) {
            let (pw, ppc) = match e.prev_writer {
                Some((n, pc)) => (n.index() as i64, pc.0 as i64),
                None => (-1, -1),
            };
            writeln!(
                w,
                "{},{},{},{},{:x},{:x},{},{}",
                e.writer.index(),
                e.pc.0,
                e.line.0,
                e.home.index(),
                e.invalidated,
                actual,
                pw,
                ppc
            )?;
        }
        Ok(())
    }
}

/// Summary of how a trace's events and sharing split across lines —
/// the working-set profile the paper's Table 5 sketches.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LineProfile {
    /// Distinct lines.
    pub lines: usize,
    /// Events on the hottest line.
    pub max_events_per_line: u64,
    /// Mean events per line.
    pub mean_events_per_line: f64,
    /// Fraction of events on the hottest 10% of lines.
    pub hot_decile_share: f64,
}

/// Profiles how a trace's events concentrate across lines.
pub fn line_profile(trace: &Trace) -> LineProfile {
    let mut counts: std::collections::HashMap<LineAddr, u64> = std::collections::HashMap::new();
    for e in trace.events() {
        *counts.entry(e.line).or_default() += 1;
    }
    if counts.is_empty() {
        return LineProfile::default();
    }
    let mut per_line: Vec<u64> = counts.values().copied().collect();
    per_line.sort_unstable_by(|a, b| b.cmp(a));
    let lines = per_line.len();
    let total: u64 = per_line.iter().sum();
    let decile = lines.div_ceil(10);
    let hot: u64 = per_line[..decile].iter().sum();
    LineProfile {
        lines,
        max_events_per_line: per_line[0],
        mean_events_per_line: total as f64 / lines as f64,
        hot_decile_share: hot as f64 / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, Pc, SharingBitmap, SharingEvent};

    fn sample() -> Trace {
        let mut t = Trace::new(16);
        let mut prev: std::collections::HashMap<u64, (NodeId, Pc)> = Default::default();
        for i in 0..30u64 {
            let line = i % 3;
            let writer = NodeId((i % 4) as u8);
            let inv = SharingBitmap::from_nodes(&[NodeId(((i + 1) % 16) as u8)]).without(writer);
            t.push(SharingEvent::new(
                writer,
                Pc(i as u32 % 5),
                LineAddr(line),
                NodeId((line % 16) as u8),
                inv,
                prev.get(&line).copied(),
            ));
            prev.insert(line, (writer, Pc(i as u32 % 5)));
        }
        t.set_final_readers(LineAddr(0), SharingBitmap::from_nodes(&[NodeId(9)]));
        t
    }

    #[test]
    fn filter_preserves_per_line_actuals() {
        let t = sample();
        let full_actuals = t.resolve_actuals();
        let filtered = t.filter_lines(|l| l.0 == 0);
        let filtered_actuals = filtered.resolve_actuals();
        let full_line0: Vec<_> = t
            .events()
            .iter()
            .zip(&full_actuals)
            .filter(|(e, _)| e.line.0 == 0)
            .map(|(_, a)| *a)
            .collect();
        assert_eq!(filtered_actuals, full_line0);
        assert_eq!(
            filtered.final_readers(LineAddr(0)),
            t.final_readers(LineAddr(0))
        );
    }

    #[test]
    fn window_preserves_actuals() {
        let t = sample();
        let full = t.resolve_actuals();
        let w = t.window(5..20);
        let windowed = w.resolve_actuals();
        assert_eq!(w.len(), 15);
        assert_eq!(&windowed[..], &full[5..20]);
    }

    #[test]
    fn window_bounds() {
        let t = sample();
        assert_eq!(t.window(0..t.len()).resolve_actuals(), t.resolve_actuals());
        assert!(t.window(7..7).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn window_rejects_overrun() {
        let t = sample();
        let _ = t.window(0..t.len() + 1);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = sample();
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), t.len() + 1);
        assert!(lines[0].starts_with("writer,pc,line"));
        // First event has no previous writer.
        assert!(lines[1].ends_with("-1,-1"));
    }

    #[test]
    fn profile_concentration() {
        let t = sample();
        let p = line_profile(&t);
        assert_eq!(p.lines, 3);
        assert!((p.mean_events_per_line - 10.0).abs() < 1e-12);
        assert_eq!(p.max_events_per_line, 10);
        assert!(p.hot_decile_share > 0.3);
        assert_eq!(line_profile(&Trace::new(4)), LineProfile::default());
    }
}
