//! Strongly-typed identifiers for the entities named by the paper's
//! indexing taxonomy: `pid` (writer node), `pc` (static store instruction),
//! `dir` (home directory node) and `addr` (cache-line address).

use std::fmt;

/// A processor/node identifier (`pid` in the paper's taxonomy).
///
/// Also used for directory/home nodes (`dir`): in a CC-NUMA machine each
/// node hosts a slice of the physical memory and its directory, so home
/// directories are named by the same id space.
///
/// # Example
///
/// ```
/// use csp_trace::NodeId;
/// let n = NodeId(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u8);

impl NodeId {
    /// Returns the node index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u8> for NodeId {
    fn from(v: u8) -> Self {
        NodeId(v)
    }
}

/// A static store instruction identifier (`pc` in the paper's taxonomy).
///
/// The paper indexes predictors by (truncated) program-counter values of
/// store instructions. Because our workloads are synthetic, a `Pc` is an
/// abstract word-granular instruction id rather than a byte address; the
/// low-order bits are the ones predictors truncate to.
///
/// # Example
///
/// ```
/// use csp_trace::Pc;
/// let pc = Pc(0b1011_0110);
/// assert_eq!(pc.low_bits(4), 0b0110);
/// assert_eq!(pc.low_bits(0), 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pc(pub u32);

impl Pc {
    /// Returns the `bits` low-order bits of the pc, as used when a predictor
    /// truncates the pc field to meet an implementation cost.
    ///
    /// `bits` must be at most 32; `bits == 0` yields `0`.
    #[inline]
    pub fn low_bits(self, bits: u8) -> u32 {
        debug_assert!(bits <= 32);
        if bits == 0 {
            0
        } else if bits >= 32 {
            self.0
        } else {
            self.0 & ((1u32 << bits) - 1)
        }
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc{:#x}", self.0)
    }
}

impl From<u32> for Pc {
    fn from(v: u32) -> Self {
        Pc(v)
    }
}

/// A cache-line address (`addr` in the paper's taxonomy).
///
/// Line-granular: a byte address shifted right by `log2(line size)`. All
/// sharing happens at line granularity (the paper uses 64-byte lines), so
/// the trace never stores byte offsets.
///
/// # Example
///
/// ```
/// use csp_trace::LineAddr;
/// let line = LineAddr::from_byte_addr(0x1040, 64);
/// assert_eq!(line, LineAddr(0x41));
/// assert_eq!(line.low_bits(4), 0x1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Converts a byte address into a line address.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    #[inline]
    pub fn from_byte_addr(byte_addr: u64, line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two, got {line_size}"
        );
        LineAddr(byte_addr >> line_size.trailing_zeros())
    }

    /// Returns the `bits` low-order bits of the line address, as used when a
    /// predictor truncates the addr field to meet an implementation cost.
    #[inline]
    pub fn low_bits(self, bits: u8) -> u64 {
        debug_assert!(bits <= 64);
        if bits == 0 {
            0
        } else if bits >= 64 {
            self.0
        } else {
            self.0 & ((1u64 << bits) - 1)
        }
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        LineAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_index_and_display() {
        assert_eq!(NodeId(15).index(), 15);
        assert_eq!(NodeId(0).to_string(), "n0");
        assert_eq!(NodeId::from(7u8), NodeId(7));
    }

    #[test]
    fn pc_low_bits_masks_correctly() {
        let pc = Pc(0xDEAD_BEEF);
        assert_eq!(pc.low_bits(0), 0);
        assert_eq!(pc.low_bits(8), 0xEF);
        assert_eq!(pc.low_bits(16), 0xBEEF);
        assert_eq!(pc.low_bits(32), 0xDEAD_BEEF);
    }

    #[test]
    fn line_addr_from_byte_addr() {
        assert_eq!(LineAddr::from_byte_addr(0, 64), LineAddr(0));
        assert_eq!(LineAddr::from_byte_addr(63, 64), LineAddr(0));
        assert_eq!(LineAddr::from_byte_addr(64, 64), LineAddr(1));
        assert_eq!(LineAddr::from_byte_addr(0x1000, 32), LineAddr(0x80));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn line_addr_rejects_non_power_of_two() {
        let _ = LineAddr::from_byte_addr(100, 48);
    }

    #[test]
    fn line_addr_low_bits() {
        let a = LineAddr(0b1010_1100);
        assert_eq!(a.low_bits(0), 0);
        assert_eq!(a.low_bits(4), 0b1100);
        assert_eq!(a.low_bits(64), 0b1010_1100);
    }
}
