//! Sharing bitmaps: fixed-width sets of nodes.
//!
//! A sharing bitmap is the unit of both feedback (which nodes actually read
//! a line) and prediction (which nodes a scheme guesses will read it). The
//! paper's key observation (Section 3.2) is that although bitmaps look like
//! values, they are really *vectors of independent single-bit predictions*;
//! all the metrics in `csp-metrics` score them bit by bit.

use crate::{NodeId, MAX_NODES};
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, Sub};

/// A set of nodes, backed by a `u64` (up to [`MAX_NODES`] nodes).
///
/// Bit *i* set means node *i* is in the set. The machine's node count is
/// carried by the [`Trace`](crate::Trace), not by each bitmap; operations
/// here are width-agnostic and the scoring code masks to the machine width.
///
/// # Example
///
/// ```
/// use csp_trace::{NodeId, SharingBitmap};
///
/// let a = SharingBitmap::from_nodes(&[NodeId(1), NodeId(3)]);
/// let b = SharingBitmap::from_nodes(&[NodeId(3), NodeId(5)]);
/// assert_eq!((a | b).count(), 3);
/// assert_eq!((a & b), SharingBitmap::from_nodes(&[NodeId(3)]));
/// assert!(a.contains(NodeId(1)));
/// assert!(!a.contains(NodeId(5)));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SharingBitmap(u64);

impl SharingBitmap {
    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        SharingBitmap(0)
    }

    /// The set of all nodes `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_NODES`.
    #[inline]
    pub fn all(n: usize) -> Self {
        assert!(n <= MAX_NODES, "at most {MAX_NODES} nodes supported");
        if n == MAX_NODES {
            SharingBitmap(u64::MAX)
        } else {
            SharingBitmap((1u64 << n) - 1)
        }
    }

    /// Builds a bitmap from raw bits.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        SharingBitmap(bits)
    }

    /// Returns the raw bits.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Builds a bitmap containing exactly the given nodes.
    #[inline]
    pub fn from_nodes(nodes: &[NodeId]) -> Self {
        let mut b = SharingBitmap::empty();
        for &n in nodes {
            b.insert(n);
        }
        b
    }

    /// A bitmap containing only `node`.
    #[inline]
    pub fn singleton(node: NodeId) -> Self {
        debug_assert!(node.index() < MAX_NODES);
        SharingBitmap(1u64 << node.index())
    }

    /// Returns `true` if the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of nodes in the set.
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Returns `true` if `node` is in the set.
    #[inline]
    pub fn contains(self, node: NodeId) -> bool {
        debug_assert!(node.index() < MAX_NODES);
        self.0 & (1u64 << node.index()) != 0
    }

    /// Adds `node` to the set.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        debug_assert!(node.index() < MAX_NODES);
        self.0 |= 1u64 << node.index();
    }

    /// Removes `node` from the set.
    #[inline]
    pub fn remove(&mut self, node: NodeId) {
        debug_assert!(node.index() < MAX_NODES);
        self.0 &= !(1u64 << node.index());
    }

    /// Returns the set with `node` removed (non-mutating).
    #[inline]
    pub fn without(self, node: NodeId) -> Self {
        let mut b = self;
        b.remove(node);
        b
    }

    /// Returns `true` if the two sets share at least one node (the test used
    /// by the paper's `overlap-last` update function).
    #[inline]
    pub const fn overlaps(self, other: Self) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns `true` if every node of `self` is in `other`.
    #[inline]
    pub const fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Keeps only bits for nodes `0..n` (mask to machine width).
    #[inline]
    pub fn masked(self, n: usize) -> Self {
        SharingBitmap(self.0 & Self::all(n).0)
    }

    /// Iterates over the nodes in the set, in increasing id order.
    ///
    /// ```
    /// use csp_trace::{NodeId, SharingBitmap};
    /// let b = SharingBitmap::from_nodes(&[NodeId(5), NodeId(2)]);
    /// let v: Vec<_> = b.iter().collect();
    /// assert_eq!(v, vec![NodeId(2), NodeId(5)]);
    /// ```
    #[inline]
    pub fn iter(self) -> NodeIter {
        NodeIter(self.0)
    }
}

/// Iterator over the nodes of a [`SharingBitmap`], produced by
/// [`SharingBitmap::iter`].
#[derive(Clone, Debug)]
pub struct NodeIter(u64);

impl Iterator for NodeIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as u8;
            self.0 &= self.0 - 1;
            Some(NodeId(i))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodeIter {}

impl IntoIterator for SharingBitmap {
    type Item = NodeId;
    type IntoIter = NodeIter;

    fn into_iter(self) -> NodeIter {
        self.iter()
    }
}

impl FromIterator<NodeId> for SharingBitmap {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut b = SharingBitmap::empty();
        for n in iter {
            b.insert(n);
        }
        b
    }
}

impl Extend<NodeId> for SharingBitmap {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for n in iter {
            self.insert(n);
        }
    }
}

impl BitOr for SharingBitmap {
    type Output = Self;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        SharingBitmap(self.0 | rhs.0)
    }
}

impl BitOrAssign for SharingBitmap {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for SharingBitmap {
    type Output = Self;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        SharingBitmap(self.0 & rhs.0)
    }
}

impl BitAndAssign for SharingBitmap {
    #[inline]
    fn bitand_assign(&mut self, rhs: Self) {
        self.0 &= rhs.0;
    }
}

impl BitXor for SharingBitmap {
    type Output = Self;
    #[inline]
    fn bitxor(self, rhs: Self) -> Self {
        SharingBitmap(self.0 ^ rhs.0)
    }
}

/// Set difference: nodes in `self` but not in `rhs`.
impl Sub for SharingBitmap {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        SharingBitmap(self.0 & !rhs.0)
    }
}

impl fmt::Debug for SharingBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharingBitmap({:#b})", self.0)
    }
}

impl fmt::Display for SharingBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", n.0)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Binary for SharingBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for SharingBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_all() {
        assert!(SharingBitmap::empty().is_empty());
        assert_eq!(SharingBitmap::all(16).count(), 16);
        assert_eq!(SharingBitmap::all(64).count(), 64);
        assert_eq!(SharingBitmap::all(0), SharingBitmap::empty());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn all_rejects_too_many_nodes() {
        let _ = SharingBitmap::all(65);
    }

    #[test]
    fn insert_remove_contains() {
        let mut b = SharingBitmap::empty();
        b.insert(NodeId(3));
        b.insert(NodeId(0));
        assert!(b.contains(NodeId(3)));
        assert!(b.contains(NodeId(0)));
        assert!(!b.contains(NodeId(1)));
        b.remove(NodeId(3));
        assert!(!b.contains(NodeId(3)));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn without_is_non_mutating() {
        let b = SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]);
        let c = b.without(NodeId(1));
        assert!(b.contains(NodeId(1)));
        assert!(!c.contains(NodeId(1)));
    }

    #[test]
    fn set_algebra() {
        let a = SharingBitmap::from_nodes(&[NodeId(0), NodeId(1)]);
        let b = SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]);
        assert_eq!(
            a | b,
            SharingBitmap::from_nodes(&[NodeId(0), NodeId(1), NodeId(2)])
        );
        assert_eq!(a & b, SharingBitmap::from_nodes(&[NodeId(1)]));
        assert_eq!(a - b, SharingBitmap::from_nodes(&[NodeId(0)]));
        assert_eq!(a ^ b, SharingBitmap::from_nodes(&[NodeId(0), NodeId(2)]));
        assert!(a.overlaps(b));
        assert!(!a.overlaps(SharingBitmap::from_nodes(&[NodeId(5)])));
    }

    #[test]
    fn subset() {
        let a = SharingBitmap::from_nodes(&[NodeId(1)]);
        let b = SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]);
        assert!(a.is_subset(b));
        assert!(!b.is_subset(a));
        assert!(SharingBitmap::empty().is_subset(a));
    }

    #[test]
    fn masked_truncates() {
        let b = SharingBitmap::from_bits(u64::MAX);
        assert_eq!(b.masked(16), SharingBitmap::all(16));
    }

    #[test]
    fn iter_in_order() {
        let b = SharingBitmap::from_nodes(&[NodeId(7), NodeId(0), NodeId(63)]);
        let v: Vec<_> = b.iter().map(|n| n.0).collect();
        assert_eq!(v, vec![0, 7, 63]);
        assert_eq!(b.iter().len(), 3);
    }

    #[test]
    fn collect_from_iterator() {
        let b: SharingBitmap = (0..4).map(NodeId).collect();
        assert_eq!(b, SharingBitmap::all(4));
    }

    #[test]
    fn display_formats() {
        let b = SharingBitmap::from_nodes(&[NodeId(1), NodeId(3)]);
        assert_eq!(b.to_string(), "{1,3}");
        assert_eq!(format!("{:b}", b), "1010");
        assert_eq!(format!("{:x}", b), "a");
        assert_eq!(SharingBitmap::empty().to_string(), "{}");
    }

    proptest! {
        #[test]
        fn prop_union_contains_both(a: u64, b: u64) {
            let (a, b) = (SharingBitmap::from_bits(a), SharingBitmap::from_bits(b));
            prop_assert!(a.is_subset(a | b));
            prop_assert!(b.is_subset(a | b));
        }

        #[test]
        fn prop_intersection_within_both(a: u64, b: u64) {
            let (a, b) = (SharingBitmap::from_bits(a), SharingBitmap::from_bits(b));
            prop_assert!((a & b).is_subset(a));
            prop_assert!((a & b).is_subset(b));
        }

        #[test]
        fn prop_inclusion_exclusion(a: u64, b: u64) {
            let (a, b) = (SharingBitmap::from_bits(a), SharingBitmap::from_bits(b));
            prop_assert_eq!((a | b).count() + (a & b).count(), a.count() + b.count());
        }

        #[test]
        fn prop_iter_roundtrip(bits: u64) {
            let b = SharingBitmap::from_bits(bits);
            let rebuilt: SharingBitmap = b.iter().collect();
            prop_assert_eq!(b, rebuilt);
        }

        #[test]
        fn prop_difference_disjoint(a: u64, b: u64) {
            let (a, b) = (SharingBitmap::from_bits(a), SharingBitmap::from_bits(b));
            prop_assert!(!(a - b).overlaps(b));
            prop_assert_eq!((a - b) | (a & b), a);
        }
    }
}
