//! Byte-level fault injection for the on-disk trace format.
//!
//! Test support for the robustness suite: deterministic, seedable
//! generators of corrupted trace buffers — single-byte flips, truncations,
//! and splices — used to prove that [`crate::io::read_trace`] never
//! panics on malformed input and that the v2 checksums catch payload
//! corruption. Lives in the library (rather than a test file) so the
//! harness and integration suites can share one mutation engine.
//!
//! The generator is a self-contained SplitMix64 so mutations reproduce
//! exactly from a seed, independent of any external RNG crate.

/// One concrete corruption applied to a byte buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// XOR the byte at `offset` with `xor` (never zero, so the buffer
    /// always changes).
    Flip {
        /// Byte position mutated.
        offset: usize,
        /// Nonzero mask XORed into the byte.
        xor: u8,
    },
    /// Cut the buffer down to `len` bytes.
    Truncate {
        /// New (shorter) length.
        len: usize,
    },
    /// Overwrite the bytes at `offset` with a copy of the bytes at
    /// `source` (a plausible-looking internal corruption, e.g. a repeated
    /// sector).
    Splice {
        /// Destination of the copied run.
        offset: usize,
        /// Source of the copied run.
        source: usize,
        /// Run length in bytes.
        len: usize,
    },
}

impl Mutation {
    /// Applies the mutation to a copy of `buf` and returns it.
    pub fn apply(&self, buf: &[u8]) -> Vec<u8> {
        let mut out = buf.to_vec();
        match *self {
            Mutation::Flip { offset, xor } => {
                if let Some(b) = out.get_mut(offset) {
                    *b ^= xor;
                }
            }
            Mutation::Truncate { len } => out.truncate(len),
            Mutation::Splice {
                offset,
                source,
                len,
            } => {
                let run: Vec<u8> = out.iter().copied().skip(source).take(len).collect();
                for (i, b) in run.into_iter().enumerate() {
                    if let Some(dst) = out.get_mut(offset + i) {
                        *dst = b;
                    }
                }
            }
        }
        out
    }
}

/// Deterministic stream of [`Mutation`]s for a buffer of `len` bytes.
///
/// # Example
///
/// ```
/// use csp_trace::fault::{Mutation, MutationStream};
///
/// let buf = vec![0u8; 64];
/// let mutated: Vec<Vec<u8>> = MutationStream::new(buf.len(), 7)
///     .take(100)
///     .map(|m| m.apply(&buf))
///     .collect();
/// assert_eq!(mutated.len(), 100);
/// // Flips always change the buffer; splices may copy equal bytes.
/// for (m, out) in MutationStream::new(buf.len(), 7).take(100).zip(&mutated) {
///     if let Mutation::Flip { .. } = m {
///         assert_ne!(*out, buf);
///     }
/// }
/// ```
#[derive(Clone, Debug)]
pub struct MutationStream {
    len: usize,
    state: u64,
}

impl MutationStream {
    /// A stream of mutations for buffers of `len` bytes, seeded by `seed`.
    pub fn new(len: usize, seed: u64) -> Self {
        MutationStream {
            len,
            // Offset the seed so seed 0 does not start at raw state 0.
            state: seed ^ 0x6A09_E667_F3BC_C908,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Iterator for MutationStream {
    type Item = Mutation;

    fn next(&mut self) -> Option<Mutation> {
        if self.len == 0 {
            return None;
        }
        let r = self.next_u64();
        let kind = r % 4;
        let offset = (self.next_u64() % self.len as u64) as usize;
        Some(match kind {
            // Flips dominate: they are the subtlest corruption.
            0 | 1 => Mutation::Flip {
                offset,
                xor: ((r >> 8) as u8) | 1,
            },
            2 => Mutation::Truncate { len: offset },
            _ => {
                let source = (self.next_u64() % self.len as u64) as usize;
                let len = 1 + (self.next_u64() % 32) as usize;
                Mutation::Splice {
                    offset,
                    source,
                    len,
                }
            }
        })
    }
}

/// Every single-byte flip of `buf`, with the given XOR mask.
///
/// Exhaustive where [`MutationStream`] is sampled: used to prove that *no*
/// single-byte corruption of a v2 file goes undetected.
pub fn all_single_byte_flips(buf: &[u8], xor: u8) -> impl Iterator<Item = Mutation> + '_ {
    assert_ne!(xor, 0, "a zero mask is not a mutation");
    (0..buf.len()).map(move |offset| Mutation::Flip { offset, xor })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<Mutation> = MutationStream::new(100, 42).take(50).collect();
        let b: Vec<Mutation> = MutationStream::new(100, 42).take(50).collect();
        assert_eq!(a, b);
        let c: Vec<Mutation> = MutationStream::new(100, 43).take(50).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn flips_always_change_the_buffer() {
        let buf = vec![0xA5u8; 64];
        for m in MutationStream::new(buf.len(), 1).take(200) {
            if let Mutation::Flip { .. } = m {
                assert_ne!(m.apply(&buf), buf, "{m:?} was a no-op");
            }
        }
    }

    #[test]
    fn truncate_shortens() {
        let buf = vec![1u8; 32];
        let m = Mutation::Truncate { len: 10 };
        assert_eq!(m.apply(&buf).len(), 10);
    }

    #[test]
    fn splice_copies_runs() {
        let buf: Vec<u8> = (0..32).collect();
        let m = Mutation::Splice {
            offset: 0,
            source: 16,
            len: 4,
        };
        assert_eq!(&m.apply(&buf)[..4], &[16, 17, 18, 19]);
    }

    #[test]
    fn splice_past_end_is_safe() {
        let buf: Vec<u8> = (0..8).collect();
        let m = Mutation::Splice {
            offset: 6,
            source: 0,
            len: 100,
        };
        let out = m.apply(&buf);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[6..], &[0, 1]);
    }

    #[test]
    fn exhaustive_flips_cover_every_byte() {
        let buf = vec![0u8; 10];
        let flips: Vec<Mutation> = all_single_byte_flips(&buf, 0x80).collect();
        assert_eq!(flips.len(), 10);
    }

    #[test]
    fn empty_buffer_yields_no_mutations() {
        assert_eq!(MutationStream::new(0, 1).next(), None);
    }
}
