//! Byte-level fault injection for the on-disk trace format.
//!
//! Test support for the robustness suite: deterministic, seedable
//! generators of corrupted trace buffers — single-byte flips, truncations,
//! and splices — used to prove that [`crate::io::read_trace`] never
//! panics on malformed input and that the v2 checksums catch payload
//! corruption. Lives in the library (rather than a test file) so the
//! harness and integration suites can share one mutation engine.
//!
//! The generator is a self-contained SplitMix64 so mutations reproduce
//! exactly from a seed, independent of any external RNG crate.

/// One concrete corruption applied to a byte buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// XOR the byte at `offset` with `xor` (never zero, so the buffer
    /// always changes).
    Flip {
        /// Byte position mutated.
        offset: usize,
        /// Nonzero mask XORed into the byte.
        xor: u8,
    },
    /// Cut the buffer down to `len` bytes.
    Truncate {
        /// New (shorter) length.
        len: usize,
    },
    /// Overwrite the bytes at `offset` with a copy of the bytes at
    /// `source` (a plausible-looking internal corruption, e.g. a repeated
    /// sector).
    Splice {
        /// Destination of the copied run.
        offset: usize,
        /// Source of the copied run.
        source: usize,
        /// Run length in bytes.
        len: usize,
    },
}

impl Mutation {
    /// Applies the mutation to a copy of `buf` and returns it.
    pub fn apply(&self, buf: &[u8]) -> Vec<u8> {
        let mut out = buf.to_vec();
        match *self {
            Mutation::Flip { offset, xor } => {
                if let Some(b) = out.get_mut(offset) {
                    *b ^= xor;
                }
            }
            Mutation::Truncate { len } => out.truncate(len),
            Mutation::Splice {
                offset,
                source,
                len,
            } => {
                let run: Vec<u8> = out.iter().copied().skip(source).take(len).collect();
                for (i, b) in run.into_iter().enumerate() {
                    if let Some(dst) = out.get_mut(offset + i) {
                        *dst = b;
                    }
                }
            }
        }
        out
    }
}

/// Deterministic stream of [`Mutation`]s for a buffer of `len` bytes.
///
/// # Example
///
/// ```
/// use csp_trace::fault::{Mutation, MutationStream};
///
/// let buf = vec![0u8; 64];
/// let mutated: Vec<Vec<u8>> = MutationStream::new(buf.len(), 7)
///     .take(100)
///     .map(|m| m.apply(&buf))
///     .collect();
/// assert_eq!(mutated.len(), 100);
/// // Flips always change the buffer; splices may copy equal bytes.
/// for (m, out) in MutationStream::new(buf.len(), 7).take(100).zip(&mutated) {
///     if let Mutation::Flip { .. } = m {
///         assert_ne!(*out, buf);
///     }
/// }
/// ```
#[derive(Clone, Debug)]
pub struct MutationStream {
    len: usize,
    state: u64,
}

impl MutationStream {
    /// A stream of mutations for buffers of `len` bytes, seeded by `seed`.
    pub fn new(len: usize, seed: u64) -> Self {
        MutationStream {
            len,
            // Offset the seed so seed 0 does not start at raw state 0.
            state: seed ^ 0x6A09_E667_F3BC_C908,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Iterator for MutationStream {
    type Item = Mutation;

    fn next(&mut self) -> Option<Mutation> {
        if self.len == 0 {
            return None;
        }
        let r = self.next_u64();
        let kind = r % 4;
        let offset = (self.next_u64() % self.len as u64) as usize;
        Some(match kind {
            // Flips dominate: they are the subtlest corruption.
            0 | 1 => Mutation::Flip {
                offset,
                xor: ((r >> 8) as u8) | 1,
            },
            2 => Mutation::Truncate { len: offset },
            _ => {
                let source = (self.next_u64() % self.len as u64) as usize;
                let len = 1 + (self.next_u64() % 32) as usize;
                Mutation::Splice {
                    offset,
                    source,
                    len,
                }
            }
        })
    }
}

/// One adversarial behavior applied to a byte *stream* (a socket's write
/// half) rather than a whole buffer — the wire twin of [`Mutation`].
///
/// Offsets are absolute positions in the stream since the wrapper was
/// created, so a fault can be aimed at a specific frame field (e.g. the
/// length prefix of the first frame) regardless of how the writer chunks
/// its writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFault {
    /// Forward bytes unchanged (the healthy-control arm of a chaos run).
    Clean,
    /// XOR the byte at absolute stream `offset` with `xor` — the wire
    /// form of [`Mutation::Flip`]; a CRC-checked peer must reject the
    /// frame instead of acting on it.
    Flip {
        /// Absolute stream position mutated.
        offset: u64,
        /// Nonzero mask XORed into the byte.
        xor: u8,
    },
    /// Silently discard every byte from absolute stream `offset` on,
    /// while reporting success to the writer — the wire form of
    /// [`Mutation::Truncate`]: the peer sees a frame that stops mid-body
    /// and then silence.
    Truncate {
        /// Stream position after which nothing is forwarded.
        offset: u64,
    },
    /// Overwrite the first four stream bytes (a frame's length prefix)
    /// with `len` — claims a frame far larger than will ever arrive, so
    /// a peer without a frame-size ceiling would allocate unboundedly.
    OversizedLen {
        /// The hostile little-endian length to claim.
        len: u32,
    },
    /// Slowloris: forward at most one byte per write call, sleeping
    /// `delay_micros` before each — a peer without read deadlines wedges
    /// a thread on such a connection indefinitely.
    Slowloris {
        /// Microseconds slept before each forwarded byte.
        delay_micros: u64,
    },
}

/// A [`std::io::Write`] adapter that injects one [`WireFault`] into the
/// bytes flowing through it.
///
/// Wrap a socket's write half with this to drive the chaos harness: the
/// application code above it (frame encoder, client) is unchanged and
/// unaware, exactly like a hostile network or a buggy peer.
///
/// # Example
///
/// ```
/// use csp_trace::fault::{FaultyWriter, WireFault};
/// use std::io::Write;
///
/// let mut w = FaultyWriter::new(Vec::new(), WireFault::Flip { offset: 1, xor: 0x80 });
/// w.write_all(&[0, 0, 0]).unwrap();
/// assert_eq!(w.into_inner(), vec![0, 0x80, 0]);
/// ```
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    fault: WireFault,
    written: u64,
}

impl<W: std::io::Write> FaultyWriter<W> {
    /// Wraps `inner`, injecting `fault` at the configured stream offsets.
    pub fn new(inner: W, fault: WireFault) -> Self {
        FaultyWriter {
            inner,
            fault,
            written: 0,
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Total bytes the application has written (whether forwarded or
    /// swallowed by a truncation).
    pub fn stream_position(&self) -> u64 {
        self.written
    }
}

impl<W: std::io::Write> std::io::Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let start = self.written;
        match self.fault {
            WireFault::Clean => {
                let n = self.inner.write(buf)?;
                self.written += n as u64;
                Ok(n)
            }
            WireFault::Flip { offset, xor } => {
                let end = start + buf.len() as u64;
                let n = if (start..end).contains(&offset) {
                    let mut mutated = buf.to_vec();
                    mutated[(offset - start) as usize] ^= xor;
                    self.inner.write(&mutated)?
                } else {
                    self.inner.write(buf)?
                };
                self.written += n as u64;
                Ok(n)
            }
            WireFault::Truncate { offset } => {
                let keep = offset.saturating_sub(start).min(buf.len() as u64) as usize;
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                }
                // Swallow the rest: the writer believes the bytes left.
                self.written += buf.len() as u64;
                Ok(buf.len())
            }
            WireFault::OversizedLen { len } => {
                let mut mutated = buf.to_vec();
                let hostile = len.to_le_bytes();
                for (pos, b) in mutated.iter_mut().enumerate() {
                    let abs = start + pos as u64;
                    if abs < 4 {
                        *b = hostile[abs as usize];
                    }
                }
                let n = self.inner.write(&mutated)?;
                self.written += n as u64;
                Ok(n)
            }
            WireFault::Slowloris { delay_micros } => {
                std::thread::sleep(std::time::Duration::from_micros(delay_micros));
                let n = self.inner.write(&buf[..1])?;
                self.written += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Every single-byte flip of `buf`, with the given XOR mask.
///
/// Exhaustive where [`MutationStream`] is sampled: used to prove that *no*
/// single-byte corruption of a v2 file goes undetected.
pub fn all_single_byte_flips(buf: &[u8], xor: u8) -> impl Iterator<Item = Mutation> + '_ {
    assert_ne!(xor, 0, "a zero mask is not a mutation");
    (0..buf.len()).map(move |offset| Mutation::Flip { offset, xor })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<Mutation> = MutationStream::new(100, 42).take(50).collect();
        let b: Vec<Mutation> = MutationStream::new(100, 42).take(50).collect();
        assert_eq!(a, b);
        let c: Vec<Mutation> = MutationStream::new(100, 43).take(50).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn flips_always_change_the_buffer() {
        let buf = vec![0xA5u8; 64];
        for m in MutationStream::new(buf.len(), 1).take(200) {
            if let Mutation::Flip { .. } = m {
                assert_ne!(m.apply(&buf), buf, "{m:?} was a no-op");
            }
        }
    }

    #[test]
    fn truncate_shortens() {
        let buf = vec![1u8; 32];
        let m = Mutation::Truncate { len: 10 };
        assert_eq!(m.apply(&buf).len(), 10);
    }

    #[test]
    fn splice_copies_runs() {
        let buf: Vec<u8> = (0..32).collect();
        let m = Mutation::Splice {
            offset: 0,
            source: 16,
            len: 4,
        };
        assert_eq!(&m.apply(&buf)[..4], &[16, 17, 18, 19]);
    }

    #[test]
    fn splice_past_end_is_safe() {
        let buf: Vec<u8> = (0..8).collect();
        let m = Mutation::Splice {
            offset: 6,
            source: 0,
            len: 100,
        };
        let out = m.apply(&buf);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[6..], &[0, 1]);
    }

    #[test]
    fn exhaustive_flips_cover_every_byte() {
        let buf = vec![0u8; 10];
        let flips: Vec<Mutation> = all_single_byte_flips(&buf, 0x80).collect();
        assert_eq!(flips.len(), 10);
    }

    #[test]
    fn empty_buffer_yields_no_mutations() {
        assert_eq!(MutationStream::new(0, 1).next(), None);
    }

    #[test]
    fn clean_wire_forwards_verbatim() {
        use std::io::Write;
        let mut w = FaultyWriter::new(Vec::new(), WireFault::Clean);
        w.write_all(&[1, 2, 3]).unwrap();
        w.write_all(&[4, 5]).unwrap();
        assert_eq!(w.stream_position(), 5);
        assert_eq!(w.into_inner(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn wire_flip_hits_absolute_offset_across_chunks() {
        use std::io::Write;
        let mut w = FaultyWriter::new(
            Vec::new(),
            WireFault::Flip {
                offset: 3,
                xor: 0xFF,
            },
        );
        // The target byte lands in the second chunk.
        w.write_all(&[0, 0]).unwrap();
        w.write_all(&[0, 0, 0]).unwrap();
        assert_eq!(w.into_inner(), vec![0, 0, 0, 0xFF, 0]);
    }

    #[test]
    fn wire_truncate_swallows_but_reports_success() {
        use std::io::Write;
        let mut w = FaultyWriter::new(Vec::new(), WireFault::Truncate { offset: 4 });
        w.write_all(&[1, 2, 3]).unwrap();
        w.write_all(&[4, 5, 6]).unwrap();
        w.write_all(&[7]).unwrap();
        // The writer believes all 7 bytes left; only 4 did.
        assert_eq!(w.stream_position(), 7);
        assert_eq!(w.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn wire_oversized_len_rewrites_the_length_prefix() {
        use std::io::Write;
        let mut w = FaultyWriter::new(Vec::new(), WireFault::OversizedLen { len: u32::MAX });
        w.write_all(&[9, 9]).unwrap();
        w.write_all(&[9, 9, 9, 9]).unwrap();
        assert_eq!(w.into_inner(), vec![0xFF, 0xFF, 0xFF, 0xFF, 9, 9]);
    }

    #[test]
    fn wire_slowloris_dribbles_one_byte_per_call() {
        use std::io::Write;
        let mut w = FaultyWriter::new(Vec::new(), WireFault::Slowloris { delay_micros: 0 });
        assert_eq!(w.write(&[1, 2, 3]).unwrap(), 1);
        assert_eq!(w.write(&[2, 3]).unwrap(), 1);
        assert_eq!(w.into_inner(), vec![1, 2]);
    }
}
