//! Coherence trace model for sharing-prediction studies.
//!
//! This crate provides the vocabulary types shared by the whole workspace:
//!
//! * strongly-typed identifiers ([`NodeId`], [`Pc`], [`LineAddr`]),
//! * [`SharingBitmap`] — a fixed-width set of nodes, the unit that sharing
//!   predictors consume and produce,
//! * [`SharingEvent`] — one coherence store miss (a write that required
//!   directory action and invalidated the line's previous readers),
//! * [`Trace`] — an ordered sequence of sharing events plus the final sharer
//!   state of memory, which together determine the *actual* future-reader
//!   bitmap of every event,
//! * [`TraceStats`] — the per-benchmark statistics of Table 5 of the paper,
//! * a compact self-describing binary on-disk format ([`io`]),
//! * durable CRC32c-framed journal segments ([`journal`]) — the on-disk
//!   log replicated serving is built on.
//!
//! # Background
//!
//! In Kaxiras & Young (HPCA 2000), every *coherence store miss* — a write
//! miss or write fault that makes a node the exclusive owner of a cache line
//! — is a *decision point*: the system may predict which nodes will read the
//! newly written line before it is next written, and forward data to them.
//! The trace format captured here records exactly the information available
//! at each such decision: the writer's node id (`pid`), the static store
//! instruction (`pc`), the line's home directory (`dir`), the line address
//! (`addr`), and the feedback bitmap of *true readers invalidated by this
//! write* (the previous interval's readers).
//!
//! # Example
//!
//! ```
//! use csp_trace::{NodeId, Pc, LineAddr, SharingBitmap, SharingEvent, Trace};
//!
//! let n = 4;
//! let mut trace = Trace::new(n);
//! // Node 0 writes line 7 (first write: nobody to invalidate).
//! trace.push(SharingEvent::new(NodeId(0), Pc(1), LineAddr(7), NodeId(3),
//!                              SharingBitmap::empty(), None));
//! // Nodes 1 and 2 read line 7, then node 0 writes it again.
//! let readers = SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]);
//! trace.push(SharingEvent::new(NodeId(0), Pc(1), LineAddr(7), NodeId(3),
//!                              readers, Some((NodeId(0), Pc(1)))));
//! let actuals = trace.resolve_actuals();
//! // The first write's actual future readers are the readers invalidated
//! // by the second write.
//! assert_eq!(actuals[0], readers);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not unwrap panics;
// tests opt back in where unwrapping is the assertion.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod bitmap;
pub mod crc32c;
mod event;
pub mod fault;
mod ids;
pub mod io;
pub mod journal;
mod prepared;
mod stats;
mod trace;
pub mod transform;

pub use bitmap::{NodeIter, SharingBitmap};
pub use event::SharingEvent;
pub use ids::{LineAddr, NodeId, Pc};
pub use prepared::ResolvedTrace;
pub use stats::TraceStats;
pub use trace::Trace;

/// The machine size used throughout the paper's evaluation (Section 5.1).
pub const PAPER_NODES: usize = 16;

/// The maximum number of nodes a [`SharingBitmap`] can represent.
pub const MAX_NODES: usize = 64;
