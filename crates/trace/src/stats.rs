//! Per-trace statistics mirroring Table 5 of the paper.

use crate::Trace;
use std::collections::HashSet;
use std::fmt;

/// Store-instruction and cache-block statistics of a trace (paper Table 5),
/// plus the sharing-prevalence numbers of Table 6.
///
/// * *static stores* — distinct `(node, pc)` pairs among all shared stores;
///   the paper reports the maximum per node.
/// * *predicted stores* — distinct `(node, pc)` pairs that appear in
///   coherence store misses, i.e. stores that actually trigger predictions.
///   In this trace model every recorded event is a prediction point, so the
///   two collapse unless a richer front-end records silent stores; the
///   simulator in `csp-sim` reports true static-store counts separately.
/// * *blocks touched* — distinct lines appearing in the trace.
/// * *store misses* — total coherence store misses (the event count).
///
/// # Example
///
/// ```
/// use csp_trace::{NodeId, Pc, LineAddr, SharingBitmap, SharingEvent, Trace};
/// let mut t = Trace::new(4);
/// t.push(SharingEvent::new(NodeId(0), Pc(1), LineAddr(5), NodeId(1),
///                          SharingBitmap::empty(), None));
/// let s = t.stats();
/// assert_eq!(s.store_misses, 1);
/// assert_eq!(s.blocks_touched, 1);
/// assert_eq!(s.max_predicted_stores_per_node, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Maximum over nodes of the number of distinct store pcs the node
    /// executed on shared data.
    pub max_static_stores_per_node: usize,
    /// Maximum over nodes of the number of distinct store pcs involved in
    /// predictions (coherence store misses) at that node.
    pub max_predicted_stores_per_node: usize,
    /// Total distinct cache lines touched by coherence store misses.
    pub blocks_touched: usize,
    /// Total coherence store misses (prediction points).
    pub store_misses: u64,
    /// Misses that are the first write to their line in the trace (no
    /// previous writer, so no feedback to deliver).
    pub first_writes: u64,
    /// Misses where the line's previous writer is the same node writing
    /// again (a refetch after losing exclusivity to readers).
    pub rewrites: u64,
    /// Misses where ownership migrated to a different node than the
    /// previous writer — the events forwarded update exists for.
    pub migrations: u64,
    /// Misses whose write actually invalidated at least one reader
    /// (non-empty feedback bitmap).
    pub invalidating_misses: u64,
    /// Total set bits over all actual bitmaps (Table 6 "dynamic sharing
    /// events").
    pub dynamic_sharing_events: u64,
    /// `store_misses x nodes` (Table 6 "dynamic sharing decisions").
    pub dynamic_sharing_decisions: u64,
    /// `dynamic_sharing_events / dynamic_sharing_decisions` (Table 6).
    pub prevalence: f64,
}

impl TraceStats {
    /// Computes the statistics of `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut per_node_pcs: Vec<HashSet<u32>> = vec![HashSet::new(); trace.nodes()];
        let mut blocks: HashSet<u64> = HashSet::new();
        let (mut first_writes, mut rewrites, mut migrations, mut invalidating) = (0, 0, 0, 0);
        for e in trace.events() {
            per_node_pcs[e.writer.index()].insert(e.pc.0);
            blocks.insert(e.line.0);
            match e.prev_writer {
                None => first_writes += 1,
                Some((prev, _)) if prev == e.writer => rewrites += 1,
                Some(_) => migrations += 1,
            }
            if !e.invalidated.is_empty() {
                invalidating += 1;
            }
        }
        let max_pcs = per_node_pcs.iter().map(HashSet::len).max().unwrap_or(0);
        TraceStats {
            // Event-visible static stores equal predicted stores; the
            // simulator layer can widen the static count with stores that
            // hit locally and never reach the directory.
            max_static_stores_per_node: max_pcs,
            max_predicted_stores_per_node: max_pcs,
            blocks_touched: blocks.len(),
            store_misses: trace.len() as u64,
            first_writes,
            rewrites,
            migrations,
            invalidating_misses: invalidating,
            dynamic_sharing_events: trace.dynamic_sharing_events(),
            dynamic_sharing_decisions: trace.dynamic_sharing_decisions(),
            prevalence: trace.prevalence(),
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "static/node={} predicted/node={} blocks={} misses={} prevalence={:.2}%",
            self.max_static_stores_per_node,
            self.max_predicted_stores_per_node,
            self.blocks_touched,
            self.store_misses,
            self.prevalence * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LineAddr, NodeId, Pc, SharingEvent};

    fn ev(writer: u8, pc: u32, line: u64, inv: &[u8]) -> SharingEvent {
        SharingEvent::new(
            NodeId(writer),
            Pc(pc),
            LineAddr(line),
            NodeId(0),
            inv.iter().map(|&n| NodeId(n)).collect(),
            None,
        )
    }

    #[test]
    fn empty_trace_stats() {
        let s = Trace::new(16).stats();
        assert_eq!(s.store_misses, 0);
        assert_eq!(s.blocks_touched, 0);
        assert_eq!(s.max_static_stores_per_node, 0);
        assert_eq!(s.prevalence, 0.0);
    }

    #[test]
    fn counts_distinct_pcs_per_node_and_blocks() {
        let mut t = Trace::new(4);
        t.push(ev(0, 10, 1, &[]));
        t.push(ev(0, 11, 2, &[]));
        t.push(ev(0, 10, 3, &[])); // duplicate pc on node 0
        t.push(ev(1, 10, 1, &[1])); // node 1: one pc, line 1 repeated
        let s = t.stats();
        assert_eq!(s.max_static_stores_per_node, 2); // node 0 has pcs {10,11}
        assert_eq!(s.blocks_touched, 3);
        assert_eq!(s.store_misses, 4);
        assert_eq!(s.dynamic_sharing_decisions, 16);
    }

    fn ev_prev(writer: u8, line: u64, inv: &[u8], prev: Option<u8>) -> SharingEvent {
        SharingEvent::new(
            NodeId(writer),
            Pc(1),
            LineAddr(line),
            NodeId(0),
            inv.iter().map(|&n| NodeId(n)).collect(),
            prev.map(|p| (NodeId(p), Pc(1))),
        )
    }

    #[test]
    fn event_type_counts_partition_the_trace() {
        let mut t = Trace::new(4);
        t.push(ev_prev(0, 1, &[], None)); // first write
        t.push(ev_prev(0, 1, &[1, 2], Some(0))); // rewrite, invalidating
        t.push(ev_prev(3, 1, &[], Some(0))); // migration, silent
        t.push(ev_prev(3, 2, &[], None)); // first write
        let s = t.stats();
        assert_eq!(s.first_writes, 2);
        assert_eq!(s.rewrites, 1);
        assert_eq!(s.migrations, 1);
        assert_eq!(s.invalidating_misses, 1);
        assert_eq!(s.first_writes + s.rewrites + s.migrations, s.store_misses);
    }

    #[test]
    fn display_renders_all_fields() {
        let mut t = Trace::new(4);
        t.push(ev(0, 10, 1, &[]));
        let rendered = t.stats().to_string();
        assert!(rendered.contains("misses=1"));
        assert!(rendered.contains("prevalence="));
    }
}
