//! Durable journal segment framing: the append-only on-disk log format
//! replication builds on (`csp-serve`).
//!
//! A journal file is a header followed by CRC32c-framed *segments*, each
//! carrying an opaque batch of fixed- or variable-width records the
//! caller defines:
//!
//! ```text
//! file:
//!   magic "CSPJRNL2"
//!   header: fingerprint u32 | start_offset u64 | epoch u64 | crc u32
//!           (crc over the 20 header bytes)
//! segment (repeated):
//!   count u32 | len u32 | records[len] | crc u32           (crc over count, len and records)
//! ```
//!
//! The original `CSPJRNL1` layout (no `epoch` field — a 12-byte header)
//! is still read, reporting `epoch = 0`; new files are always written as
//! `CSPJRNL2`. The epoch is an opaque caller-defined term — replication
//! uses it to fence writes from a deposed leader across a failover.
//!
//! All integers are little-endian, checksums are CRC32c
//! ([`crate::crc32c`]) — the same conventions as the trace format.
//!
//! # Failure model
//!
//! The writer flushes after every appended segment, so a process killed
//! hard (SIGKILL, power loss short of media failure) leaves at most one
//! *torn* segment at the tail. [`read_journal`] tolerates exactly that:
//! it returns every segment up to the first one that is short or fails
//! its checksum and reports the cut with [`JournalContents::torn`] —
//! corruption truncates the log, it never yields bogus records. A new
//! writer then starts a *new* file at the recovered offset instead of
//! appending past the tear.
//!
//! # Example
//!
//! ```
//! use csp_trace::journal::{read_journal, JournalHeader, SegmentWriter};
//!
//! let mut bytes = Vec::new();
//! let header = JournalHeader { fingerprint: 0xFEED, start_offset: 42, epoch: 3 };
//! let mut w = SegmentWriter::create(&mut bytes, &header)?;
//! w.append(2, b"ab")?;
//! w.append(1, b"c")?;
//! let back = read_journal(bytes.as_slice())?;
//! assert_eq!(back.header.start_offset, 42);
//! assert_eq!(back.header.epoch, 3);
//! assert_eq!(back.segments.len(), 2);
//! assert!(!back.torn);
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::crc32c;
use std::io::{self, Read, Write};

/// Identifies a journal file written by this crate (format version 2,
/// with an epoch field in the header).
pub const JOURNAL_MAGIC: &[u8; 8] = b"CSPJRNL2";

/// The original format-version-1 magic: same framing, but a 12-byte
/// header with no epoch field. Still readable ([`read_journal`] reports
/// `epoch = 0`); never written.
pub const JOURNAL_MAGIC_V1: &[u8; 8] = b"CSPJRNL1";

/// Hard ceiling on one segment's record bytes: bounds what a corrupt
/// length field can make the reader allocate.
pub const MAX_SEGMENT_BYTES: usize = 1 << 24;

/// The self-describing prefix of a journal file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// Caller-defined compatibility fingerprint; a reader that expects a
    /// different fingerprint must treat the file as foreign.
    pub fingerprint: u32,
    /// The logical offset (in records) of the first record in this file.
    pub start_offset: u64,
    /// Caller-defined epoch (fencing term) the records were written
    /// under. `0` for files recovered from the v1 format.
    pub epoch: u64,
}

/// One decoded segment: `count` records packed into `records` (the
/// caller defines the record encoding).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalSegment {
    /// Number of records in this segment.
    pub count: u32,
    /// The packed record bytes.
    pub records: Vec<u8>,
}

/// Everything [`read_journal`] recovered from one file.
#[derive(Clone, Debug)]
pub struct JournalContents {
    /// The file header.
    pub header: JournalHeader,
    /// Whole, checksum-verified segments, in append order.
    pub segments: Vec<JournalSegment>,
    /// `true` when the file ended in a torn or corrupt segment that was
    /// discarded — the recovered prefix is still trustworthy.
    pub torn: bool,
}

impl JournalContents {
    /// Total records across the recovered segments.
    pub fn record_count(&self) -> u64 {
        self.segments.iter().map(|s| u64::from(s.count)).sum()
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Appends CRC32c-framed segments to a journal, flushing after each so a
/// hard kill loses at most the segment being written.
#[derive(Debug)]
pub struct SegmentWriter<W: Write> {
    inner: W,
}

impl<W: Write> SegmentWriter<W> {
    /// Writes the magic and header, returning a writer positioned for
    /// the first segment.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn create(mut inner: W, header: &JournalHeader) -> io::Result<Self> {
        inner.write_all(JOURNAL_MAGIC)?;
        let mut fields = [0u8; 20];
        fields[..4].copy_from_slice(&header.fingerprint.to_le_bytes());
        fields[4..12].copy_from_slice(&header.start_offset.to_le_bytes());
        fields[12..].copy_from_slice(&header.epoch.to_le_bytes());
        inner.write_all(&fields)?;
        inner.write_all(&crc32c::checksum(&fields).to_le_bytes())?;
        inner.flush()?;
        Ok(SegmentWriter { inner })
    }

    /// Appends one segment of `count` records packed into `records` and
    /// flushes, so the segment is out of this process's hands when the
    /// call returns.
    ///
    /// # Errors
    ///
    /// Rejects segments over [`MAX_SEGMENT_BYTES`]; propagates I/O
    /// errors.
    pub fn append(&mut self, count: u32, records: &[u8]) -> io::Result<()> {
        if records.len() > MAX_SEGMENT_BYTES {
            return Err(bad(format!(
                "segment of {} bytes exceeds the {MAX_SEGMENT_BYTES}-byte limit",
                records.len()
            )));
        }
        let mut head = [0u8; 8];
        head[..4].copy_from_slice(&count.to_le_bytes());
        head[4..].copy_from_slice(&(records.len() as u32).to_le_bytes());
        let mut crc = crc32c::Hasher::new();
        crc.update(&head);
        crc.update(records);
        self.inner.write_all(&head)?;
        self.inner.write_all(records)?;
        self.inner.write_all(&crc.finalize().to_le_bytes())?;
        self.inner.flush()
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

fn read_exact_or_torn<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::CleanEnd
                } else {
                    ReadOutcome::Torn
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Whole)
}

enum ReadOutcome {
    Whole,
    CleanEnd,
    Torn,
}

/// Reads a journal, tolerating a torn tail: every whole, checksummed
/// segment before the first damaged one is returned and the damage is
/// reported as [`JournalContents::torn`].
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] when the magic or the *header* is bad
/// (nothing can be trusted then); transport errors propagate. Segment
/// damage is not an error — it truncates.
pub fn read_journal<R: Read>(mut r: R) -> io::Result<JournalContents> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    let header_len = if &magic == JOURNAL_MAGIC {
        20
    } else if &magic == JOURNAL_MAGIC_V1 {
        12
    } else {
        return Err(bad("not a journal file (bad magic)"));
    };
    let mut fields = [0u8; 20];
    r.read_exact(&mut fields[..header_len])?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    if u32::from_le_bytes(crc_bytes) != crc32c::checksum(&fields[..header_len]) {
        return Err(bad("journal header checksum mismatch"));
    }
    let header = JournalHeader {
        fingerprint: u32::from_le_bytes([fields[0], fields[1], fields[2], fields[3]]),
        start_offset: u64::from_le_bytes([
            fields[4], fields[5], fields[6], fields[7], fields[8], fields[9], fields[10],
            fields[11],
        ]),
        // v1 headers stop at the start offset; they predate epochs.
        epoch: u64::from_le_bytes([
            fields[12], fields[13], fields[14], fields[15], fields[16], fields[17], fields[18],
            fields[19],
        ]),
    };
    let mut segments = Vec::new();
    let mut torn = false;
    loop {
        let mut head = [0u8; 8];
        match read_exact_or_torn(&mut r, &mut head)? {
            ReadOutcome::CleanEnd => break,
            ReadOutcome::Torn => {
                torn = true;
                break;
            }
            ReadOutcome::Whole => {}
        }
        let count = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        let len = u32::from_le_bytes([head[4], head[5], head[6], head[7]]) as usize;
        if len > MAX_SEGMENT_BYTES {
            // A plausible header never claims this; the tail is garbage.
            torn = true;
            break;
        }
        let mut records = vec![0u8; len];
        if !matches!(
            read_exact_or_torn(&mut r, &mut records)?,
            ReadOutcome::Whole
        ) {
            torn = true;
            break;
        }
        let mut crc_bytes = [0u8; 4];
        if !matches!(
            read_exact_or_torn(&mut r, &mut crc_bytes)?,
            ReadOutcome::Whole
        ) {
            torn = true;
            break;
        }
        let mut crc = crc32c::Hasher::new();
        crc.update(&head);
        crc.update(&records);
        if u32::from_le_bytes(crc_bytes) != crc.finalize() {
            torn = true;
            break;
        }
        segments.push(JournalSegment { count, records });
    }
    Ok(JournalContents {
        header,
        segments,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{all_single_byte_flips, Mutation};

    fn sample() -> Vec<u8> {
        let mut bytes = Vec::new();
        let header = JournalHeader {
            fingerprint: 0xDEAD_BEEF,
            start_offset: 1_000,
            epoch: 7,
        };
        let mut w = SegmentWriter::create(&mut bytes, &header).unwrap();
        w.append(3, b"aaabbbccc").unwrap();
        w.append(1, b"dd").unwrap();
        w.append(2, b"eeee").unwrap();
        bytes
    }

    #[test]
    fn round_trips_header_and_segments() {
        let back = read_journal(sample().as_slice()).unwrap();
        assert_eq!(back.header.fingerprint, 0xDEAD_BEEF);
        assert_eq!(back.header.start_offset, 1_000);
        assert_eq!(back.header.epoch, 7);
        assert!(!back.torn);
        assert_eq!(back.record_count(), 6);
        assert_eq!(
            back.segments,
            vec![
                JournalSegment {
                    count: 3,
                    records: b"aaabbbccc".to_vec()
                },
                JournalSegment {
                    count: 1,
                    records: b"dd".to_vec()
                },
                JournalSegment {
                    count: 2,
                    records: b"eeee".to_vec()
                },
            ]
        );
    }

    #[test]
    fn empty_journal_is_valid() {
        let mut bytes = Vec::new();
        let header = JournalHeader {
            fingerprint: 7,
            start_offset: 0,
            epoch: 1,
        };
        SegmentWriter::create(&mut bytes, &header).unwrap();
        let back = read_journal(bytes.as_slice()).unwrap();
        assert!(back.segments.is_empty());
        assert!(!back.torn);
    }

    /// Hand-writes a v1 file (12-byte header, `CSPJRNL1` magic) and
    /// requires the reader to recover it with `epoch = 0`.
    #[test]
    fn v1_journals_still_read_with_epoch_zero() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(JOURNAL_MAGIC_V1);
        let mut fields = [0u8; 12];
        fields[..4].copy_from_slice(&0xFEED_FACEu32.to_le_bytes());
        fields[4..].copy_from_slice(&99u64.to_le_bytes());
        bytes.extend_from_slice(&fields);
        bytes.extend_from_slice(&crc32c::checksum(&fields).to_le_bytes());
        // Segment framing is identical in both versions.
        let mut head = [0u8; 8];
        head[..4].copy_from_slice(&2u32.to_le_bytes());
        head[4..].copy_from_slice(&4u32.to_le_bytes());
        let mut crc = crc32c::Hasher::new();
        crc.update(&head);
        crc.update(b"wxyz");
        bytes.extend_from_slice(&head);
        bytes.extend_from_slice(b"wxyz");
        bytes.extend_from_slice(&crc.finalize().to_le_bytes());
        let back = read_journal(bytes.as_slice()).unwrap();
        assert_eq!(back.header.fingerprint, 0xFEED_FACE);
        assert_eq!(back.header.start_offset, 99);
        assert_eq!(back.header.epoch, 0);
        assert!(!back.torn);
        assert_eq!(back.segments.len(), 1);
        assert_eq!(back.segments[0].records, b"wxyz");
    }

    #[test]
    fn every_tail_truncation_recovers_a_clean_prefix() {
        let bytes = sample();
        // The file prefix before segments: magic + header + header crc.
        let header_len = 8 + 20 + 4;
        for len in header_len..bytes.len() {
            let cut = Mutation::Truncate { len }.apply(&bytes);
            let back = read_journal(cut.as_slice()).unwrap();
            // Either the cut landed exactly on a segment boundary (clean)
            // or the tail segment was discarded (torn) — never a partial
            // or corrupt segment in the output.
            assert!(back.segments.len() <= 3);
            for (i, seg) in back.segments.iter().enumerate() {
                let reference = [b"aaabbbccc".as_slice(), b"dd", b"eeee"];
                assert_eq!(seg.records, reference[i], "truncated to {len}");
            }
            if len < bytes.len() {
                assert!(
                    back.torn || back.segments.len() < 3 || len == bytes.len(),
                    "cut at {len} claimed a whole file"
                );
            }
        }
        // Truncating into the header itself is a hard error.
        for len in 0..header_len {
            assert!(read_journal(Mutation::Truncate { len }.apply(&bytes).as_slice()).is_err());
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_truncates() {
        let bytes = sample();
        let clean = read_journal(bytes.as_slice()).unwrap();
        for m in all_single_byte_flips(&bytes, 0x04) {
            let hurt = m.apply(&bytes);
            match read_journal(hurt.as_slice()) {
                // Header damage: the whole file is rejected.
                Err(_) => {}
                // Segment damage: the log is truncated at the flip, and
                // every surviving segment is bit-identical to the clean
                // read's prefix.
                Ok(back) => {
                    assert!(
                        back.torn || back.segments == clean.segments,
                        "{m:?} silently altered the recovered log"
                    );
                    for (a, b) in back.segments.iter().zip(&clean.segments) {
                        assert_eq!(a, b, "{m:?} corrupted a recovered segment");
                    }
                }
            }
        }
    }

    #[test]
    fn hostile_segment_length_truncates_instead_of_allocating() {
        let mut bytes = Vec::new();
        let header = JournalHeader {
            fingerprint: 1,
            start_offset: 0,
            epoch: 1,
        };
        let mut w = SegmentWriter::create(&mut bytes, &header).unwrap();
        w.append(1, b"x").unwrap();
        // Forge a segment header claiming u32::MAX record bytes.
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(b"garbage");
        let back = read_journal(bytes.as_slice()).unwrap();
        assert_eq!(back.segments.len(), 1);
        assert!(back.torn);
    }

    #[test]
    fn oversized_append_is_rejected() {
        let mut bytes = Vec::new();
        let header = JournalHeader {
            fingerprint: 1,
            start_offset: 0,
            epoch: 1,
        };
        let mut w = SegmentWriter::create(&mut bytes, &header).unwrap();
        let big = vec![0u8; MAX_SEGMENT_BYTES + 1];
        assert!(w.append(1, &big).is_err());
    }
}
