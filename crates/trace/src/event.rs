//! Coherence sharing events: one record per coherence store miss.

use crate::{LineAddr, NodeId, Pc, SharingBitmap};

/// One coherence store miss: a write (write miss or write fault) that made
/// `writer` the exclusive owner of `line` and invalidated the line's
/// previous readers.
///
/// This is the paper's *decision point*: at this moment a prediction scheme
/// may guess the bitmap of nodes that will read `line` before the next
/// write. The fields are exactly the information the paper says is available
/// at that moment (Section 3.1): `pid` ([`writer`](Self::writer)), `pc`
/// ([`pc`](Self::pc)), `dir` ([`home`](Self::home)) and `addr`
/// ([`line`](Self::line)) — plus the feedback every invalidation supplies:
/// the *true* readers just invalidated ([`invalidated`](Self::invalidated)),
/// and the last-writer information forwarded update requires
/// ([`prev_writer`](Self::prev_writer)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharingEvent {
    /// The node performing the write (`pid`).
    pub writer: NodeId,
    /// The static store instruction performing the write (`pc`).
    pub pc: Pc,
    /// The cache line being written (`addr`).
    pub line: LineAddr,
    /// The line's home directory node (`dir`).
    pub home: NodeId,
    /// The true readers invalidated by this write: the nodes that actually
    /// read `line` between the previous write and this one, excluding the
    /// previous writer itself. This is the history feedback the update
    /// mechanisms consume (Section 3.4). Empty on the first write to a line.
    pub invalidated: SharingBitmap,
    /// The identity (`pid`, `pc`) of the previous writer of `line`, if any.
    /// Forwarded update uses this to deliver `invalidated` to the entry of
    /// the writer whose readers these were (Figure 3).
    pub prev_writer: Option<(NodeId, Pc)>,
}

impl SharingEvent {
    /// Creates a sharing event.
    ///
    /// `invalidated` should already exclude the previous writer; the
    /// constructor does not (and cannot) check that, but
    /// [`Trace::push`](crate::Trace::push) validates node ids against the
    /// machine width.
    pub fn new(
        writer: NodeId,
        pc: Pc,
        line: LineAddr,
        home: NodeId,
        invalidated: SharingBitmap,
        prev_writer: Option<(NodeId, Pc)>,
    ) -> Self {
        SharingEvent {
            writer,
            pc,
            line,
            home,
            invalidated,
            prev_writer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let e = SharingEvent::new(
            NodeId(2),
            Pc(0x40),
            LineAddr(100),
            NodeId(4),
            SharingBitmap::from_nodes(&[NodeId(1)]),
            Some((NodeId(3), Pc(0x44))),
        );
        assert_eq!(e.writer, NodeId(2));
        assert_eq!(e.pc, Pc(0x40));
        assert_eq!(e.line, LineAddr(100));
        assert_eq!(e.home, NodeId(4));
        assert!(e.invalidated.contains(NodeId(1)));
        assert_eq!(e.prev_writer, Some((NodeId(3), Pc(0x44))));
    }
}
