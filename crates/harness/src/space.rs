//! Enumeration of the affordable predictor design space.
//!
//! The paper explores "the space of predictor schemes up to an
//! implementation cost of 2^24 bits, or 2 Mbytes across the entire
//! machine" (Section 5.4). This module enumerates that space: every
//! combination of prediction function, history depth, index fields with
//! even bit budgets, and update mode, filtered by the cost model.

use csp_core::{IndexSpec, PredictionFunction, Scheme, UpdateMode};

/// Parameters of a design-space enumeration.
///
/// # Example
///
/// ```
/// use csp_harness::space::DesignSpace;
///
/// let space = DesignSpace::paper();
/// let schemes = space.schemes();
/// assert!(schemes.len() > 1000);
/// assert!(schemes.iter().all(|s| s.size_log2_bits(16) <= 24));
/// ```
#[derive(Clone, Debug)]
pub struct DesignSpace {
    /// Prediction functions to include.
    pub functions: Vec<PredictionFunction>,
    /// History depths to include (functions with fixed depth ignore this).
    pub depths: Vec<usize>,
    /// Candidate pc-field widths (0 = absent).
    pub pc_bits: Vec<u8>,
    /// Candidate addr-field widths (0 = absent).
    pub addr_bits: Vec<u8>,
    /// Update modes to include.
    pub updates: Vec<UpdateMode>,
    /// Maximum cost as `log2(bits)` on a 16-node machine.
    pub max_size_log2: u32,
}

impl DesignSpace {
    /// The paper's search space: `union`/`inter` at depths 1–4, even field
    /// widths up to 16 bits, cost capped at 2^24 bits. Direct and forwarded
    /// update (the two implementable modes the top-ten tables report).
    pub fn paper() -> Self {
        DesignSpace {
            functions: vec![PredictionFunction::Union, PredictionFunction::Inter],
            depths: vec![1, 2, 3, 4],
            pc_bits: vec![0, 2, 4, 6, 8, 10, 12, 14, 16],
            addr_bits: vec![0, 2, 4, 6, 8, 10, 12, 14, 16],
            updates: vec![UpdateMode::Direct, UpdateMode::Forwarded],
            max_size_log2: 24,
        }
    }

    /// A reduced space for quick runs and tests.
    pub fn small() -> Self {
        DesignSpace {
            functions: vec![PredictionFunction::Union, PredictionFunction::Inter],
            depths: vec![1, 2, 4],
            pc_bits: vec![0, 4, 8],
            addr_bits: vec![0, 4, 8],
            updates: vec![UpdateMode::Direct],
            max_size_log2: 24,
        }
    }

    /// Every index specification in the space (pid/dir free, field widths
    /// from the configured candidates), before cost filtering.
    pub fn index_specs(&self) -> Vec<IndexSpec> {
        let mut out = Vec::new();
        for &pid in &[false, true] {
            for &dir in &[false, true] {
                for &pc in &self.pc_bits {
                    for &addr in &self.addr_bits {
                        out.push(IndexSpec::new(pid, pc, dir, addr));
                    }
                }
            }
        }
        out
    }

    /// Every scheme in the space whose cost fits the budget (16 nodes).
    pub fn schemes(&self) -> Vec<Scheme> {
        let mut out = Vec::new();
        for ix in self.index_specs() {
            for &f in &self.functions {
                let depths: &[usize] = match f {
                    PredictionFunction::Last | PredictionFunction::OverlapLast => &[1],
                    _ => &self.depths,
                };
                for &d in depths {
                    for &u in &self.updates {
                        let s = Scheme::new(f, ix, d, u);
                        if s.size_log2_bits(16) <= self.max_size_log2 {
                            out.push(s);
                        }
                    }
                }
            }
        }
        out
    }
}

/// The sixteen index configurations on the x-axis of the paper's Figures
/// 6 and 7: all subsets of `{pid, pc, dir, addr}` with the `pc`/`addr`
/// budgets chosen to fill a 16-bit index (4 bits each for `pid`/`dir`).
pub fn figure6_index_grid() -> Vec<IndexSpec> {
    index_grid(16)
}

/// The sixteen index configurations of Figure 8 (PAs predictors): the same
/// subsets filled to a 12-bit budget.
pub fn figure8_index_grid() -> Vec<IndexSpec> {
    index_grid(12)
}

/// Builds the figure x-axis: for each of the 16 subsets of
/// `{pid, pc, dir, addr}` (in the paper's label order), split the
/// remaining budget after pid/dir evenly between the pc and addr fields
/// present.
fn index_grid(max_bits: u8) -> Vec<IndexSpec> {
    let mut out = Vec::new();
    // Paper label order: (addr), (dir), (pc), (pid) bits from top to
    // bottom, enumerated with pid as the slowest-varying field.
    for &pid in &[false, true] {
        for &use_pc in &[false, true] {
            for &dir in &[false, true] {
                for &use_addr in &[false, true] {
                    let mut budget = max_bits;
                    if pid {
                        budget = budget.saturating_sub(4);
                    }
                    if dir {
                        budget = budget.saturating_sub(4);
                    }
                    let (pc_bits, addr_bits) = match (use_pc, use_addr) {
                        (false, false) => (0, 0),
                        (true, false) => (budget, 0),
                        (false, true) => (0, budget),
                        // Split the budget; bias the odd pair to match the
                        // paper's labels (e.g. pc12+addr? -> 8+8, 6+6).
                        (true, true) => {
                            let half = (budget / 2) & !1; // even split
                            (half, budget - half)
                        }
                    };
                    out.push(IndexSpec::new(pid, pc_bits, dir, addr_bits));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_size_and_budget() {
        let space = DesignSpace::paper();
        let schemes = space.schemes();
        // 4 pid/dir combos x 9 x 9 field widths x 2 functions x depths
        // {1..4, deduped for depth-1} x 2 updates, minus over-budget.
        assert!(schemes.len() > 2000, "got {}", schemes.len());
        assert!(schemes.iter().all(|s| s.size_log2_bits(16) <= 24));
        // The paper's named top performers are all in the space.
        for name in [
            "inter(pid+add6)4",
            "union(dir+add14)4",
            "inter(pid+pc8+add6)4[forwarded]",
        ] {
            let target: Scheme = name.parse().unwrap();
            assert!(schemes.contains(&target), "{name} missing from space");
        }
    }

    #[test]
    fn figure_grids_have_16_points_within_budget() {
        for (grid, max) in [(figure6_index_grid(), 16u32), (figure8_index_grid(), 12)] {
            assert_eq!(grid.len(), 16);
            for ix in &grid {
                assert!(ix.bits(16) <= max, "{ix} exceeds {max} bits");
            }
            // All 16 Table 1 cases appear exactly once.
            let mut cases: Vec<u8> = grid.iter().map(|ix| ix.table1_case()).collect();
            cases.sort_unstable();
            cases.dedup();
            assert_eq!(cases.len(), 16);
        }
    }

    #[test]
    fn figure6_grid_matches_paper_labels() {
        let grid = figure6_index_grid();
        // Spot-check the labels from Figure 6's x-axis.
        assert_eq!(grid[0], IndexSpec::none());
        assert_eq!(grid[1], IndexSpec::new(false, 0, false, 16)); // addr16
        assert_eq!(grid[2], IndexSpec::new(false, 0, true, 0)); // dir
        assert_eq!(grid[3], IndexSpec::new(false, 0, true, 12)); // dir+add12
        assert_eq!(grid[4], IndexSpec::new(false, 16, false, 0)); // pc16
        assert_eq!(grid[5], IndexSpec::new(false, 8, false, 8)); // pc8+add8
        assert_eq!(grid[15], IndexSpec::new(true, 4, true, 4)); // pid+pc4+dir+add4
    }

    #[test]
    fn small_space_is_subset_of_paper_sizes() {
        let small = DesignSpace::small().schemes();
        assert!(!small.is_empty());
        assert!(small.len() < DesignSpace::paper().schemes().len());
    }
}
