//! `csp-trace-tool` — generate, inspect and convert coherence traces.
//!
//! ```text
//! csp-trace-tool gen <benchmark> <out.csptrc> [--scale S] [--seed N]
//! csp-trace-tool info <trace.csptrc>
//! csp-trace-tool cat <trace.csptrc> [--limit N]
//! csp-trace-tool csv <trace.csptrc> [out.csv]
//! csp-trace-tool eval <trace.csptrc> <scheme>...
//! ```
//!
//! `cat` streams events straight off disk (via [`trace_io::EventStream`])
//! without materialising the whole trace, so it is safe on traces far
//! larger than memory.

use csp_core::{engine, Scheme};
use csp_trace::transform::line_profile;
use csp_trace::{io as trace_io, Trace};
use csp_workloads::{Benchmark, WorkloadConfig};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("cat") => cmd_cat(&args[1..]),
        Some("csv") => cmd_csv(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        _ => {
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage:");
    eprintln!("  csp-trace-tool gen <benchmark> <out.csptrc> [--scale S] [--seed N]");
    eprintln!("  csp-trace-tool info <trace.csptrc>");
    eprintln!("  csp-trace-tool cat <trace.csptrc> [--limit N]");
    eprintln!("  csp-trace-tool csv <trace.csptrc> [out.csv]");
    eprintln!("  csp-trace-tool eval <trace.csptrc> <scheme>...");
    eprintln!(
        "benchmarks: {}",
        Benchmark::ALL.map(|b| b.name()).join(", ")
    );
}

fn load(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    trace_io::read_trace(BufReader::new(file)).map_err(|e| format!("read {path}: {e}"))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let (mut scale, mut seed) = (1.0f64, 1u64);
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &f64| v > 0.0)
                    .ok_or("--scale needs a positive number")?
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?
            }
            other => positional.push(other.to_string()),
        }
    }
    let [bench_name, out_path] = positional.as_slice() else {
        return Err("gen needs <benchmark> <out.csptrc>".into());
    };
    let benchmark = Benchmark::from_name(bench_name)
        .ok_or_else(|| format!("unknown benchmark {bench_name:?}"))?;
    let (trace, stats) = WorkloadConfig::new(benchmark)
        .scale(scale)
        .seed(seed)
        .generate_trace();
    let file = File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    trace_io::write_trace(BufWriter::new(file), &trace).map_err(|e| e.to_string())?;
    eprintln!(
        "{benchmark}: wrote {} events ({} blocks, prevalence {:.2}%) to {out_path}",
        trace.len(),
        stats.lines_touched,
        trace.prevalence() * 100.0
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("info needs <trace.csptrc>".into());
    };
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let version =
        trace_io::probe_version(BufReader::new(file)).map_err(|e| format!("read {path}: {e}"))?;
    // `load` re-reads from the top; for a v2 file a successful load means
    // every section checksum verified.
    let trace = load(path)?;
    let stats = trace.stats();
    println!(
        "format version:        {version} ({})",
        if version >= trace_io::FORMAT_VERSION {
            "CRC32c checksums verified"
        } else {
            "legacy, no checksums"
        }
    );
    println!("nodes:                 {}", trace.nodes());
    println!("events:                {}", trace.len());
    println!("  first writes:        {}", stats.first_writes);
    println!("  rewrites:            {}", stats.rewrites);
    println!("  migrations:          {}", stats.migrations);
    println!("  invalidating misses: {}", stats.invalidating_misses);
    println!("blocks touched:        {}", stats.blocks_touched);
    println!(
        "max stores/node:       {}",
        stats.max_predicted_stores_per_node
    );
    println!("prevalence:            {:.2}%", trace.prevalence() * 100.0);
    let profile = line_profile(&trace);
    println!(
        "events/line:           mean {:.1}, max {} (hottest 10% of lines carry {:.0}% of events)",
        profile.mean_events_per_line,
        profile.max_events_per_line,
        profile.hot_decile_share * 100.0
    );
    let hist = trace.sharing_degree_histogram();
    let total: u64 = hist.iter().sum();
    print!("degree distribution:  ");
    for (k, &count) in hist.iter().enumerate().take(5) {
        print!(" {k}:{:.1}%", count as f64 / total.max(1) as f64 * 100.0);
    }
    let rest: u64 = hist[5..].iter().sum();
    println!(" 5+:{:.1}%", rest as f64 / total.max(1) as f64 * 100.0);
    Ok(())
}

fn cmd_cat(args: &[String]) -> Result<(), String> {
    let mut limit: Option<u64> = None;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--limit" => {
                limit = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--limit needs an integer")?,
                )
            }
            other => positional.push(other.to_string()),
        }
    }
    let [path] = positional.as_slice() else {
        return Err("cat needs <trace.csptrc> [--limit N]".into());
    };
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    // Stream events one at a time instead of load()ing the whole trace:
    // `cat --limit 20` on a multi-gigabyte trace reads only the header
    // plus twenty records.
    let mut stream = trace_io::EventStream::new(BufReader::new(file))
        .map_err(|e| format!("read {path}: {e}"))?;
    let total = stream.remaining();
    let take = limit.unwrap_or(total).min(total);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "# {path}: {total} events, {} nodes, format v{}",
        stream.nodes(),
        stream.version()
    )
    .ok();
    writeln!(
        out,
        "{:>10} {:>7} {:>11} {:>5}  {:16} {:18} prev-writer",
        "event", "writer", "pc", "home", "line", "invalidated"
    )
    .ok();
    for i in 0..take {
        let event = stream
            .next_event()
            .map_err(|e| format!("read {path}: {e}"))?
            .ok_or_else(|| format!("read {path}: truncated at event {i}"))?;
        let prev = match event.prev_writer {
            Some((node, pc)) => format!("{node}@{pc}"),
            None => "-".to_string(),
        };
        writeln!(
            out,
            "{:>10} {:>7} {:>11} {:>5}  {:16} {:18} {prev}",
            i,
            event.writer.to_string(),
            event.pc.to_string(),
            event.home.to_string(),
            event.line.to_string(),
            event.invalidated.to_string(),
        )
        .ok();
    }
    if take < total {
        writeln!(out, "# ... {} more event(s) not shown", total - take).ok();
    }
    Ok(())
}

fn cmd_csv(args: &[String]) -> Result<(), String> {
    let (path, out) = match args {
        [p] => (p, None),
        [p, o] => (p, Some(o)),
        _ => return Err("csv needs <trace.csptrc> [out.csv]".into()),
    };
    let trace = load(path)?;
    match out {
        Some(o) => {
            let file = File::create(o).map_err(|e| format!("create {o}: {e}"))?;
            trace
                .to_csv(BufWriter::new(file))
                .map_err(|e| e.to_string())?;
            eprintln!("wrote {} rows to {o}", trace.len());
        }
        None => {
            let stdout = std::io::stdout();
            trace
                .to_csv(BufWriter::new(stdout.lock()))
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let [path, specs @ ..] = args else {
        return Err("eval needs <trace.csptrc> <scheme>...".into());
    };
    if specs.is_empty() {
        return Err("eval needs at least one scheme".into());
    }
    let trace = load(path)?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "{:34} {:>6} {:>6} {:>6}",
        "scheme", "prev", "pvp", "sens"
    )
    .ok();
    for spec in specs {
        let scheme: Scheme = spec.parse().map_err(|e| format!("{spec}: {e}"))?;
        let s = engine::run_scheme(&trace, &scheme).screening();
        writeln!(
            out,
            "{:34} {:>6.3} {:>6.3} {:>6.3}",
            scheme.to_string(),
            s.prevalence,
            s.pvp,
            s.sensitivity
        )
        .ok();
    }
    Ok(())
}
