//! `csp-repro` — regenerate every table and figure of Kaxiras & Young
//! (HPCA 2000) from the synthetic benchmark suite.
//!
//! ```text
//! csp-repro [--scale S] [--seed N] [--out DIR] [EXPERIMENT...]
//!
//!   EXPERIMENT: table3..table11, fig6..fig9, extA, extC, ext-depth,
//!               ext-field, ext-sticky, ext-confidence, ext-cosmos,
//!               ext-degree, or `all` (default)
//!   --scale S         workload scale factor (default 1.0)
//!   --seed N          suite seed (default 1)
//!   --out DIR         additionally write each report to DIR/<experiment>.txt
//!   --cache-dir DIR   trace cache location (default results/trace-cache)
//!   --no-cache        generate the suite in memory, bypassing the cache
//!   --checkpoint FILE resume the tables 8-11 design-space sweep from FILE
//!   --sweep-tsv FILE  dump the full design-space sweep as TSV and exit
//!   --verify-serve    replay the suite through the online sharded engine
//!                     (csp-serve) and verify bit-identical statistics
//!   --bench-engine    time the naive vs prepared sweep paths and exit
//!   --bench-out FILE  where --bench-engine writes its JSON report
//!                     (default BENCH_engine.json); with --bench-engine,
//!                     --out FILE is accepted as a synonym (shared with
//!                     `csp-bar run --out`)
//!   --warmup N        untimed passes per arm before the timed
//!                     iterations (default 0; shared with `csp-bar run`)
//!   --bench-check FILE  fail if the measured speedup regressed more than
//!                     20% below the baseline report in FILE
//! ```
//!
//! The trajectory-aware successor of `--bench-engine` is the `csp-bar`
//! barometer (see `crates/bar/FORMAT.md`): it runs the full
//! (workload x scheme x engine) matrix through the same
//! `csp_harness::engines` adapters and appends committed measurement
//! records under `results/bar/`. `--bench-engine` remains as the
//! single-point gate during the transition.
//!
//! Exit codes: 0 success; 1 runtime failure (I/O, corruption, worker
//! panics — diagnostics on stderr, no usage text); 2 usage error (bad
//! flags — usage text on stderr).

use csp_harness::experiments::{top_tables, top_tables_checkpointed, ExperimentId, TopTables};
use csp_harness::runner::dump_sweep_tsv;
use csp_harness::{CacheOutcome, HarnessError, Suite, TraceCache};
use std::path::PathBuf;
use std::process::ExitCode;

/// Everything the command line selects.
struct Options {
    scale: f64,
    seed: u64,
    out_dir: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    sweep_tsv: Option<PathBuf>,
    verify_serve: bool,
    bench_engine: bool,
    bench_out: Option<PathBuf>,
    warmup: usize,
    bench_check: Option<PathBuf>,
    requested: Vec<ExperimentId>,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => return usage_error(&msg),
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        // Runtime failures are not usage mistakes: report the error alone
        // (no usage text) and exit with a distinct code.
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: 1.0,
        seed: 1,
        out_dir: None,
        cache_dir: Some(PathBuf::from("results/trace-cache")),
        checkpoint: None,
        sweep_tsv: None,
        verify_serve: false,
        bench_engine: false,
        bench_out: None,
        warmup: 0,
        bench_check: None,
        requested: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => opts.scale = v,
                _ => return Err("--scale needs a positive number".into()),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => opts.seed = v,
                _ => return Err("--seed needs an integer".into()),
            },
            "--out" => match args.next() {
                Some(dir) => opts.out_dir = Some(PathBuf::from(dir)),
                None => return Err("--out needs a directory".into()),
            },
            "--cache-dir" => match args.next() {
                Some(dir) => opts.cache_dir = Some(PathBuf::from(dir)),
                None => return Err("--cache-dir needs a directory".into()),
            },
            "--no-cache" => opts.cache_dir = None,
            "--checkpoint" => match args.next() {
                Some(f) => opts.checkpoint = Some(PathBuf::from(f)),
                None => return Err("--checkpoint needs a file path".into()),
            },
            "--sweep-tsv" => match args.next() {
                Some(f) => opts.sweep_tsv = Some(PathBuf::from(f)),
                None => return Err("--sweep-tsv needs a file path".into()),
            },
            "--verify-serve" => opts.verify_serve = true,
            "--bench-engine" => opts.bench_engine = true,
            "--bench-out" => match args.next() {
                Some(f) => opts.bench_out = Some(PathBuf::from(f)),
                None => return Err("--bench-out needs a file path".into()),
            },
            "--warmup" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => opts.warmup = n,
                None => return Err("--warmup needs a non-negative integer".into()),
            },
            "--bench-check" => match args.next() {
                Some(f) => opts.bench_check = Some(PathBuf::from(f)),
                None => return Err("--bench-check needs a file path".into()),
            },
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            "all" => opts.requested.extend(ExperimentId::ALL),
            name => match ExperimentId::from_name(name) {
                Some(e) => opts.requested.push(e),
                None => return Err(format!("unknown experiment {name:?}")),
            },
        }
    }
    if opts.requested.is_empty() {
        opts.requested.extend(ExperimentId::ALL);
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<(), HarnessError> {
    let t0 = std::time::Instant::now();
    let suite = load_suite(opts)?;
    for b in suite.traces() {
        eprintln!(
            "  {:9} {:>8} events, {:>7} blocks, prevalence {:.2}%",
            b.benchmark.name(),
            b.trace.len(),
            b.stats.lines_touched,
            b.trace.prevalence() * 100.0
        );
    }
    eprintln!("suite ready in {:.1?}\n", t0.elapsed());

    if opts.bench_engine {
        return bench_engine(&suite, opts);
    }

    if opts.verify_serve {
        return verify_serve(&suite);
    }

    if let Some(path) = &opts.sweep_tsv {
        eprintln!("dumping full design-space sweep to {}...", path.display());
        let file = std::fs::File::create(path).map_err(|e| HarnessError::io(path, e))?;
        return dump_sweep_tsv(&suite, std::io::BufWriter::new(file))
            .map_err(|e| HarnessError::io(path, e));
    }

    // Tables 8-11 share one expensive sweep; compute it once if more than
    // one of them was requested, or if a checkpoint should back it.
    let search_ids = [
        ExperimentId::Table8,
        ExperimentId::Table9,
        ExperimentId::Table10,
        ExperimentId::Table11,
    ];
    let wants_search = opts
        .requested
        .iter()
        .filter(|e| search_ids.contains(e))
        .count();
    let tops: Option<TopTables> =
        if wants_search > 1 || (wants_search > 0 && opts.checkpoint.is_some()) {
            eprintln!("running design-space sweep for tables 8-11...");
            let t = std::time::Instant::now();
            let tops = match &opts.checkpoint {
                Some(path) => top_tables_checkpointed(&suite, path)?,
                None => top_tables(&suite),
            };
            eprintln!("sweep done in {:.1?}\n", t.elapsed());
            Some(tops)
        } else {
            None
        };

    for &e in &opts.requested {
        let t = std::time::Instant::now();
        let report = match (&tops, e) {
            (Some(t), ExperimentId::Table8) => t.table8.clone(),
            (Some(t), ExperimentId::Table9) => t.table9.clone(),
            (Some(t), ExperimentId::Table10) => t.table10.clone(),
            (Some(t), ExperimentId::Table11) => t.table11.clone(),
            _ => e.run(&suite),
        };
        println!("{report}");
        if let Some(dir) = &opts.out_dir {
            if let Err(err) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join(format!("{e}.txt")), &report))
            {
                eprintln!("warning: could not write {e}.txt: {err}");
            }
        }
        eprintln!("[{e} in {:.1?}]\n", t.elapsed());
    }
    Ok(())
}

/// Times the naive (per-cell resolution) and prepared (shared key-stream)
/// sweep paths over the same family grid, writes the JSON report, and
/// optionally gates on a committed baseline.
fn bench_engine(suite: &Suite, opts: &Options) -> Result<(), HarnessError> {
    use csp_harness::run_engine_bench_warm;

    const MAX_DEPTH: usize = 4;
    const TOLERANCE: f64 = 0.2;
    let report = run_engine_bench_warm(suite, MAX_DEPTH, opts.warmup);
    println!("{}", report.summary());
    // `--bench-out` wins; in bench mode a bare `--out FILE` (the flag
    // `csp-bar run` shares) is accepted as the report path too.
    let out = opts
        .bench_out
        .clone()
        .or_else(|| opts.out_dir.clone())
        .unwrap_or_else(|| PathBuf::from("BENCH_engine.json"));
    std::fs::write(&out, report.to_json()).map_err(|e| HarnessError::io(&out, e))?;
    eprintln!("report written to {}", out.display());
    if let Some(baseline) = &opts.bench_check {
        let text = std::fs::read_to_string(baseline).map_err(|e| HarnessError::io(baseline, e))?;
        report.check_against_baseline(&text, TOLERANCE)?;
        println!(
            "speedup within {:.0}% of baseline {}",
            TOLERANCE * 100.0,
            baseline.display()
        );
    }
    Ok(())
}

/// Replays the suite through the online sharded engine (`csp-serve`) for
/// every scheme in the verification grid and checks the screening
/// statistics are bit-identical to the offline reference engine.
fn verify_serve(suite: &Suite) -> Result<(), HarnessError> {
    use csp_harness::serve::{verification_schemes, verify_online_equivalence};

    const SHARDS: usize = 4;
    let schemes = verification_schemes();
    println!(
        "verifying online (sharded x{SHARDS}) == offline across {} schemes x {} benchmarks",
        schemes.len(),
        suite.traces().len()
    );
    let t0 = std::time::Instant::now();
    let divergences = verify_online_equivalence(suite, &schemes, SHARDS);
    for scheme in &schemes {
        let diverged: Vec<_> = divergences.iter().filter(|d| d.scheme == *scheme).collect();
        if diverged.is_empty() {
            println!("  {scheme:<28} online == offline (bit-identical)");
        } else {
            for d in diverged {
                println!("  DIVERGED: {d}");
            }
        }
    }
    println!("verified in {:.1?}", t0.elapsed());
    if divergences.is_empty() {
        Ok(())
    } else {
        Err(HarnessError::ServeDivergence {
            count: divergences.len(),
            first: divergences[0].to_string(),
        })
    }
}

/// Builds the suite, through the trace cache unless `--no-cache`.
fn load_suite(opts: &Options) -> Result<Suite, HarnessError> {
    match &opts.cache_dir {
        None => {
            eprintln!(
                "generating benchmark suite (scale {}, seed {})...",
                opts.scale, opts.seed
            );
            Ok(Suite::generate(opts.scale, opts.seed))
        }
        Some(dir) => {
            eprintln!(
                "loading benchmark suite (scale {}, seed {}, cache {})...",
                opts.scale,
                opts.seed,
                dir.display()
            );
            let cache = TraceCache::new(dir);
            let (suite, outcomes) = cache.load_suite(opts.scale, opts.seed)?;
            let hits = outcomes.iter().filter(|&&o| o == CacheOutcome::Hit).count();
            let quarantined = outcomes
                .iter()
                .filter(|&&o| o == CacheOutcome::Quarantined)
                .count();
            if quarantined > 0 {
                eprintln!(
                    "  cache: {hits}/{} hits, {quarantined} corrupt entries regenerated",
                    outcomes.len()
                );
            } else {
                eprintln!("  cache: {hits}/{} hits", outcomes.len());
            }
            Ok(suite)
        }
    }
}

fn usage_error(err: &str) -> ExitCode {
    eprintln!("error: {err}\n");
    print_usage();
    ExitCode::from(2)
}

fn print_usage() {
    eprintln!("usage: csp-repro [OPTIONS] [EXPERIMENT...]");
    eprintln!("options:");
    eprintln!("  --scale S         workload scale factor (default 1.0)");
    eprintln!("  --seed N          suite seed (default 1)");
    eprintln!("  --out DIR         also write each report to DIR/<experiment>.txt");
    eprintln!("  --cache-dir DIR   trace cache location (default results/trace-cache)");
    eprintln!("  --no-cache        generate the suite in memory, bypassing the cache");
    eprintln!("  --checkpoint FILE resume the tables 8-11 sweep from FILE");
    eprintln!("  --sweep-tsv FILE  dump the full design-space sweep as TSV and exit");
    eprintln!("  --verify-serve    verify the online sharded engine reproduces offline stats");
    eprintln!("  --bench-engine    time the naive vs prepared sweep paths and exit");
    eprintln!(
        "  --bench-out FILE  where --bench-engine writes its report (default BENCH_engine.json;"
    );
    eprintln!("                    --out FILE is a synonym in bench mode)");
    eprintln!("  --warmup N        untimed passes per bench arm before timing (default 0)");
    eprintln!("  --bench-check FILE  fail if speedup regressed >20% below the baseline in FILE");
    eprintln!("experiments:");
    for e in ExperimentId::ALL {
        eprintln!("  {e}");
    }
    eprintln!("  all (default)");
}
