//! `csp-repro` — regenerate every table and figure of Kaxiras & Young
//! (HPCA 2000) from the synthetic benchmark suite.
//!
//! ```text
//! csp-repro [--scale S] [--seed N] [--out DIR] [EXPERIMENT...]
//!
//!   EXPERIMENT: table3..table11, fig6..fig9, extA, extC, ext-depth,
//!               ext-field, ext-sticky, ext-confidence, ext-cosmos,
//!               ext-degree, or `all` (default)
//!   --scale S   workload scale factor (default 1.0)
//!   --seed N    suite seed (default 1)
//!   --out DIR   additionally write each report to DIR/<experiment>.txt
//!   --sweep-tsv FILE  dump the full design-space sweep as TSV and exit
//! ```

use csp_harness::experiments::{top_tables, ExperimentId};
use csp_harness::runner::dump_sweep_tsv;
use csp_harness::Suite;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale = 1.0f64;
    let mut seed = 1u64;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut sweep_tsv: Option<std::path::PathBuf> = None;
    let mut requested: Vec<ExperimentId> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => scale = v,
                _ => return usage("--scale needs a positive number"),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => seed = v,
                _ => return usage("--seed needs an integer"),
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(std::path::PathBuf::from(dir)),
                None => return usage("--out needs a directory"),
            },
            "--sweep-tsv" => match args.next() {
                Some(f) => sweep_tsv = Some(std::path::PathBuf::from(f)),
                None => return usage("--sweep-tsv needs a file path"),
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            "all" => requested.extend(ExperimentId::ALL),
            name => match ExperimentId::from_name(name) {
                Some(e) => requested.push(e),
                None => return usage(&format!("unknown experiment {name:?}")),
            },
        }
    }
    if requested.is_empty() {
        requested.extend(ExperimentId::ALL);
    }

    eprintln!("generating benchmark suite (scale {scale}, seed {seed})...");
    let t0 = std::time::Instant::now();
    let suite = Suite::generate(scale, seed);
    for b in suite.traces() {
        eprintln!(
            "  {:9} {:>8} events, {:>7} blocks, prevalence {:.2}%",
            b.benchmark.name(),
            b.trace.len(),
            b.stats.lines_touched,
            b.trace.prevalence() * 100.0
        );
    }
    eprintln!("suite ready in {:.1?}\n", t0.elapsed());

    if let Some(path) = sweep_tsv {
        eprintln!("dumping full design-space sweep to {}...", path.display());
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => return usage(&format!("cannot create {}: {e}", path.display())),
        };
        if let Err(e) = dump_sweep_tsv(&suite, std::io::BufWriter::new(file)) {
            eprintln!("error writing sweep: {e}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    // Tables 8-11 share one expensive sweep; compute it once if more than
    // one of them was requested.
    let search_ids = [
        ExperimentId::Table8,
        ExperimentId::Table9,
        ExperimentId::Table10,
        ExperimentId::Table11,
    ];
    let wants_search = requested.iter().filter(|e| search_ids.contains(e)).count();
    let tops = if wants_search > 1 {
        eprintln!("running design-space sweep for tables 8-11...");
        let t = std::time::Instant::now();
        let tops = top_tables(&suite);
        eprintln!("sweep done in {:.1?}\n", t.elapsed());
        Some(tops)
    } else {
        None
    };

    for e in requested {
        let t = std::time::Instant::now();
        let report = match (&tops, e) {
            (Some(t), ExperimentId::Table8) => t.table8.clone(),
            (Some(t), ExperimentId::Table9) => t.table9.clone(),
            (Some(t), ExperimentId::Table10) => t.table10.clone(),
            (Some(t), ExperimentId::Table11) => t.table11.clone(),
            _ => e.run(&suite),
        };
        println!("{report}");
        if let Some(dir) = &out_dir {
            if let Err(err) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join(format!("{e}.txt")), &report))
            {
                eprintln!("warning: could not write {e}.txt: {err}");
            }
        }
        eprintln!("[{e} in {:.1?}]\n", t.elapsed());
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}\n");
    print_usage();
    ExitCode::FAILURE
}

fn print_usage() {
    eprintln!("usage: csp-repro [--scale S] [--seed N] [--out DIR] [EXPERIMENT...]");
    eprintln!("experiments:");
    for e in ExperimentId::ALL {
        eprintln!("  {e}");
    }
    eprintln!("  all (default)");
}
