//! Serve-backed evaluation: runs suite experiments through the *online*
//! sharded engine (`csp-serve`) instead of the offline single-threaded
//! engine, and verifies the two agree bit for bit.
//!
//! The offline engine is the methodological ground truth (it is what
//! every table and figure of the paper reproduction uses); the sharded
//! engine is what a deployment would run. This module is the bridge that
//! proves switching to the deployment path changes *nothing*: same
//! confusion counts, same screening rates, on every benchmark.

use crate::runner::{SchemeStats, Suite};
use csp_core::engine::run_scheme;
use csp_core::Scheme;
use csp_metrics::ConfusionMatrix;
use csp_serve::ShardedEngine;
use csp_workloads::Benchmark;
use std::fmt;

/// Evaluates one scheme over every benchmark through the sharded online
/// engine — the serve-backed twin of [`crate::runner::evaluate_scheme`].
pub fn evaluate_scheme_online(suite: &Suite, scheme: &Scheme, shards: usize) -> SchemeStats {
    let per_benchmark = suite
        .traces()
        .iter()
        .map(|b| {
            let engine = ShardedEngine::new(*scheme, b.trace.nodes(), shards);
            engine
                .replay_trace(&b.trace)
                .expect("engine built with the trace's own width");
            engine.stats().confusion
        })
        .collect();
    SchemeStats::from_matrices(*scheme, per_benchmark)
}

/// One benchmark where online and offline evaluation disagreed.
#[derive(Clone, Debug)]
pub struct ServeDivergence {
    /// The scheme that diverged.
    pub scheme: Scheme,
    /// The benchmark it diverged on.
    pub benchmark: Benchmark,
    /// What the sharded online engine counted.
    pub online: ConfusionMatrix,
    /// What the offline reference engine counted.
    pub offline: ConfusionMatrix,
}

impl fmt::Display for ServeDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: online {:?} != offline {:?}",
            self.scheme, self.benchmark, self.online, self.offline
        )
    }
}

/// Replays every benchmark through the online engine for each scheme and
/// compares against the offline engine. An empty return means the
/// online == offline proof holds for the whole grid.
pub fn verify_online_equivalence(
    suite: &Suite,
    schemes: &[Scheme],
    shards: usize,
) -> Vec<ServeDivergence> {
    let mut divergences = Vec::new();
    for scheme in schemes {
        for bench in suite.traces() {
            let offline = run_scheme(&bench.trace, scheme);
            let engine = ShardedEngine::new(*scheme, bench.trace.nodes(), shards);
            engine
                .replay_trace(&bench.trace)
                .expect("engine built with the trace's own width");
            let online = engine.stats().confusion;
            if online != offline {
                divergences.push(ServeDivergence {
                    scheme: *scheme,
                    benchmark: bench.benchmark,
                    online,
                    offline,
                });
            }
        }
    }
    divergences
}

/// Proves the replication pipeline preserves bit-identity in-process:
/// for every benchmark, a leader journals half the trace, a follower
/// bootstraps from the frozen snapshot, the remainder streams through
/// the replication log in [`MAX_SEGMENT_OPS`]-bounded segments — and the
/// follower must end bit-identical to both the leader and the offline
/// reference engine.
///
/// [`MAX_SEGMENT_OPS`]: csp_serve::MAX_SEGMENT_OPS
///
/// An empty return means the proof holds; entries are human-readable
/// divergence descriptions.
pub fn verify_replication_equivalence(
    suite: &Suite,
    scheme: &Scheme,
    shards: usize,
) -> Vec<String> {
    use csp_core::PreparedTrace;
    use csp_serve::replication::{self, snapshot_at_head};
    use csp_serve::{IngestOp, ReplOp, ReplicationLog, MAX_SEGMENT_OPS};
    use std::time::Duration;

    let mut divergences = Vec::new();
    for bench in suite.traces() {
        let offline = run_scheme(&bench.trace, scheme);
        let nodes = bench.trace.nodes();
        let fp = replication::fingerprint(scheme, nodes);

        // Leader: journal from the start, snapshot mid-trace.
        let leader = ShardedEngine::new(*scheme, nodes, shards);
        leader
            .attach_replication(ReplicationLog::in_memory(fp))
            .expect("fresh engine has no log");
        let prepared = PreparedTrace::new(&bench.trace);
        let half = prepared.len() / 2;
        leader
            .replay_range(&prepared, 0..half)
            .expect("engine built with the trace's own width");
        leader.flush();
        let state = snapshot_at_head(&leader).expect("in-memory snapshot cannot fail on io");

        // Follower: bootstrap from the snapshot, then stream the rest.
        let mut offset = state.seq;
        let follower = state.restore().expect("snapshot restores");
        follower.mark_follower();

        leader
            .replay_range(&prepared, half..prepared.len())
            .expect("engine built with the trace's own width");
        leader.flush();
        let log = leader.replication().expect("attached above");
        let head = log.head();
        while offset < head {
            let segment = match log.wait_segment(offset, MAX_SEGMENT_OPS, Duration::from_millis(10))
            {
                Ok(segment) => segment,
                Err(e) => {
                    divergences.push(format!(
                        "{scheme} on {}: stream broke at offset {offset}: {e:?}",
                        bench.benchmark
                    ));
                    break;
                }
            };
            let ops: Vec<IngestOp> = segment.ops.iter().map(ReplOp::to_ingest).collect();
            offset += ops.len() as u64;
            follower.ingest_ops(ops);
        }
        follower.flush();

        let l = leader.stats();
        let f = follower.stats();
        if f.confusion != offline {
            divergences.push(format!(
                "{scheme} on {}: follower {:?} != offline {:?}",
                bench.benchmark, f.confusion, offline
            ));
        }
        if (l.confusion, l.updates, l.scored, l.entries)
            != (f.confusion, f.updates, f.scored, f.entries)
        {
            divergences.push(format!(
                "{scheme} on {}: follower ({:?}, updates {}, scored {}, entries {}) \
                 != leader ({:?}, updates {}, scored {}, entries {})",
                bench.benchmark,
                f.confusion,
                f.updates,
                f.scored,
                f.entries,
                l.confusion,
                l.updates,
                l.scored,
                l.entries
            ));
        }
    }
    divergences
}

/// The scheme grid `csp-repro --verify-serve` checks: the paper's three
/// prediction-function families under every update mode they support.
pub fn verification_schemes() -> Vec<Scheme> {
    [
        "last(pid+pc8)1[direct]",
        "last(pid+pc8)1[forwarded]",
        "union(pid+pc8)2[direct]",
        "union(pid+pc8)2[forwarded]",
        "union(dir+add8)2[ordered]",
        "pas(pid+pc8)2[direct]",
    ]
    .iter()
    .map(|s| s.parse().expect("verification scheme notation"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::evaluate_scheme;

    #[test]
    fn online_stats_match_offline_stats_exactly() {
        let suite = Suite::generate(0.02, 11);
        let scheme: Scheme = "union(pid+pc8)2[forwarded]".parse().unwrap();
        let online = evaluate_scheme_online(&suite, &scheme, 3);
        let offline = evaluate_scheme(&suite, &scheme);
        assert_eq!(online.per_benchmark, offline.per_benchmark);
        assert_eq!(online.mean.pvp.to_bits(), offline.mean.pvp.to_bits());
    }

    #[test]
    fn verification_grid_is_clean() {
        let suite = Suite::generate(0.02, 11);
        let divergences = verify_online_equivalence(&suite, &verification_schemes(), 4);
        assert!(divergences.is_empty(), "{divergences:?}");
    }

    #[test]
    fn replication_pipeline_is_bit_identical_across_the_suite() {
        let suite = Suite::generate(0.02, 11);
        for scheme in ["union(pid+pc8)2[forwarded]", "last(pid+pc8)1[direct]"] {
            let scheme: Scheme = scheme.parse().unwrap();
            let divergences = verify_replication_equivalence(&suite, &scheme, 3);
            assert!(divergences.is_empty(), "{divergences:#?}");
        }
    }
}
