//! Serve-backed evaluation: runs suite experiments through the *online*
//! sharded engine (`csp-serve`) instead of the offline single-threaded
//! engine, and verifies the two agree bit for bit.
//!
//! The offline engine is the methodological ground truth (it is what
//! every table and figure of the paper reproduction uses); the sharded
//! engine is what a deployment would run. This module is the bridge that
//! proves switching to the deployment path changes *nothing*: same
//! confusion counts, same screening rates, on every benchmark.

use crate::runner::{SchemeStats, Suite};
use csp_core::engine::run_scheme;
use csp_core::Scheme;
use csp_metrics::ConfusionMatrix;
use csp_serve::ShardedEngine;
use csp_workloads::Benchmark;
use std::fmt;

/// Evaluates one scheme over every benchmark through the sharded online
/// engine — the serve-backed twin of [`crate::runner::evaluate_scheme`].
pub fn evaluate_scheme_online(suite: &Suite, scheme: &Scheme, shards: usize) -> SchemeStats {
    let per_benchmark = suite
        .traces()
        .iter()
        .map(|b| {
            let engine = ShardedEngine::new(*scheme, b.trace.nodes(), shards);
            engine
                .replay_trace(&b.trace)
                .expect("engine built with the trace's own width");
            engine.stats().confusion
        })
        .collect();
    SchemeStats::from_matrices(*scheme, per_benchmark)
}

/// One benchmark where online and offline evaluation disagreed.
#[derive(Clone, Debug)]
pub struct ServeDivergence {
    /// The scheme that diverged.
    pub scheme: Scheme,
    /// The benchmark it diverged on.
    pub benchmark: Benchmark,
    /// What the sharded online engine counted.
    pub online: ConfusionMatrix,
    /// What the offline reference engine counted.
    pub offline: ConfusionMatrix,
}

impl fmt::Display for ServeDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: online {:?} != offline {:?}",
            self.scheme, self.benchmark, self.online, self.offline
        )
    }
}

/// Replays every benchmark through the online engine for each scheme and
/// compares against the offline engine. An empty return means the
/// online == offline proof holds for the whole grid.
pub fn verify_online_equivalence(
    suite: &Suite,
    schemes: &[Scheme],
    shards: usize,
) -> Vec<ServeDivergence> {
    let mut divergences = Vec::new();
    for scheme in schemes {
        for bench in suite.traces() {
            let offline = run_scheme(&bench.trace, scheme);
            let engine = ShardedEngine::new(*scheme, bench.trace.nodes(), shards);
            engine
                .replay_trace(&bench.trace)
                .expect("engine built with the trace's own width");
            let online = engine.stats().confusion;
            if online != offline {
                divergences.push(ServeDivergence {
                    scheme: *scheme,
                    benchmark: bench.benchmark,
                    online,
                    offline,
                });
            }
        }
    }
    divergences
}

/// The scheme grid `csp-repro --verify-serve` checks: the paper's three
/// prediction-function families under every update mode they support.
pub fn verification_schemes() -> Vec<Scheme> {
    [
        "last(pid+pc8)1[direct]",
        "last(pid+pc8)1[forwarded]",
        "union(pid+pc8)2[direct]",
        "union(pid+pc8)2[forwarded]",
        "union(dir+add8)2[ordered]",
        "pas(pid+pc8)2[direct]",
    ]
    .iter()
    .map(|s| s.parse().expect("verification scheme notation"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::evaluate_scheme;

    #[test]
    fn online_stats_match_offline_stats_exactly() {
        let suite = Suite::generate(0.02, 11);
        let scheme: Scheme = "union(pid+pc8)2[forwarded]".parse().unwrap();
        let online = evaluate_scheme_online(&suite, &scheme, 3);
        let offline = evaluate_scheme(&suite, &scheme);
        assert_eq!(online.per_benchmark, offline.per_benchmark);
        assert_eq!(online.mean.pvp.to_bits(), offline.mean.pvp.to_bits());
    }

    #[test]
    fn verification_grid_is_clean() {
        let suite = Suite::generate(0.02, 11);
        let divergences = verify_online_equivalence(&suite, &verification_schemes(), 4);
        assert!(divergences.is_empty(), "{divergences:?}");
    }
}
