//! Crash-safe checkpointing of sweep results.
//!
//! Design-space sweeps are hours of pure recomputation if a run dies at
//! 95%. A [`SweepCheckpoint`] makes them resumable: every finished cell is
//! appended to a log file as a CRC32c-guarded record, and a restarted
//! sweep replays the log, skips the finished cells, and appends the rest.
//! Because cells are pure functions of their inputs, a resumed sweep's
//! results are **bitwise identical** to an uninterrupted run's.
//!
//! # File layout
//!
//! ```text
//! header:  "CSPCKPT\x01"  kind[4]  fingerprint u64-le
//! record:  index u32-le  len u32-le  payload[len]  crc32c u32-le
//! ```
//!
//! The `kind` tags the payload type; the `fingerprint` hashes everything
//! the results depend on (suite key, work-item list, code version tag).
//! A checkpoint whose header does not match the running sweep is
//! discarded and restarted — stale results are never resumed into a
//! different sweep. The record CRC covers index, length and payload, so a
//! torn tail (crash mid-append) or bit rot truncates the log at the last
//! good record instead of resurrecting garbage.

use crate::error::HarnessError;
use csp_core::engine::FamilyResult;
use csp_core::{IndexSpec, Scheme, UpdateMode};
use csp_metrics::ConfusionMatrix;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

use crate::runner::{FamilyCell, SchemeStats};

const MAGIC: &[u8; 8] = b"CSPCKPT\x01";
const HEADER_LEN: u64 = 8 + 4 + 8;
/// Upper bound on one record's payload; anything larger is corruption.
const MAX_PAYLOAD: u32 = 1 << 24;

/// A result type that can be persisted into a sweep checkpoint.
pub trait CheckpointPayload: Sized {
    /// Four bytes distinguishing this payload type on disk.
    const KIND: [u8; 4];

    /// Appends the binary encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value; `None` on any malformation. Must consume the
    /// whole buffer (trailing bytes are malformation too).
    fn decode(bytes: &[u8]) -> Option<Self>;
}

/// Order-insensitive 64-bit fingerprint builder (FNV-1a over
/// length-prefixed parts, so `["ab","c"]` and `["a","bc"]` differ).
#[derive(Clone, Copy, Debug)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Starts a fingerprint seeded by a domain tag.
    pub fn new(domain: &str) -> Self {
        Fingerprint(0xCBF2_9CE4_8422_2325).push(domain.as_bytes())
    }

    /// Mixes one part into the fingerprint.
    #[must_use]
    pub fn push(mut self, part: &[u8]) -> Self {
        for &b in (part.len() as u64).to_le_bytes().iter().chain(part.iter()) {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01B3);
        }
        self
    }

    /// Mixes one integer into the fingerprint.
    #[must_use]
    pub fn push_u64(self, value: u64) -> Self {
        self.push(&value.to_le_bytes())
    }

    /// The finished 64-bit fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// An append-only log of completed sweep cells.
#[derive(Debug)]
pub struct SweepCheckpoint<T> {
    file: File,
    path: PathBuf,
    _payload: PhantomData<T>,
}

impl<T: CheckpointPayload> SweepCheckpoint<T> {
    /// Opens (or creates) the checkpoint at `path` for a sweep identified
    /// by `fingerprint`, returning the handle plus every `(index, value)`
    /// already completed.
    ///
    /// A file with a different fingerprint, kind or corrupt header is
    /// restarted from scratch; a corrupt record tail is truncated at the
    /// last good record (both are recovery, not errors).
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] on filesystem failures and
    /// [`HarnessError::Checkpoint`] when the path exists but cannot be
    /// restarted.
    pub fn open(path: &Path, fingerprint: u64) -> Result<(Self, Vec<(usize, T)>), HarnessError> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| HarnessError::io(parent, e))?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| HarnessError::io(path, e))?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| HarnessError::io(path, e))?;

        let (completed, good_len) = parse_log::<T>(&bytes, fingerprint);
        if completed.is_empty() && good_len == 0 {
            // Fresh, stale or unusable: restart the log.
            file.set_len(0).map_err(|e| HarnessError::io(path, e))?;
            write_header::<T>(&mut file, fingerprint).map_err(|e| HarnessError::io(path, e))?;
        } else if (good_len as u64) < bytes.len() as u64 {
            // Torn tail: drop it, keep the good prefix.
            file.set_len(good_len as u64)
                .map_err(|e| HarnessError::io(path, e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| HarnessError::io(path, e))?;
        Ok((
            SweepCheckpoint {
                file,
                path: path.to_path_buf(),
                _payload: PhantomData,
            },
            completed,
        ))
    }

    /// Appends one completed cell and flushes it to disk.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] if the append fails; the file then
    /// has, at worst, a torn tail that the next [`open`](Self::open)
    /// truncates.
    pub fn record(&mut self, index: usize, value: &T) -> Result<(), HarnessError> {
        let mut payload = Vec::new();
        value.encode(&mut payload);
        debug_assert!(payload.len() < MAX_PAYLOAD as usize);
        let mut record = Vec::with_capacity(12 + payload.len());
        record.extend_from_slice(&(index as u32).to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        let crc = csp_trace::crc32c::checksum(&record);
        record.extend_from_slice(&crc.to_le_bytes());
        let wrap = |e| HarnessError::io(&self.path, e);
        self.file.write_all(&record).map_err(wrap)?;
        self.file.sync_data().map_err(wrap)
    }

    /// The checkpoint's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn write_header<T: CheckpointPayload>(w: &mut File, fingerprint: u64) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&T::KIND)?;
    w.write_all(&fingerprint.to_le_bytes())?;
    w.sync_data()
}

/// Parses a checkpoint log. Returns the completed cells and the byte
/// length of the valid prefix (0 when the header itself is unusable).
fn parse_log<T: CheckpointPayload>(bytes: &[u8], fingerprint: u64) -> (Vec<(usize, T)>, usize) {
    if bytes.len() < HEADER_LEN as usize
        || &bytes[..8] != MAGIC
        || bytes[8..12] != T::KIND
        || bytes[12..20] != fingerprint.to_le_bytes()
    {
        return (Vec::new(), 0);
    }
    let mut completed = Vec::new();
    let mut pos = HEADER_LEN as usize;
    while pos < bytes.len() {
        let Some(rest) = bytes.get(pos..) else { break };
        if rest.len() < 12 {
            break; // torn tail
        }
        let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_PAYLOAD {
            break;
        }
        let total = 8 + len as usize + 4;
        let Some(record) = rest.get(..total) else {
            break;
        };
        let (body, crc_bytes) = record.split_at(total - 4);
        let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        if csp_trace::crc32c::checksum(body) != stored {
            break;
        }
        let index = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
        let Some(value) = T::decode(&body[8..]) else {
            break;
        };
        completed.push((index, value));
        pos += total;
    }
    (completed, pos)
}

// ---------------------------------------------------------------------------
// Binary codec helpers.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Forward-only reader over a decode buffer.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let (head, tail) = self.bytes.split_at_checked(n)?;
        self.bytes = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn done(&self) -> bool {
        self.bytes.is_empty()
    }
}

fn put_matrix(out: &mut Vec<u8>, m: &ConfusionMatrix) {
    put_u64(out, m.tp);
    put_u64(out, m.fp);
    put_u64(out, m.tn);
    put_u64(out, m.fn_);
}

fn get_matrix(c: &mut Cursor) -> Option<ConfusionMatrix> {
    Some(ConfusionMatrix {
        tp: c.u64()?,
        fp: c.u64()?,
        tn: c.u64()?,
        fn_: c.u64()?,
    })
}

fn put_matrices(out: &mut Vec<u8>, ms: &[ConfusionMatrix]) {
    put_u32(out, ms.len() as u32);
    for m in ms {
        put_matrix(out, m);
    }
}

fn get_matrices(c: &mut Cursor) -> Option<Vec<ConfusionMatrix>> {
    let n = c.u32()?;
    if n > 4096 {
        return None; // implausible: refuse to allocate on corrupt lengths
    }
    (0..n).map(|_| get_matrix(c)).collect()
}

impl CheckpointPayload for SchemeStats {
    const KIND: [u8; 4] = *b"SCHM";

    fn encode(&self, out: &mut Vec<u8>) {
        // The scheme in the paper's notation: round-trips through the
        // validating parser, so corrupt bytes cannot build an invalid
        // scheme. The mean is derived state, recomputed on decode.
        let spec = self.scheme.to_string();
        put_u32(out, spec.len() as u32);
        out.extend_from_slice(spec.as_bytes());
        put_matrices(out, &self.per_benchmark);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut c = Cursor { bytes };
        let spec_len = c.u32()?;
        if spec_len > 256 {
            return None;
        }
        let spec = std::str::from_utf8(c.take(spec_len as usize)?).ok()?;
        let scheme: Scheme = spec.parse().ok()?;
        let per_benchmark = get_matrices(&mut c)?;
        if !c.done() {
            return None;
        }
        Some(SchemeStats::from_matrices(scheme, per_benchmark))
    }
}

impl CheckpointPayload for FamilyCell {
    const KIND: [u8; 4] = *b"FMLY";

    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(self.index.pid));
        out.push(self.index.pc_bits);
        out.push(u8::from(self.index.dir));
        out.push(self.index.addr_bits);
        out.push(match self.update {
            UpdateMode::Direct => 0,
            UpdateMode::Forwarded => 1,
            UpdateMode::Ordered => 2,
        });
        put_u32(out, self.per_benchmark.len() as u32);
        for f in &self.per_benchmark {
            put_matrices(out, &f.union);
            put_matrices(out, &f.inter);
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut c = Cursor { bytes };
        let pid = match c.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let pc_bits = c.u8()?;
        let dir = match c.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let addr_bits = c.u8()?;
        if pc_bits > IndexSpec::MAX_FIELD_BITS || addr_bits > IndexSpec::MAX_FIELD_BITS {
            return None;
        }
        let update = match c.u8()? {
            0 => UpdateMode::Direct,
            1 => UpdateMode::Forwarded,
            2 => UpdateMode::Ordered,
            _ => return None,
        };
        let benchmarks = c.u32()?;
        if benchmarks > 64 {
            return None;
        }
        let per_benchmark = (0..benchmarks)
            .map(|_| {
                Some(FamilyResult {
                    union: get_matrices(&mut c)?,
                    inter: get_matrices(&mut c)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        if !c.done() {
            return None;
        }
        Some(FamilyCell {
            index: IndexSpec::new(pid, pc_bits, dir, addr_bits),
            update,
            per_benchmark,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("csp-ckpt-test-{tag}-{}.bin", std::process::id()))
    }

    fn sample_stats(depth: usize) -> SchemeStats {
        let scheme: Scheme = format!("union(pid+pc8){depth}[forwarded]").parse().unwrap();
        let matrices = (0..7)
            .map(|i| ConfusionMatrix {
                tp: i + depth as u64,
                fp: 2 * i,
                tn: 100 - i,
                fn_: i / 2,
            })
            .collect();
        SchemeStats::from_matrices(scheme, matrices)
    }

    fn assert_same(a: &SchemeStats, b: &SchemeStats) {
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(a.per_benchmark, b.per_benchmark);
        assert_eq!(a.mean.pvp.to_bits(), b.mean.pvp.to_bits());
        assert_eq!(a.mean.sensitivity.to_bits(), b.mean.sensitivity.to_bits());
    }

    #[test]
    fn payload_roundtrip_scheme_stats() {
        let stats = sample_stats(3);
        let mut buf = Vec::new();
        stats.encode(&mut buf);
        let back = SchemeStats::decode(&buf).expect("decode");
        assert_same(&stats, &back);
    }

    #[test]
    fn payload_roundtrip_family_cell() {
        let cell = FamilyCell {
            index: IndexSpec::new(true, 6, false, 2),
            update: UpdateMode::Ordered,
            per_benchmark: vec![FamilyResult {
                union: vec![ConfusionMatrix {
                    tp: 1,
                    fp: 2,
                    tn: 3,
                    fn_: 4,
                }],
                inter: vec![ConfusionMatrix::default()],
            }],
        };
        let mut buf = Vec::new();
        cell.encode(&mut buf);
        let back = FamilyCell::decode(&buf).expect("decode");
        assert_eq!(back.index, cell.index);
        assert_eq!(back.update, cell.update);
        assert_eq!(back.per_benchmark, cell.per_benchmark);
    }

    #[test]
    fn corrupt_payload_decodes_to_none_not_panic() {
        let stats = sample_stats(2);
        let mut buf = Vec::new();
        stats.encode(&mut buf);
        for i in 0..buf.len() {
            let mut mutated = buf.clone();
            mutated[i] ^= 0xA5;
            let _ = SchemeStats::decode(&mutated); // must not panic
        }
        assert!(SchemeStats::decode(&[]).is_none());
        assert!(FamilyCell::decode(&[1, 2, 3]).is_none());
    }

    #[test]
    fn open_record_reopen_resumes() {
        let path = temp_path("resume");
        let _ = std::fs::remove_file(&path);
        let fp = Fingerprint::new("test").push_u64(42).finish();
        {
            let (mut ckpt, done) = SweepCheckpoint::<SchemeStats>::open(&path, fp).unwrap();
            assert!(done.is_empty());
            ckpt.record(0, &sample_stats(1)).unwrap();
            ckpt.record(5, &sample_stats(2)).unwrap();
        }
        let (_, done) = SweepCheckpoint::<SchemeStats>::open(&path, fp).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].0, 0);
        assert_eq!(done[1].0, 5);
        assert_same(&done[1].1, &sample_stats(2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_restarts() {
        let path = temp_path("stale");
        let _ = std::fs::remove_file(&path);
        {
            let (mut ckpt, _) = SweepCheckpoint::<SchemeStats>::open(&path, 1).unwrap();
            ckpt.record(0, &sample_stats(1)).unwrap();
        }
        let (_, done) = SweepCheckpoint::<SchemeStats>::open(&path, 2).unwrap();
        assert!(done.is_empty(), "stale checkpoint must not resume");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_clean_prefix_survives() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut ckpt, _) = SweepCheckpoint::<SchemeStats>::open(&path, 7).unwrap();
            ckpt.record(0, &sample_stats(1)).unwrap();
            ckpt.record(1, &sample_stats(2)).unwrap();
        }
        // Tear the last record in half.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut ckpt, done) = SweepCheckpoint::<SchemeStats>::open(&path, 7).unwrap();
        assert_eq!(done.len(), 1, "only the intact record survives");
        // The log keeps working after recovery.
        ckpt.record(1, &sample_stats(2)).unwrap();
        drop(ckpt);
        let (_, done) = SweepCheckpoint::<SchemeStats>::open(&path, 7).unwrap();
        assert_eq!(done.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_stops_replay_at_last_good() {
        let path = temp_path("bitrot");
        let _ = std::fs::remove_file(&path);
        {
            let (mut ckpt, _) = SweepCheckpoint::<SchemeStats>::open(&path, 9).unwrap();
            ckpt.record(0, &sample_stats(1)).unwrap();
            ckpt.record(1, &sample_stats(2)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 20] ^= 0xFF; // inside the second record
        std::fs::write(&path, &bytes).unwrap();
        let (_, done) = SweepCheckpoint::<SchemeStats>::open(&path, 9).unwrap();
        assert_eq!(done.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_separates_parts() {
        let a = Fingerprint::new("x").push(b"ab").push(b"c").finish();
        let b = Fingerprint::new("x").push(b"a").push(b"bc").finish();
        assert_ne!(a, b);
        assert_ne!(
            Fingerprint::new("x").finish(),
            Fingerprint::new("y").finish()
        );
    }
}
