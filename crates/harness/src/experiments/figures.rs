//! Figures 6–9: sensitivity and PVP across the 16 index configurations.

use crate::render::bar_chart;
use crate::runner::{evaluate_schemes, sweep_families, Suite};
use crate::space::{figure6_index_grid, figure8_index_grid};
use csp_core::{IndexSpec, PredictionFunction, Scheme, UpdateMode};

fn grid_labels(grid: &[IndexSpec]) -> Vec<String> {
    grid.iter()
        .map(|ix| {
            let s = ix.to_string();
            if s.is_empty() {
                "(none)".to_string()
            } else {
                s
            }
        })
        .collect()
}

/// Renders one figure: for each update mode, sensitivity and PVP bars over
/// the 16-point index grid, for a history-family function at `depth`.
fn history_figure(
    suite: &Suite,
    title: &str,
    function: PredictionFunction,
    depth: usize,
) -> String {
    let grid = figure6_index_grid();
    let labels = grid_labels(&grid);
    let mut out = String::new();
    for update in UpdateMode::ALL {
        let cells = sweep_families(suite, &grid, &[update], depth);
        let mut sens = Vec::with_capacity(grid.len());
        let mut pvp = Vec::with_capacity(grid.len());
        // sweep_families preserves index order for a single update mode.
        for cell in &cells {
            let m = cell.mean(function, depth);
            sens.push(m.sensitivity);
            pvp.push(m.pvp);
        }
        out.push_str(&bar_chart(
            &format!("{title} — {update} update"),
            &labels,
            &[("sens", sens), ("pvp", pvp)],
        ));
        out.push('\n');
    }
    out
}

/// Figure 6: intersection prediction, history depth 2, 16-bit max index.
pub fn fig6(suite: &Suite) -> String {
    history_figure(
        suite,
        "Figure 6: intersection prediction (depth 2, 16-bit max index)",
        PredictionFunction::Inter,
        2,
    )
}

/// Figure 7: union prediction, history depth 2, 16-bit max index.
pub fn fig7(suite: &Suite) -> String {
    history_figure(
        suite,
        "Figure 7: union prediction (depth 2, 16-bit max index)",
        PredictionFunction::Union,
        2,
    )
}

/// Figure 8: PAs prediction, history depth 1, 12-bit max index.
pub fn fig8(suite: &Suite) -> String {
    let grid = figure8_index_grid();
    let labels = grid_labels(&grid);
    let mut out = String::new();
    for update in UpdateMode::ALL {
        let schemes: Vec<Scheme> = grid
            .iter()
            .map(|&ix| Scheme::new(PredictionFunction::Pas, ix, 1, update))
            .collect();
        let stats = evaluate_schemes(suite, &schemes);
        let sens: Vec<f64> = stats.iter().map(|s| s.mean.sensitivity).collect();
        let pvp: Vec<f64> = stats.iter().map(|s| s.mean.pvp).collect();
        out.push_str(&bar_chart(
            &format!("Figure 8: PAs prediction (depth 1, 12-bit max index) — {update} update"),
            &labels,
            &[("sens", sens), ("pvp", pvp)],
        ));
        out.push('\n');
    }
    out
}

/// Figure 9: direct update, history depths 2 vs 4, for intersection,
/// union and PAs prediction.
pub fn fig9(suite: &Suite) -> String {
    let mut out = String::new();
    // Intersection and union share one depth-4 family sweep.
    let grid = figure6_index_grid();
    let labels = grid_labels(&grid);
    let cells = sweep_families(suite, &grid, &[UpdateMode::Direct], 4);
    for function in [PredictionFunction::Inter, PredictionFunction::Union] {
        let mut series: Vec<(&str, Vec<f64>)> = Vec::new();
        for (name_p, name_s, depth) in [("pvp(2)", "sens(2)", 2usize), ("pvp(4)", "sens(4)", 4)] {
            let mut pvp = Vec::new();
            let mut sens = Vec::new();
            for cell in &cells {
                let m = cell.mean(function, depth);
                pvp.push(m.pvp);
                sens.push(m.sensitivity);
            }
            series.push((name_p, pvp));
            series.push((name_s, sens));
        }
        out.push_str(&bar_chart(
            &format!("Figure 9 ({function}): direct update, depth 2 vs 4"),
            &labels,
            &series,
        ));
        out.push('\n');
    }
    // PAs on its 12-bit grid.
    let pas_grid = figure8_index_grid();
    let pas_labels = grid_labels(&pas_grid);
    let mut series: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name_p, name_s, depth) in [("pvp(2)", "sens(2)", 2usize), ("pvp(4)", "sens(4)", 4)] {
        let schemes: Vec<Scheme> = pas_grid
            .iter()
            .map(|&ix| Scheme::new(PredictionFunction::Pas, ix, depth, UpdateMode::Direct))
            .collect();
        let stats = evaluate_schemes(suite, &schemes);
        series.push((name_p, stats.iter().map(|s| s.mean.pvp).collect()));
        series.push((name_s, stats.iter().map(|s| s.mean.sensitivity).collect()));
    }
    out.push_str(&bar_chart(
        "Figure 9 (pas): direct update, depth 2 vs 4",
        &pas_labels,
        &series,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite() -> Suite {
        Suite::generate(0.02, 5)
    }

    #[test]
    fn fig6_renders_three_update_modes() {
        let out = fig6(&suite());
        assert!(out.contains("direct update"));
        assert!(out.contains("forwarded update"));
        assert!(out.contains("ordered update"));
        assert!(out.contains("pid+pc4+dir+add4"));
    }

    #[test]
    fn fig8_uses_12_bit_grid() {
        let out = fig8(&suite());
        assert!(out.contains("pid+pc2+dir+add2"));
    }

    #[test]
    fn fig9_has_all_three_functions() {
        let out = fig9(&suite());
        assert!(out.contains("(inter)"));
        assert!(out.contains("(union)"));
        assert!(out.contains("(pas)"));
        assert!(out.contains("pvp(4)"));
    }
}
