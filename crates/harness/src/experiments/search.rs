//! Tables 8–11: top-ten schemes from the full design-space search.

use crate::render::{rate, table};
use crate::runner::{sweep_families, SchemeStats, Suite};
use crate::space::DesignSpace;
use csp_core::{PredictionFunction, UpdateMode};

/// The four ranked tables produced by one design-space sweep.
#[derive(Clone, Debug)]
pub struct TopTables {
    /// Table 8: top-10 PVP, direct update.
    pub table8: String,
    /// Table 9: top-10 PVP, forwarded update.
    pub table9: String,
    /// Table 10: top-10 sensitivity, direct update.
    pub table10: String,
    /// Table 11: top-10 sensitivity, forwarded update.
    pub table11: String,
}

/// Runs the paper's full design-space search (Section 5.4: every
/// `union`/`inter` scheme up to 2^24 bits, direct and forwarded update)
/// and ranks the results by PVP and by sensitivity.
///
/// The sweep evaluates all depths of both families in one pass per
/// `(index, update, benchmark)` cell, in parallel.
pub fn top_tables(suite: &Suite) -> TopTables {
    top_tables_inner(suite, None).unwrap_or_else(|e| panic!("{e}"))
}

/// [`top_tables`] with a resumable checkpoint: the expensive family sweep
/// persists completed cells to `checkpoint` and a restarted run resumes
/// from it with bitwise-identical tables.
///
/// # Errors
///
/// Returns [`crate::error::HarnessError`] on checkpoint I/O failures or if
/// any sweep cell panicked twice.
pub fn top_tables_checkpointed(
    suite: &Suite,
    checkpoint: &std::path::Path,
) -> Result<TopTables, crate::error::HarnessError> {
    top_tables_inner(suite, Some(checkpoint))
}

fn top_tables_inner(
    suite: &Suite,
    checkpoint: Option<&std::path::Path>,
) -> Result<TopTables, crate::error::HarnessError> {
    let space = DesignSpace::paper();
    let max_depth = *space.depths.iter().max().expect("non-empty depths");
    let cells = match checkpoint {
        None => sweep_families(suite, &space.index_specs(), &space.updates, max_depth),
        Some(path) => crate::runner::sweep_families_checkpointed(
            suite,
            &space.index_specs(),
            &space.updates,
            max_depth,
            path,
        )?
        .into_complete()?,
    };

    // Materialize stats for every in-budget scheme. Depth 1 of inter
    // duplicates depth 1 of union (both are `last`); keep only the union
    // copy to avoid listing the same predictor twice.
    let mut all: Vec<SchemeStats> = Vec::new();
    for cell in &cells {
        for &f in &space.functions {
            for &d in &space.depths {
                if f == PredictionFunction::Inter && d == 1 {
                    continue;
                }
                let stats = cell.stats(f, d);
                if stats.size_log2() <= space.max_size_log2 {
                    all.push(stats);
                }
            }
        }
    }

    Ok(TopTables {
        table8: ranked(
            &all,
            UpdateMode::Direct,
            RankBy::Pvp,
            "Table 8: top 10 PVP, direct update",
        ),
        table9: ranked(
            &all,
            UpdateMode::Forwarded,
            RankBy::Pvp,
            "Table 9: top 10 PVP, forwarded update",
        ),
        table10: ranked(
            &all,
            UpdateMode::Direct,
            RankBy::Sensitivity,
            "Table 10: top 10 sensitivity, direct update",
        ),
        table11: ranked(
            &all,
            UpdateMode::Forwarded,
            RankBy::Sensitivity,
            "Table 11: top 10 sensitivity, forwarded update",
        ),
    })
}

#[derive(Clone, Copy, PartialEq)]
enum RankBy {
    Pvp,
    Sensitivity,
}

fn ranked(all: &[SchemeStats], update: UpdateMode, by: RankBy, title: &str) -> String {
    let mut filtered: Vec<&SchemeStats> =
        all.iter().filter(|s| s.scheme.update == update).collect();
    filtered.sort_by(|a, b| {
        let (ka, kb) = match by {
            RankBy::Pvp => (
                (a.mean.pvp, a.mean.sensitivity),
                (b.mean.pvp, b.mean.sensitivity),
            ),
            RankBy::Sensitivity => (
                (a.mean.sensitivity, a.mean.pvp),
                (b.mean.sensitivity, b.mean.pvp),
            ),
        };
        kb.partial_cmp(&ka).expect("rates are finite")
    });
    let rows: Vec<Vec<String>> = filtered
        .iter()
        .take(10)
        .map(|s| {
            vec![
                s.scheme.to_string(),
                s.size_log2().to_string(),
                rate(s.mean.prevalence),
                rate(s.mean.pvp),
                rate(s.mean.sensitivity),
            ]
        })
        .collect();
    table(title, &["scheme", "size", "prev", "pvp", "sens"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_tables_have_ten_rows_each() {
        let suite = Suite::generate(0.02, 5);
        let t = top_tables(&suite);
        for (name, tbl) in [
            ("t8", &t.table8),
            ("t9", &t.table9),
            ("t10", &t.table10),
            ("t11", &t.table11),
        ] {
            // Header (3 lines) + 10 ranked rows.
            assert_eq!(tbl.lines().count(), 13, "{name}:\n{tbl}");
        }
        // The paper's headline shapes: deep intersection wins PVP, deep
        // union wins sensitivity.
        assert!(
            t.table8.contains("inter("),
            "table 8 should be inter-dominated:\n{}",
            t.table8
        );
        assert!(
            t.table10.contains("union("),
            "table 10 should be union-dominated:\n{}",
            t.table10
        );
    }
}
