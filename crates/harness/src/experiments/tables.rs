//! Tables 3–7 of the paper.

use crate::render::{rate, table};
use crate::runner::{evaluate_schemes, Suite};
use csp_core::Scheme;
use csp_sim::SystemConfig;
use csp_workloads::Benchmark;

/// Table 3: benchmark input sizes (the paper's inputs and, since our
/// generators are scaled-down substitutes, the substitution note).
pub fn table3() -> String {
    let rows: Vec<Vec<String>> = Benchmark::ALL
        .iter()
        .map(|b| vec![b.name().to_string(), b.paper_input().to_string()])
        .collect();
    table(
        "Table 3: benchmark input size (paper inputs)",
        &["benchmark", "input"],
        &rows,
    )
}

/// Table 4: simulated system parameters.
pub fn table4() -> String {
    let c = SystemConfig::paper_16_node();
    let rows = vec![
        vec![
            "nodes".into(),
            format!(
                "{} (2-D torus {}x{})",
                c.nodes,
                c.torus_width,
                c.nodes / c.torus_width
            ),
        ],
        vec![
            "L1".into(),
            format!(
                "{}KB direct-mapped, {}-byte lines",
                c.l1.size_bytes / 1024,
                c.l1.line_size
            ),
        ],
        vec![
            "L2".into(),
            format!(
                "{}KB {}-way set-associative, {}-byte lines",
                c.l2.size_bytes / 1024,
                c.l2.associativity,
                c.l2.line_size
            ),
        ],
        vec![
            "local memory latency".into(),
            format!("{} cycles", c.latency.local_memory),
        ],
        vec![
            "remote memory latency".into(),
            format!("{} cycles", c.latency.remote_memory),
        ],
    ];
    table("Table 4: system parameters", &["parameter", "value"], &rows)
}

/// Table 5: store-instruction and cache-block statistics per benchmark.
pub fn table5(suite: &Suite) -> String {
    let rows: Vec<Vec<String>> = suite
        .traces()
        .iter()
        .map(|b| {
            let ts = b.trace.stats();
            vec![
                b.benchmark.name().to_string(),
                b.stats.max_static_stores_per_node.to_string(),
                ts.max_predicted_stores_per_node.to_string(),
                b.stats.lines_touched.to_string(),
                ts.store_misses.to_string(),
            ]
        })
        .collect();
    table(
        "Table 5: store instruction and cache block statistics",
        &[
            "benchmark",
            "max static stores/node",
            "max predicted stores/node",
            "blocks touched",
            "coherence store misses",
        ],
        &rows,
    )
}

/// Table 6: prevalence of sharing per benchmark.
pub fn table6(suite: &Suite) -> String {
    let mut rows: Vec<Vec<String>> = suite
        .traces()
        .iter()
        .map(|b| {
            let events = b.trace.dynamic_sharing_events();
            let decisions = b.trace.dynamic_sharing_decisions();
            vec![
                b.benchmark.name().to_string(),
                events.to_string(),
                decisions.to_string(),
                format!("{:.2}", b.trace.prevalence() * 100.0),
                format!("{:.2}", b.benchmark.paper_prevalence() * 100.0),
            ]
        })
        .collect();
    let mean: f64 = suite
        .traces()
        .iter()
        .map(|b| b.trace.prevalence())
        .sum::<f64>()
        / suite.traces().len() as f64;
    rows.push(vec![
        "mean".into(),
        String::new(),
        String::new(),
        format!("{:.2}", mean * 100.0),
        "9.19".into(),
    ]);
    table(
        "Table 6: prevalence of sharing",
        &[
            "benchmark",
            "sharing events",
            "sharing decisions",
            "prevalence %",
            "paper %",
        ],
        &rows,
    )
}

/// Table 7: schemes reported by earlier work, under both update modes.
pub fn table7(suite: &Suite) -> String {
    let specs: Vec<(&str, &str)> = vec![
        ("baseline-last", "last()1[direct]"),
        ("Kaxiras-instr.-last", "last(pid+pc8)1[direct]"),
        ("Kaxiras-instr.-inter.", "inter(pid+pc8)2[direct]"),
        ("Lai-address+pid-last", "last(pid+mem8)[direct]"),
        ("Kaxiras-instr.-last", "last(pid+pc8)1[forwarded]"),
        ("Kaxiras-instr.-inter.", "inter(pid+pc8)2[forwarded]"),
        ("Lai-address+pid-last", "last(pid+mem8)[forwarded]"),
    ];
    let schemes: Vec<Scheme> = specs
        .iter()
        .map(|(_, s)| s.parse().expect("valid scheme"))
        .collect();
    let stats = evaluate_schemes(suite, &schemes);
    let rows: Vec<Vec<String>> = specs
        .iter()
        .zip(&stats)
        .map(|((desc, _), st)| {
            vec![
                desc.to_string(),
                st.scheme.to_string(),
                st.size_log2().to_string(),
                rate(st.mean.sensitivity),
                rate(st.mean.pvp),
            ]
        })
        .collect();
    table(
        "Table 7: schemes reported by earlier work",
        &[
            "description",
            "scheme",
            "size log2(bits)",
            "sensitivity",
            "PVP",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite() -> Suite {
        Suite::generate(0.02, 5)
    }

    #[test]
    fn table5_has_seven_benchmarks() {
        let out = table5(&suite());
        for b in Benchmark::ALL {
            assert!(out.contains(b.name()), "missing {b}");
        }
    }

    #[test]
    fn table6_reports_decisions_as_events_times_16() {
        let s = suite();
        let out = table6(&s);
        let gauss = s.trace(Benchmark::Gauss);
        assert!(out.contains(&(gauss.trace.len() as u64 * 16).to_string()));
    }

    #[test]
    fn table7_contains_all_prior_schemes() {
        let out = table7(&suite());
        assert!(out.contains("baseline-last"));
        assert!(out.contains("last(pid+pc8)[direct]") || out.contains("last(pid+pc8)"));
        assert!(out.contains("inter(pid+pc8)2[forwarded]"));
    }
}
