//! One driver per table/figure of the paper, plus extension experiments.
//!
//! Every driver takes the shared [`Suite`] and returns a rendered
//! plain-text report. `EXPERIMENTS.md` at the repository root records the
//! paper-vs-measured comparison for each.

mod ext;
mod figures;
mod search;
mod tables;

pub use search::{top_tables, top_tables_checkpointed, TopTables};

use crate::Suite;

/// Identifier of one reproducible experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table 3: benchmark inputs.
    Table3,
    /// Table 4: simulated system parameters.
    Table4,
    /// Table 5: store-instruction and cache-block statistics.
    Table5,
    /// Table 6: prevalence of sharing.
    Table6,
    /// Table 7: schemes reported by earlier work.
    Table7,
    /// Table 8: top-10 PVP, direct update.
    Table8,
    /// Table 9: top-10 PVP, forwarded update.
    Table9,
    /// Table 10: top-10 sensitivity, direct update.
    Table10,
    /// Table 11: top-10 sensitivity, forwarded update.
    Table11,
    /// Figure 6: intersection prediction across the 16 index configs.
    Fig6,
    /// Figure 7: union prediction across the 16 index configs.
    Fig7,
    /// Figure 8: PAs prediction across the 16 index configs.
    Fig8,
    /// Figure 9: history depth 2 vs 4 for inter/union/PAs.
    Fig9,
    /// Extension A: the `overlap-last` function the paper names but does
    /// not simulate.
    ExtA,
    /// Extension C: forwarding latency/traffic estimate (the summary's
    /// bandwidth-latency trade-off, quantified).
    ExtC,
    /// Extension: history-depth ablation beyond the paper's depth 4.
    ExtDepth,
    /// Extension: addr/pc field-size ablation (Section 5.4.3's prose).
    ExtField,
    /// Extension: sticky-spatial prediction (footnote 2 / reference \[4\]).
    ExtSticky,
    /// Extension: confidence-gated prediction (reference \[11\]).
    ExtConfidence,
    /// Extension: Cosmos next-writer prediction (footnote 5 / ref \[24\]).
    ExtCosmos,
    /// Extension: Weber & Gupta invalidation-degree histogram (ref \[28\]).
    ExtDegree,
    /// Extension: per-benchmark breakdown with confidence intervals.
    ExtPerBench,
    /// Extension: machine-size scaling (4/16/64 nodes).
    ExtNodes,
}

impl ExperimentId {
    /// All experiments in presentation order.
    pub const ALL: [ExperimentId; 23] = [
        ExperimentId::Table3,
        ExperimentId::Table4,
        ExperimentId::Table5,
        ExperimentId::Table6,
        ExperimentId::Table7,
        ExperimentId::Table8,
        ExperimentId::Table9,
        ExperimentId::Table10,
        ExperimentId::Table11,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::ExtA,
        ExperimentId::ExtC,
        ExperimentId::ExtDepth,
        ExperimentId::ExtField,
        ExperimentId::ExtSticky,
        ExperimentId::ExtConfidence,
        ExperimentId::ExtCosmos,
        ExperimentId::ExtDegree,
        ExperimentId::ExtPerBench,
        ExperimentId::ExtNodes,
    ];

    /// The command-line name (`table8`, `fig6`, `extA`, ...).
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::Table3 => "table3",
            ExperimentId::Table4 => "table4",
            ExperimentId::Table5 => "table5",
            ExperimentId::Table6 => "table6",
            ExperimentId::Table7 => "table7",
            ExperimentId::Table8 => "table8",
            ExperimentId::Table9 => "table9",
            ExperimentId::Table10 => "table10",
            ExperimentId::Table11 => "table11",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::ExtA => "extA",
            ExperimentId::ExtC => "extC",
            ExperimentId::ExtDepth => "ext-depth",
            ExperimentId::ExtField => "ext-field",
            ExperimentId::ExtSticky => "ext-sticky",
            ExperimentId::ExtConfidence => "ext-confidence",
            ExperimentId::ExtCosmos => "ext-cosmos",
            ExperimentId::ExtDegree => "ext-degree",
            ExperimentId::ExtPerBench => "ext-per-bench",
            ExperimentId::ExtNodes => "ext-nodes",
        }
    }

    /// Parses a command-line experiment name.
    pub fn from_name(name: &str) -> Option<ExperimentId> {
        ExperimentId::ALL.iter().copied().find(|e| e.name() == name)
    }

    /// Runs the experiment and renders its report.
    ///
    /// Note: Tables 8–11 share one design-space sweep; when running
    /// several of them, prefer [`top_tables`] which computes the sweep
    /// once.
    pub fn run(self, suite: &Suite) -> String {
        match self {
            ExperimentId::Table3 => tables::table3(),
            ExperimentId::Table4 => tables::table4(),
            ExperimentId::Table5 => tables::table5(suite),
            ExperimentId::Table6 => tables::table6(suite),
            ExperimentId::Table7 => tables::table7(suite),
            ExperimentId::Table8 => top_tables(suite).table8,
            ExperimentId::Table9 => top_tables(suite).table9,
            ExperimentId::Table10 => top_tables(suite).table10,
            ExperimentId::Table11 => top_tables(suite).table11,
            ExperimentId::Fig6 => figures::fig6(suite),
            ExperimentId::Fig7 => figures::fig7(suite),
            ExperimentId::Fig8 => figures::fig8(suite),
            ExperimentId::Fig9 => figures::fig9(suite),
            ExperimentId::ExtA => ext::overlap_last(suite),
            ExperimentId::ExtC => ext::forwarding(suite),
            ExperimentId::ExtDepth => ext::depth_ablation(suite),
            ExperimentId::ExtField => ext::field_size_ablation(suite),
            ExperimentId::ExtSticky => ext::sticky_spatial(suite),
            ExperimentId::ExtConfidence => ext::confidence(suite),
            ExperimentId::ExtCosmos => ext::cosmos(suite),
            ExperimentId::ExtDegree => ext::degree_histogram(suite),
            ExperimentId::ExtPerBench => ext::per_benchmark(suite),
            ExperimentId::ExtNodes => ext::node_scaling(suite),
        }
    }
}

impl std::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for e in ExperimentId::ALL {
            assert_eq!(ExperimentId::from_name(e.name()), Some(e));
        }
        assert_eq!(ExperimentId::from_name("table99"), None);
    }

    #[test]
    fn static_tables_render_without_suite_data() {
        let out3 = tables::table3();
        assert!(out3.contains("barnes"));
        let out4 = tables::table4();
        assert!(out4.contains("512"));
    }
}
