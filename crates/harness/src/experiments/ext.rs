//! Extension experiments beyond the paper's evaluation (see DESIGN.md).

use crate::render::{rate, table};
use crate::runner::{evaluate_schemes, sweep_families, Suite};
use csp_core::{engine, IndexSpec, PredictionFunction, Scheme, UpdateMode};
use csp_sim::{forwarding, SystemConfig};
use csp_workloads::Benchmark;

/// Extension A: the `overlap-last` update function the paper names in
/// Section 3.5 ("for space reasons, we do not simulate the overlap-last
/// predictor in this paper") — compared against plain `last` and `inter`
/// at the same index.
pub fn overlap_last(suite: &Suite) -> String {
    let specs = [
        "last(pid+pc8)1[direct]",
        "overlap-last(pid+pc8)[direct]",
        "inter(pid+pc8)2[direct]",
        "last(pid+pc8)1[forwarded]",
        "overlap-last(pid+pc8)[forwarded]",
        "inter(pid+pc8)2[forwarded]",
    ];
    let schemes: Vec<Scheme> = specs
        .iter()
        .map(|s| s.parse().expect("valid scheme"))
        .collect();
    let stats = evaluate_schemes(suite, &schemes);
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.scheme.to_string(),
                s.size_log2().to_string(),
                rate(s.mean.sensitivity),
                rate(s.mean.pvp),
            ]
        })
        .collect();
    table(
        "Extension A: overlap-last vs last vs inter (Kaxiras & Goodman's guarded last)",
        &["scheme", "size", "sensitivity", "PVP"],
        &rows,
    )
}

/// Extension C: the bandwidth-latency trade-off of the paper's summary,
/// quantified with the Koufaty-style forwarding estimator: a high-PVP
/// scheme, a high-sensitivity scheme, and the baseline, priced in saved
/// miss latency and injected torus traffic.
pub fn forwarding(suite: &Suite) -> String {
    let schemes: Vec<(&str, Scheme)> = vec![
        (
            "high-PVP",
            "inter(pid+add6)4[direct]".parse().expect("valid"),
        ),
        (
            "high-sens",
            "union(dir+add14)4[direct]".parse().expect("valid"),
        ),
        ("baseline", Scheme::baseline_last()),
    ];
    let config = SystemConfig::paper_16_node();
    let mut rows = Vec::new();
    for bench in [Benchmark::Em3d, Benchmark::Unstruct, Benchmark::Mp3d] {
        let trace = &suite.trace(bench).trace;
        for (label, scheme) in &schemes {
            let preds = engine::predictions_for(trace, scheme);
            let report = forwarding::estimate(trace, &preds, &config);
            let links = forwarding::link_analysis(trace, &preds, &config);
            rows.push(vec![
                bench.name().to_string(),
                (*label).to_string(),
                report.useful_forwards.to_string(),
                report.wasted_forwards.to_string(),
                format!("{:.1}%", report.latency_saved_fraction() * 100.0),
                format!("{:+}", report.net_traffic_hops()),
                format!("{:.2}x", links.hotspot_factor()),
            ]);
        }
    }
    table(
        "Extension C: forwarding benefit estimate (latency saved vs traffic added)",
        &[
            "benchmark",
            "scheme",
            "useful fwd",
            "wasted fwd",
            "latency saved",
            "net hop-msgs",
            "hotspot",
        ],
        &rows,
    )
}

/// Extension: history-depth ablation 1..8 — does the paper's depth-4 cap
/// leave accuracy on the table? (Section 5.4.3 studies only 2 vs 4.)
pub fn depth_ablation(suite: &Suite) -> String {
    let ix = IndexSpec::new(true, 0, false, 6); // the Table 8 winner's index
    let max_depth = csp_core::MAX_DEPTH;
    let cells = sweep_families(suite, &[ix], &[UpdateMode::Direct], max_depth);
    let cell = &cells[0];
    let mut rows = Vec::new();
    for d in 1..=max_depth {
        let u = cell.mean(PredictionFunction::Union, d);
        let i = cell.mean(PredictionFunction::Inter, d);
        rows.push(vec![
            d.to_string(),
            rate(u.sensitivity),
            rate(u.pvp),
            rate(i.sensitivity),
            rate(i.pvp),
        ]);
    }
    table(
        "Extension: history depth 1..8 at pid+add6, direct update",
        &[
            "depth",
            "union sens",
            "union pvp",
            "inter sens",
            "inter pvp",
        ],
        &rows,
    )
}

/// Extension: addr field-size ablation, backing Section 5.4.3's prose
/// ("for intersection prediction, sensitivity increases and PVP decreases
/// with larger addr fields; the opposite holds for union").
pub fn field_size_ablation(suite: &Suite) -> String {
    let widths: Vec<u8> = vec![0, 2, 4, 6, 8, 10, 12, 14, 16];
    let indexes: Vec<IndexSpec> = widths
        .iter()
        .map(|&w| IndexSpec::new(true, 0, false, w))
        .collect();
    let cells = sweep_families(suite, &indexes, &[UpdateMode::Direct], 4);
    let mut rows = Vec::new();
    for (w, cell) in widths.iter().zip(&cells) {
        let u = cell.mean(PredictionFunction::Union, 4);
        let i = cell.mean(PredictionFunction::Inter, 4);
        rows.push(vec![
            format!("pid+add{w}"),
            rate(u.sensitivity),
            rate(u.pvp),
            rate(i.sensitivity),
            rate(i.pvp),
        ]);
    }
    table(
        "Extension: addr field width sweep (depth 4, direct update)",
        &[
            "index",
            "union sens",
            "union pvp",
            "inter sens",
            "inter pvp",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite() -> Suite {
        Suite::generate(0.02, 5)
    }

    #[test]
    fn overlap_last_table_renders() {
        let out = overlap_last(&suite());
        assert!(out.contains("overlap-last(pid+pc8)[direct]"));
    }

    #[test]
    fn forwarding_covers_three_schemes() {
        let out = forwarding(&suite());
        assert!(out.contains("high-PVP"));
        assert!(out.contains("high-sens"));
        assert!(out.contains("baseline"));
    }

    #[test]
    fn depth_ablation_lists_all_depths() {
        let out = depth_ablation(&suite());
        for d in 1..=csp_core::MAX_DEPTH {
            assert!(
                out.lines().any(|l| l.starts_with(&d.to_string())),
                "missing depth {d}"
            );
        }
    }

    #[test]
    fn field_sweep_covers_all_widths() {
        let out = field_size_ablation(&suite());
        assert!(out.contains("pid+add16"));
        assert!(out.contains("pid+add0") || out.contains("pid "));
    }

    #[test]
    fn sticky_table_compares_radii_and_baselines() {
        let out = sticky_spatial(&suite());
        assert!(out.contains("sticky(add16, r=0)"));
        assert!(out.contains("sticky(add16, r=2)"));
        assert!(out.contains("last(add16)[direct]") || out.contains("last(add16)"));
    }

    #[test]
    fn confidence_ladder_has_all_thresholds() {
        let out = confidence(&suite());
        for t in 0..=csp_core::confidence::MAX_CONFIDENCE {
            assert!(
                out.contains(&format!("threshold {t}")),
                "missing threshold {t}"
            );
        }
    }

    #[test]
    fn cosmos_covers_all_benchmarks() {
        let out = cosmos(&suite());
        for b in Benchmark::ALL {
            assert!(out.contains(b.name()), "missing {b}");
        }
    }

    #[test]
    fn degree_histogram_percentages_present() {
        let out = degree_histogram(&suite());
        assert!(out.contains("mean degree"));
        assert!(out.lines().count() > 9);
    }
}

/// Extension: sticky-spatial prediction (paper footnote 2 / reference \[4\])
/// vs last/union at matched address indexing.
pub fn sticky_spatial(suite: &Suite) -> String {
    use csp_core::sticky::StickySpatial;
    let mut rows = Vec::new();
    for (label, radius) in [
        ("sticky(add16, r=0)", 0u64),
        ("sticky(add16, r=1)", 1),
        ("sticky(add16, r=2)", 2),
    ] {
        let per: Vec<csp_metrics::Screening> = suite
            .traces()
            .iter()
            .map(|b| StickySpatial::new(16, radius).run(&b.trace).screening())
            .collect();
        let m = csp_metrics::Screening::mean(&per).expect("non-empty suite");
        rows.push(vec![
            label.to_string(),
            StickySpatial::new(16, radius)
                .size_log2_bits(16)
                .to_string(),
            rate(m.sensitivity),
            rate(m.pvp),
        ]);
    }
    for spec in [
        "last(add16)1[direct]",
        "union(add16)2[direct]",
        "union(add16)4[direct]",
    ] {
        let st = crate::runner::evaluate_scheme(suite, &spec.parse().expect("valid scheme"));
        rows.push(vec![
            spec.to_string(),
            st.size_log2().to_string(),
            rate(st.mean.sensitivity),
            rate(st.mean.pvp),
        ]);
    }
    table(
        "Extension: sticky-spatial prediction (Bilir et al.) vs address-based history",
        &["scheme", "size", "sensitivity", "PVP"],
        &rows,
    )
}

/// Extension: confidence gating (Grunwald et al., the paper's reference
/// [11]) — one base scheme, four confidence thresholds, the
/// sensitivity-for-PVP knob.
pub fn confidence(suite: &Suite) -> String {
    use csp_core::confidence::run_with_confidence;
    let scheme: Scheme = "union(pid+pc8)2[direct]".parse().expect("valid scheme");
    let mut rows = Vec::new();
    for threshold in 0..=csp_core::confidence::MAX_CONFIDENCE {
        let per: Vec<csp_metrics::Screening> = suite
            .traces()
            .iter()
            .map(|b| run_with_confidence(&b.trace, &scheme, threshold).screening())
            .collect();
        let m = csp_metrics::Screening::mean(&per).expect("non-empty suite");
        rows.push(vec![
            format!("threshold {threshold}"),
            rate(m.sensitivity),
            rate(m.pvp),
        ]);
    }
    table(
        "Extension: confidence-gated union(pid+pc8)2 (Grunwald-style estimator)",
        &["gate", "sensitivity", "PVP"],
        &rows,
    )
}

/// Extension: Cosmos-style next-writer prediction (Mukherjee & Hill, the
/// paper's reference \[24\]; footnote 5) per benchmark — the complementary
/// question reader-bitmap predictors cannot answer on migratory sharing.
pub fn cosmos(suite: &Suite) -> String {
    use csp_core::cosmos::Cosmos;
    let mut rows = Vec::new();
    for b in suite.traces() {
        for depth in [1usize, 2] {
            let report = Cosmos::new(16, depth).run(&b.trace);
            rows.push(vec![
                b.benchmark.name().to_string(),
                depth.to_string(),
                format!("{:.1}%", report.accuracy() * 100.0),
                format!("{:.1}%", report.coverage() * 100.0),
            ]);
        }
    }
    table(
        "Extension: Cosmos next-writer prediction (accuracy of guessing the next writer)",
        &["benchmark", "history", "accuracy", "coverage"],
        &rows,
    )
}

/// Extension: Weber & Gupta invalidation-degree histogram (the paper's
/// reference \[28\]) — how many readers each write interval really has.
pub fn degree_histogram(suite: &Suite) -> String {
    let mut rows = Vec::new();
    for b in suite.traces() {
        let hist = b.trace.sharing_degree_histogram();
        let total: u64 = hist.iter().sum();
        let pct = |k: usize| format!("{:.1}", hist[k] as f64 / total as f64 * 100.0);
        let four_plus: u64 = hist[4..].iter().sum();
        rows.push(vec![
            b.benchmark.name().to_string(),
            pct(0),
            pct(1),
            pct(2),
            pct(3),
            format!("{:.1}", four_plus as f64 / total as f64 * 100.0),
            format!("{:.2}", b.trace.prevalence() * 16.0),
        ]);
    }
    table(
        "Extension: invalidation degree distribution (% of events with k true readers)",
        &["benchmark", "0", "1", "2", "3", "4+", "mean degree"],
        &rows,
    )
}

/// Extension: per-benchmark breakdown of canonical schemes with Wilson
/// 95% confidence intervals — the per-benchmark visibility the paper's
/// aggregate figures hide, with the measurement-precision analysis its
/// Section 5.3 (after Gastwirth) calls for.
pub fn per_benchmark(suite: &Suite) -> String {
    use csp_metrics::compare::wilson_interval;
    let specs = [
        "last(pid+pc8)1[direct]",
        "inter(pid+add6)4[direct]",
        "union(dir+add14)4[direct]",
        "pas(pid+add4)2[direct]",
    ];
    let mut rows = Vec::new();
    for spec in specs {
        let st = crate::runner::evaluate_scheme(suite, &spec.parse().expect("valid scheme"));
        for (i, b) in Benchmark::ALL.iter().enumerate() {
            let m = st.per_benchmark[i];
            let s = m.screening();
            let (pvp_lo, pvp_hi) = wilson_interval(m.tp, m.predicted_positives());
            let (sens_lo, sens_hi) = wilson_interval(m.tp, m.actual_positives());
            rows.push(vec![
                spec.to_string(),
                b.name().to_string(),
                format!("{:.3} [{:.3},{:.3}]", s.pvp, pvp_lo, pvp_hi),
                format!("{:.3} [{:.3},{:.3}]", s.sensitivity, sens_lo, sens_hi),
            ]);
        }
        rows.push(vec![
            spec.to_string(),
            "(mean)".to_string(),
            rate(st.mean.pvp),
            rate(st.mean.sensitivity),
        ]);
    }
    table(
        "Extension: per-benchmark breakdown with Wilson 95% intervals",
        &[
            "scheme",
            "benchmark",
            "PVP [95% CI]",
            "sensitivity [95% CI]",
        ],
        &rows,
    )
}

/// Extension: machine-size scaling. The paper fixes N = 16; here a
/// parametric producer-consumer + migratory workload runs on 4-, 16- and
/// 64-node machines to show how the prevalence bound and predictor
/// accuracy move with scale (reader sets stay small in absolute terms, so
/// prevalence — and with it the attainable benefit per decision — falls
/// as 1/N while PVP of stable schemes holds).
pub fn node_scaling(_suite: &Suite) -> String {
    use csp_sim::{CacheConfig, MemAccess, MemorySystem, Protocol, SystemConfig};
    use csp_trace::NodeId;

    let mut rows = Vec::new();
    for (nodes, width) in [(4usize, 2usize), (16, 4), (64, 8)] {
        // A fixed-structure workload scaled to the machine: each node owns
        // 80 lines read by 2 fixed partners, plus 40 migratory lines.
        let mut accesses: Vec<MemAccess> = Vec::new();
        let pc_lines: u64 = 80 * nodes as u64;
        let mig_lines: u64 = 40 * nodes as u64;
        let partner = |owner: u64, k: u64| NodeId(((owner + k) % nodes as u64) as u8);
        // Init (first touch by owner).
        for l in 0..pc_lines + mig_lines {
            let owner = NodeId((l % nodes as u64) as u8);
            accesses.push(MemAccess::write(owner, 1, (256 + l) * 64));
        }
        let mut state = 0x9E37u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..12 {
            for l in 0..pc_lines {
                let owner = l % nodes as u64;
                let addr = (256 + l) * 64;
                accesses.push(MemAccess::write(NodeId(owner as u8), 2, addr));
                accesses.push(MemAccess::read(partner(owner, 1), 3, addr + 8));
                accesses.push(MemAccess::read(partner(owner, 2), 3, addr + 16));
            }
            for l in pc_lines..pc_lines + mig_lines {
                let addr = (256 + l) * 64;
                let visitor = NodeId((rand() % nodes as u64) as u8);
                accesses.push(MemAccess::read(visitor, 4, addr));
                accesses.push(MemAccess::write(visitor, 5, addr));
            }
        }
        let config = SystemConfig {
            nodes,
            l1: CacheConfig::new(16 * 1024, 1, 64),
            l2: CacheConfig::new(512 * 1024, 4, 64),
            latency: Default::default(),
            torus_width: width,
            replacement_hints: true,
            protocol: Protocol::Msi,
        };
        let mut sys = MemorySystem::new(config);
        sys.run(accesses);
        let (trace, _) = sys.finish();
        let scheme: Scheme = "inter(pid+add6)2[direct]".parse().expect("valid scheme");
        let s = engine::run_scheme(&trace, &scheme).screening();
        rows.push(vec![
            nodes.to_string(),
            trace.len().to_string(),
            format!("{:.2}%", trace.prevalence() * 100.0),
            format!("{:.2}", trace.prevalence() * nodes as f64),
            rate(s.pvp),
            rate(s.sensitivity),
        ]);
    }
    table(
        "Extension: machine-size scaling (fixed per-node sharing structure)",
        &[
            "nodes",
            "events",
            "prevalence",
            "mean degree",
            "inter2 pvp",
            "inter2 sens",
        ],
        &rows,
    )
}

#[cfg(test)]
mod scaling_tests {
    use super::*;

    #[test]
    fn node_scaling_reports_three_machine_sizes() {
        let suite = Suite::generate(0.02, 5);
        let out = node_scaling(&suite);
        for n in ["4 ", "16 ", "64 "] {
            assert!(
                out.lines().any(|l| l.starts_with(n)),
                "missing row for {n} nodes:\n{out}"
            );
        }
    }

    #[test]
    fn per_benchmark_has_confidence_intervals() {
        let suite = Suite::generate(0.02, 5);
        let out = per_benchmark(&suite);
        assert!(out.contains('['), "expected intervals in:\n{out}");
        assert!(out.contains("(mean)"));
    }
}
