//! Execution-engine adapters for the benchmark barometer (`csp-bar`).
//!
//! The repo grew several distinct ways to score a scheme over a trace:
//! the frozen naive evaluator (per-call resolution, hashed tables), the
//! prepared single-pass path (shared resolutions and key streams), its
//! SIMD-batched sibling (arena tables, vectorized confusion counting),
//! and the sharded online serving engine (per-key routing over worker
//! threads). This module puts them behind one [`Engine`] trait and a
//! data-driven registry ([`ENGINE_SPECS`]) so the barometer can
//! enumerate a (workload x scheme x engine) matrix declaratively — and,
//! crucially, so every engine's screening statistics can be
//! cross-checked for bit-identity before any timing number is trusted.
//!
//! Engines here evaluate one *cell* — a `(benchmark trace, scheme)`
//! pair — to a [`ConfusionMatrix`]. Timing policy (warmup passes, timed
//! iterations, quantiles) lives with the caller; the adapters only
//! guarantee that each call performs the full end-to-end evaluation the
//! engine would pay in production, nothing cached across calls beyond
//! what the engine's own architecture shares (the prepared engine's key
//! streams are its architecture; the sharded engine's persistent worker
//! pool is its architecture too — see [`ShardedServeEngine`]).

use csp_core::engine::{run_scheme, run_scheme_prepared};
use csp_core::{run_scheme_simd, PreparedTrace, Scheme};
use csp_metrics::ConfusionMatrix;
use csp_serve::ShardPool;
use csp_workloads::BenchmarkTrace;
use std::fmt;
use std::sync::Mutex;

/// One (workload, scheme) evaluation cell, with both the raw trace and
/// its prepared twin so each engine can consume its natural input.
pub struct EngineCell<'a> {
    /// The benchmark trace the cell evaluates.
    pub bench: &'a BenchmarkTrace,
    /// The prepared view of the same trace (actuals resolved once, key
    /// streams shared) for engines built on the prepared layer.
    pub prepared: &'a PreparedTrace<'a>,
    /// The scheme under evaluation.
    pub scheme: Scheme,
}

impl EngineCell<'_> {
    /// Decisions one evaluation of this cell scores.
    pub fn events(&self) -> u64 {
        self.bench.trace.len() as u64
    }
}

/// A predictor execution engine the barometer can time.
///
/// Implementations must be deterministic: two calls on the same cell
/// return bit-identical confusion matrices. [`cross_check`] relies on
/// this to promote the naive evaluator into an equivalence oracle for
/// every other engine.
pub trait Engine: Sync {
    /// Stable lowercase name, used in definitions files and records.
    fn name(&self) -> &'static str;
    /// Evaluates one cell end to end, returning its screening counts.
    fn eval(&self, cell: &EngineCell<'_>) -> ConfusionMatrix;
}

/// The frozen-naive reference evaluator: per-call ground-truth
/// resolution, per-event key derivation, hashed create-on-update tables.
pub struct NaiveEngine;

impl Engine for NaiveEngine {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn eval(&self, cell: &EngineCell<'_>) -> ConfusionMatrix {
        run_scheme(&cell.bench.trace, &cell.scheme)
    }
}

/// The prepared single-pass path (PR 3): resolutions and key streams
/// shared through [`PreparedTrace`], one-probe slot-indexed tables.
pub struct PreparedEngine;

impl Engine for PreparedEngine {
    fn name(&self) -> &'static str {
        "prepared"
    }

    fn eval(&self, cell: &EngineCell<'_>) -> ConfusionMatrix {
        run_scheme_prepared(cell.prepared, &cell.scheme)
    }
}

/// The SIMD-batched prepared path (PR 8): flat open-addressing arena
/// tables, slot-major history windows, and confusion counts accumulated
/// in 8-wide popcount batches (AVX2 when the host has it, bit-identical
/// scalar fallback otherwise — see [`csp_core::simd`]).
pub struct SimdEngine;

impl Engine for SimdEngine {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn eval(&self, cell: &EngineCell<'_>) -> ConfusionMatrix {
        run_scheme_simd(cell.prepared, &cell.scheme)
    }
}

/// The in-process sharded serving engine (`csp-serve`): per-key routing
/// over worker threads with bounded-channel backpressure. The adapter
/// holds a persistent [`ShardPool`] — worker threads live for the whole
/// benchmark matrix and each eval re-tasks them with a fresh session,
/// so the measured region is routing, channel, and apply cost (the
/// steady state of a running service), not thread spawn/join. Bounded
/// inboxes still backpressure inside the measurement.
pub struct ShardedServeEngine {
    pool: Mutex<ShardPool>,
}

impl ShardedServeEngine {
    /// Creates the adapter with a persistent pool of `shards` workers.
    pub fn new(shards: usize) -> Self {
        ShardedServeEngine {
            pool: Mutex::new(ShardPool::new(shards)),
        }
    }
}

impl Engine for ShardedServeEngine {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn eval(&self, cell: &EngineCell<'_>) -> ConfusionMatrix {
        let pool = self.pool.lock().expect("no panic holds the pool lock");
        pool.replay_prepared(cell.prepared, &cell.scheme)
    }
}

/// One registry row: a definitions-file name and how to build its
/// adapter (`shards` is meaningful only to the sharded engine; the
/// others ignore it).
pub struct EngineSpec {
    /// Stable lowercase name, as written in `benchmarks.bar`.
    pub name: &'static str,
    /// Builds the adapter; the argument is the configured shard count.
    pub build: fn(usize) -> Box<dyn Engine>,
}

/// The engine registry, in canonical order (the naive reference first —
/// it is the ratio denominator). Adding an engine means adding a row
/// here; name lookup, [`ENGINE_NAMES`], and the barometer's validation
/// all follow from it.
pub const ENGINE_SPECS: [EngineSpec; 4] = [
    EngineSpec {
        name: "naive",
        build: |_| Box::new(NaiveEngine),
    },
    EngineSpec {
        name: "prepared",
        build: |_| Box::new(PreparedEngine),
    },
    EngineSpec {
        name: "simd",
        build: |_| Box::new(SimdEngine),
    },
    EngineSpec {
        name: "sharded",
        build: |shards| Box::new(ShardedServeEngine::new(shards)),
    },
];

/// Names of every engine [`engine_by_name`] can construct, in registry
/// order. (A const mirror of [`ENGINE_SPECS`] so definitions-file
/// validation can borrow it without building adapters; a test pins the
/// two in sync.)
pub const ENGINE_NAMES: [&str; 4] = ["naive", "prepared", "simd", "sharded"];

/// Constructs an engine adapter by its definitions-file name.
pub fn engine_by_name(name: &str, shards: usize) -> Option<Box<dyn Engine>> {
    ENGINE_SPECS
        .iter()
        .find(|spec| spec.name == name)
        .map(|spec| (spec.build)(shards))
}

/// Two engines disagreeing on a cell's screening statistics — a
/// correctness bug that must halt any benchmark before a single timing
/// is recorded.
#[derive(Clone, Debug)]
pub struct EngineDivergence {
    /// The engine that diverged from the reference.
    pub engine: String,
    /// The reference engine it was compared against.
    pub reference: String,
    /// The benchmark the cell evaluated.
    pub workload: String,
    /// The scheme the cell evaluated.
    pub scheme: Scheme,
    /// What the diverging engine counted.
    pub got: ConfusionMatrix,
    /// What the reference counted.
    pub expected: ConfusionMatrix,
}

impl fmt::Display for EngineDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "engine {} diverged from {} on {} / {}: got {:?}, expected {:?}",
            self.engine, self.reference, self.workload, self.scheme, self.got, self.expected
        )
    }
}

/// Evaluates `cell` once on every engine and verifies all of them
/// produce bit-identical confusion matrices (the first engine is the
/// reference). Returns the agreed matrix, which doubles as a warmup
/// pass for each engine.
///
/// # Errors
///
/// Returns the first [`EngineDivergence`] found (boxed: the report
/// carries both confusion matrices and only exists on the cold path).
pub fn cross_check(
    engines: &[Box<dyn Engine>],
    cell: &EngineCell<'_>,
) -> Result<ConfusionMatrix, Box<EngineDivergence>> {
    let mut reference: Option<(&'static str, ConfusionMatrix)> = None;
    for engine in engines {
        let got = engine.eval(cell);
        match &reference {
            None => reference = Some((engine.name(), got)),
            Some((ref_name, expected)) => {
                if got != *expected {
                    return Err(Box::new(EngineDivergence {
                        engine: engine.name().to_string(),
                        reference: (*ref_name).to_string(),
                        workload: cell.bench.benchmark.name().to_string(),
                        scheme: cell.scheme,
                        got,
                        expected: *expected,
                    }));
                }
            }
        }
    }
    Ok(reference.map(|(_, m)| m).unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Suite;

    #[test]
    fn all_engines_are_bit_identical_across_schemes() {
        let suite = Suite::generate(0.02, 11);
        let engines: Vec<Box<dyn Engine>> = ENGINE_NAMES
            .iter()
            .map(|n| engine_by_name(n, 3).expect("known name"))
            .collect();
        let schemes = [
            "last(pid+pc8)1[direct]",
            "union(pid+pc8)2[forwarded]",
            "union(dir+add8)2[ordered]",
        ];
        for bench in suite.traces() {
            let prepared = PreparedTrace::new(&bench.trace);
            for s in schemes {
                let scheme: Scheme = s.parse().expect("scheme notation");
                let cell = EngineCell {
                    bench,
                    prepared: &prepared,
                    scheme,
                };
                let agreed = cross_check(&engines, &cell).expect("engines agree");
                assert_eq!(agreed, run_scheme(&bench.trace, &scheme));
                assert!(cell.events() > 0);
            }
        }
    }

    #[test]
    fn unknown_engine_name_is_rejected() {
        assert!(engine_by_name("warp-drive", 4).is_none());
        for name in ENGINE_NAMES {
            assert_eq!(engine_by_name(name, 2).expect("known").name(), name);
        }
    }

    #[test]
    fn registry_and_name_mirror_agree() {
        assert_eq!(ENGINE_SPECS.len(), ENGINE_NAMES.len());
        for (spec, name) in ENGINE_SPECS.iter().zip(ENGINE_NAMES) {
            assert_eq!(spec.name, name);
            // Each row builds an adapter that answers to its own name.
            assert_eq!((spec.build)(2).name(), name);
        }
        assert_eq!(ENGINE_NAMES[0], "naive", "ratio denominator comes first");
    }

    #[test]
    fn sharded_adapter_pool_survives_reuse_across_cells() {
        let suite = Suite::generate(0.01, 7);
        let engine = ShardedServeEngine::new(3);
        // The same pooled adapter must stay bit-identical across cells
        // with different schemes and traces (sessions fully reset).
        for bench in suite.traces().iter().take(2) {
            let prepared = PreparedTrace::new(&bench.trace);
            for s in ["last(pid+pc8)1[direct]", "union(dir+add8)2[ordered]"] {
                let cell = EngineCell {
                    bench,
                    prepared: &prepared,
                    scheme: s.parse().expect("notation"),
                };
                assert_eq!(engine.eval(&cell), run_scheme(&bench.trace, &cell.scheme));
            }
        }
    }

    #[test]
    fn divergence_reports_name_the_cell() {
        // A fake engine that always returns zeros must be caught against
        // the naive reference on any non-trivial trace.
        struct Zero;
        impl Engine for Zero {
            fn name(&self) -> &'static str {
                "zero"
            }
            fn eval(&self, _cell: &EngineCell<'_>) -> ConfusionMatrix {
                ConfusionMatrix::default()
            }
        }
        let suite = Suite::generate(0.01, 5);
        let bench = &suite.traces()[0];
        let prepared = PreparedTrace::new(&bench.trace);
        let cell = EngineCell {
            bench,
            prepared: &prepared,
            scheme: "union(pid+pc8)2[direct]".parse().expect("notation"),
        };
        let engines: Vec<Box<dyn Engine>> = vec![Box::new(NaiveEngine), Box::new(Zero)];
        let err = cross_check(&engines, &cell).expect_err("zero engine diverges");
        assert_eq!(err.engine, "zero");
        assert_eq!(err.reference, "naive");
        assert!(err.to_string().contains("diverged"), "{err}");
    }
}
