//! Structured errors for the experiment harness.
//!
//! Everything that can go wrong while caching traces, checkpointing
//! sweeps, or running workers lands in one [`HarnessError`] so the
//! binaries can distinguish *user* mistakes (bad flags — usage text, exit
//! code 2) from *runtime* failures (I/O, corruption, worker panics —
//! stderr diagnostics, exit code 1).

use csp_core::PredictionFunction;
use csp_workloads::Benchmark;
use std::fmt;
use std::path::PathBuf;

/// A failure inside the harness library.
#[derive(Debug)]
pub enum HarnessError {
    /// An I/O operation on `path` failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A cached trace file failed validation (bad magic, checksum
    /// mismatch, malformed payload). The cache quarantines such files and
    /// regenerates; seeing this error means quarantine itself failed or
    /// the caller asked for a strict read.
    CorruptTrace {
        /// The offending file.
        path: PathBuf,
        /// What the reader objected to.
        detail: String,
    },
    /// A checkpoint file was unusable and could not be restarted.
    Checkpoint {
        /// The checkpoint file.
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
    /// A sweep worker panicked on the same work item twice (once plus one
    /// retry). The rest of the sweep still completed; this reports the
    /// casualties.
    WorkerPanic {
        /// Human-readable labels of the failed work items.
        labels: Vec<String>,
        /// The panic payload of the first failure, if it was a string.
        message: String,
    },
    /// The online sharded engine (`csp-serve`) disagreed with the
    /// offline reference engine — the online == offline equivalence the
    /// serving layer is built on does not hold (a serious bug in one of
    /// the two engines).
    ServeDivergence {
        /// Number of `(scheme, benchmark)` cells that diverged.
        count: usize,
        /// Human-readable description of the first divergence.
        first: String,
    },
    /// An engine-benchmark failure: a malformed baseline report, or a
    /// measured regression past the allowed tolerance.
    Bench {
        /// What went wrong (or regressed).
        detail: String,
    },
    /// A suite is missing the trace for `benchmark`.
    MissingBenchmark(Benchmark),
    /// A family sweep was asked for a prediction function it does not
    /// evaluate (only `union`/`inter`/`last` come out of a family pass).
    MissingFamily(PredictionFunction),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            HarnessError::CorruptTrace { path, detail } => {
                write!(f, "corrupt trace {}: {detail}", path.display())
            }
            HarnessError::Checkpoint { path, detail } => {
                write!(f, "checkpoint {}: {detail}", path.display())
            }
            HarnessError::WorkerPanic { labels, message } => {
                write!(
                    f,
                    "{} work item(s) panicked twice (first: {}): {message}",
                    labels.len(),
                    labels.first().map(String::as_str).unwrap_or("?"),
                )
            }
            HarnessError::ServeDivergence { count, first } => {
                write!(
                    f,
                    "online engine diverged from offline on {count} cell(s); first: {first}"
                )
            }
            HarnessError::Bench { detail } => {
                write!(f, "engine bench: {detail}")
            }
            HarnessError::MissingBenchmark(b) => {
                write!(f, "suite has no trace for benchmark {b}")
            }
            HarnessError::MissingFamily(function) => {
                write!(f, "family sweep has no {function} results")
            }
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl HarnessError {
    /// Wraps an I/O error with the path it occurred on.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        HarnessError::Io {
            path: path.into(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_path() {
        let e = HarnessError::io(
            "/tmp/x",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("/tmp/x"));
    }

    #[test]
    fn worker_panic_counts_labels() {
        let e = HarnessError::WorkerPanic {
            labels: vec!["cell 3".into(), "cell 9".into()],
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("2 work item(s)"), "{s}");
        assert!(s.contains("cell 3"), "{s}");
        assert!(s.contains("boom"), "{s}");
    }

    #[test]
    fn missing_family_names_the_function() {
        let e = HarnessError::MissingFamily(PredictionFunction::Pas);
        assert!(e.to_string().contains("pas"), "{e}");
    }
}
