//! The engine benchmark: measures the prepared single-pass sweep against
//! the naive per-cell path and guards the ratio in CI.
//!
//! Both arms run the *same* family-sweep workload (the Figure 6/7 index
//! grid under every update mode) sequentially on one thread. The naive
//! arm is a faithful reference spelling of the pre-prepared-layer
//! evaluation: every `(index, update, benchmark)` cell re-resolves the
//! trace's ground truth, re-derives each event's key, and walks a hashed
//! create-on-update predictor table probed separately for update and
//! score. The prepared arm is the production path: resolution and key
//! streams shared across cells, entries in a flat slot-indexed table. The
//! two arms' confusion matrices are asserted bit-identical before any
//! rate is reported, so the reference doubles as an independent
//! equivalence oracle for the prepared engine.
//!
//! The committed baseline (`BENCH_engine.json`) records the measured
//! *speedup ratio*, not absolute events/sec: the ratio is
//! machine-relative (both arms run on the same box back to back), so a
//! slower CI runner does not trip the gate but a real regression of the
//! prepared path does.

use crate::error::HarnessError;
use crate::runner::{PreparedSuite, Suite};
use crate::space::figure6_index_grid;
use csp_core::engine::{run_history_family_prepared, FamilyResult};
use csp_core::{
    node_bits, HistoryEntry, IndexSpec, PredictionFunction, PredictorTable, Scheme, UpdateMode,
};
use csp_metrics::ConfusionMatrix;
use csp_trace::{SharingBitmap, Trace};
use std::time::Instant;

/// One timed arm of the benchmark.
#[derive(Clone, Copy, Debug)]
pub struct StageRate {
    /// Wall-clock seconds the arm took.
    pub seconds: f64,
    /// Decisions scored per second (`events_per_pass / seconds`).
    pub events_per_sec: f64,
}

/// The engine benchmark's result: both arms plus their ratio.
#[derive(Clone, Debug)]
pub struct EngineBenchReport {
    /// Workload scale the suite was generated at.
    pub scale: f64,
    /// Suite seed.
    pub seed: u64,
    /// Family depth both arms evaluate to.
    pub max_depth: usize,
    /// Index specifications in the grid.
    pub indexes: usize,
    /// Update modes in the grid.
    pub updates: usize,
    /// Benchmarks in the suite.
    pub benchmarks: usize,
    /// Decisions one full sweep scores (`cells x suite events`); each arm
    /// processes exactly this many.
    pub events_per_pass: u64,
    /// The naive arm (per-cell resolution and key derivation).
    pub naive: StageRate,
    /// The prepared arm (shared resolution and key streams).
    pub prepared: StageRate,
    /// `prepared.events_per_sec / naive.events_per_sec`.
    pub speedup: f64,
}

/// Runs both arms of the engine benchmark over `suite` and verifies they
/// produce bit-identical results.
///
/// # Panics
///
/// Panics if the two arms disagree on any confusion matrix — a
/// correctness bug that must never be papered over by a benchmark.
pub fn run_engine_bench(suite: &Suite, max_depth: usize) -> EngineBenchReport {
    run_engine_bench_warm(suite, max_depth, 0)
}

/// [`run_engine_bench`] with `warmup` untimed passes per arm before the
/// timed iterations — on cold CI runners the first pass pays page
/// faults and frequency ramp-up that are nobody's regression.
///
/// # Panics
///
/// Panics if the two arms disagree on any confusion matrix.
pub fn run_engine_bench_warm(suite: &Suite, max_depth: usize, warmup: usize) -> EngineBenchReport {
    let indexes = figure6_index_grid();
    let updates = UpdateMode::ALL;
    let suite_events: u64 = suite.traces().iter().map(|b| b.trace.len() as u64).sum();
    let cells = (indexes.len() * updates.len()) as u64;
    let events_per_pass = cells * suite_events;

    let (naive_results, naive) = timed(events_per_pass, warmup, || {
        sweep_naive(suite, &indexes, &updates, max_depth)
    });
    let (prepared_results, prepared) = timed(events_per_pass, warmup, || {
        sweep_prepared(suite, &indexes, &updates, max_depth)
    });
    assert_eq!(
        naive_results, prepared_results,
        "prepared sweep diverged from naive sweep"
    );
    drop(naive_results);
    drop(prepared_results);

    EngineBenchReport {
        scale: suite.scale(),
        seed: suite.seed(),
        max_depth,
        indexes: indexes.len(),
        updates: updates.len(),
        benchmarks: suite.traces().len(),
        events_per_pass,
        naive,
        prepared,
        speedup: prepared.events_per_sec / naive.events_per_sec,
    }
}

/// Times `f` over [`BENCH_ITERS`] runs (after `warmup` untimed passes)
/// and reports the fastest — a single-shot wall-clock sample is too
/// noisy to gate CI on.
fn timed<T>(events: u64, warmup: usize, f: impl Fn() -> T) -> (T, StageRate) {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..BENCH_ITERS {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    let seconds = best.max(1e-9);
    (
        out.expect("BENCH_ITERS >= 1"),
        StageRate {
            seconds,
            events_per_sec: events as f64 / seconds,
        },
    )
}

/// Timed iterations per arm; the fastest is reported.
const BENCH_ITERS: usize = 3;

/// The naive arm: every cell evaluated by [`family_reference`], paying
/// per-cell resolution, per-event key derivation, and hashed table probes.
fn sweep_naive(
    suite: &Suite,
    indexes: &[IndexSpec],
    updates: &[UpdateMode],
    max_depth: usize,
) -> Vec<FamilyResult> {
    let mut out = Vec::new();
    for &index in indexes {
        for &update in updates {
            for b in suite.traces() {
                out.push(family_reference(&b.trace, index, update, max_depth));
            }
        }
    }
    out
}

/// Reference spelling of the family evaluator as it stood before the
/// prepared layer: ground truth resolved per call, `key_of` /
/// `forward_key_of` computed per event, and a hashed create-on-update
/// [`PredictorTable`] probed once to update and once again to score.
///
/// Kept as the benchmark's naive arm *and* as an independent oracle: it
/// shares no code with the prepared path beyond the entry and index
/// primitives, and [`run_engine_bench`] asserts its output bit-identical
/// to `run_history_family_prepared` on every cell.
pub fn family_reference(
    trace: &Trace,
    index: IndexSpec,
    update: UpdateMode,
    max_depth: usize,
) -> FamilyResult {
    let actuals = trace.resolve_actuals();
    let nb = node_bits(trace.nodes());
    let nodes = trace.nodes();
    let deepest = Scheme::new(PredictionFunction::Union, index, max_depth, update);
    let mut table = PredictorTable::new(&deepest, nodes);
    let mut result = FamilyResult {
        union: vec![ConfusionMatrix::default(); max_depth],
        inter: vec![ConfusionMatrix::default(); max_depth],
    };
    let score = |h: Option<&HistoryEntry>, actual: SharingBitmap, result: &mut FamilyResult| {
        let mut acc_union = SharingBitmap::empty();
        let mut acc_inter = SharingBitmap::all(nodes);
        let mut d = 0;
        if let Some(h) = h {
            for b in h.recent(max_depth) {
                acc_union |= b;
                acc_inter &= b;
                result.union[d].record(acc_union, actual, nodes);
                result.inter[d].record(acc_inter, actual, nodes);
                d += 1;
            }
        }
        let empty = SharingBitmap::empty();
        for rest in d..max_depth {
            result.union[rest].record(acc_union, actual, nodes);
            result.inter[rest].record(empty, actual, nodes);
        }
    };
    for (i, event) in trace.events().iter().enumerate() {
        let key = index.key_of(event, nb);
        match update {
            UpdateMode::Direct => {
                if event.prev_writer.is_some() {
                    table.update(key, event.invalidated);
                }
                score(table.history(key), actuals[i], &mut result);
            }
            UpdateMode::Forwarded => {
                if let Some(fkey) = index.forward_key_of(event, nb) {
                    table.update(fkey, event.invalidated);
                }
                score(table.history(key), actuals[i], &mut result);
            }
            UpdateMode::Ordered => {
                score(table.history(key), actuals[i], &mut result);
                table.update(key, actuals[i]);
            }
        }
    }
    result
}

/// The prepared arm: one resolution per benchmark, one key stream per
/// index, shared across every cell.
fn sweep_prepared(
    suite: &Suite,
    indexes: &[IndexSpec],
    updates: &[UpdateMode],
    max_depth: usize,
) -> Vec<FamilyResult> {
    let prepared = PreparedSuite::new(suite);
    let mut out = Vec::new();
    for &index in indexes {
        for &update in updates {
            for pt in prepared.traces() {
                out.push(run_history_family_prepared(pt, index, update, max_depth));
            }
        }
        // Mirror the sweep planner: no later cell of this pass touches
        // the index again, so evict rather than let the bounded stream
        // cache thrash (which would recompute streams mid-pass).
        for pt in prepared.traces() {
            pt.evict_stream(index);
        }
    }
    out
}

impl EngineBenchReport {
    /// A one-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "engine bench: naive {:.2}M ev/s, prepared {:.2}M ev/s, speedup {:.2}x \
             ({} indexes x {} updates x {} benchmarks, depth {}, {} events/pass)",
            self.naive.events_per_sec / 1e6,
            self.prepared.events_per_sec / 1e6,
            self.speedup,
            self.indexes,
            self.updates,
            self.benchmarks,
            self.max_depth,
            self.events_per_pass,
        )
    }

    /// Serialises the report as JSON (hand-rolled: the workspace is
    /// offline and carries no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"engine\",\n  \"scale\": {},\n  \"seed\": {},\n  \
             \"max_depth\": {},\n  \"indexes\": {},\n  \"updates\": {},\n  \
             \"benchmarks\": {},\n  \"events_per_pass\": {},\n  \
             \"naive\": {{ \"seconds\": {:.6}, \"events_per_sec\": {:.1} }},\n  \
             \"prepared\": {{ \"seconds\": {:.6}, \"events_per_sec\": {:.1} }},\n  \
             \"speedup\": {:.4}\n}}\n",
            self.scale,
            self.seed,
            self.max_depth,
            self.indexes,
            self.updates,
            self.benchmarks,
            self.events_per_pass,
            self.naive.seconds,
            self.naive.events_per_sec,
            self.prepared.seconds,
            self.prepared.events_per_sec,
            self.speedup,
        )
    }

    /// Extracts the `"speedup"` field from a report previously written by
    /// [`EngineBenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Bench`] if the field is missing or not a
    /// number.
    pub fn speedup_from_json(text: &str) -> Result<f64, HarnessError> {
        extract_number(text, "speedup").ok_or_else(|| HarnessError::Bench {
            detail: "baseline report has no numeric \"speedup\" field".into(),
        })
    }

    /// Compares this run's speedup against a committed baseline report,
    /// allowing the ratio to degrade by at most `tolerance` (e.g. `0.2`
    /// for 20%).
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Bench`] if the baseline cannot be parsed
    /// or the measured speedup regressed past the tolerance.
    pub fn check_against_baseline(
        &self,
        baseline_json: &str,
        tolerance: f64,
    ) -> Result<(), HarnessError> {
        let baseline = Self::speedup_from_json(baseline_json)?;
        let floor = baseline * (1.0 - tolerance);
        if self.speedup < floor {
            return Err(HarnessError::Bench {
                detail: format!(
                    "prepared-path speedup regressed: measured {:.2}x, baseline {:.2}x \
                     (floor {:.2}x at {:.0}% tolerance)",
                    self.speedup,
                    baseline,
                    floor,
                    tolerance * 100.0
                ),
            });
        }
        Ok(())
    }
}

/// Finds `"key": <number>` in a flat JSON document. Enough of a parser
/// for the reports this module itself writes.
fn extract_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_arms_agree_and_report_roundtrips() {
        let suite = Suite::generate(0.01, 3);
        let report = run_engine_bench(&suite, 2);
        assert!(report.naive.events_per_sec > 0.0);
        assert!(report.prepared.events_per_sec > 0.0);
        assert!(report.speedup > 0.0);
        assert_eq!(report.benchmarks, 7);
        assert_eq!(report.indexes, 16);
        assert_eq!(report.updates, UpdateMode::ALL.len());

        let json = report.to_json();
        let speedup = EngineBenchReport::speedup_from_json(&json).unwrap();
        assert!((speedup - report.speedup).abs() < 1e-3, "{speedup}");
        assert!(report.summary().contains("speedup"));
    }

    #[test]
    fn regression_check_enforces_tolerance() {
        let suite = Suite::generate(0.01, 3);
        let mut report = run_engine_bench(&suite, 1);
        report.speedup = 2.0;
        // Baseline 2.0, measured 2.0: fine at any tolerance.
        let baseline = report.to_json();
        report.check_against_baseline(&baseline, 0.2).unwrap();
        // Measured 1.5 vs baseline 2.0 is inside 30% but outside 20%.
        report.speedup = 1.5;
        report.check_against_baseline(&baseline, 0.3).unwrap();
        let err = report.check_against_baseline(&baseline, 0.2).unwrap_err();
        assert!(err.to_string().contains("regressed"), "{err}");
    }

    #[test]
    fn malformed_baseline_is_a_bench_error() {
        let err = EngineBenchReport::speedup_from_json("{}").unwrap_err();
        assert!(err.to_string().contains("speedup"), "{err}");
        assert!(EngineBenchReport::speedup_from_json("{\"speedup\": 3.25}").unwrap() == 3.25);
    }

    #[test]
    fn extract_number_handles_layouts() {
        assert_eq!(extract_number("{\"x\":1.5}", "x"), Some(1.5));
        assert_eq!(extract_number("{ \"x\" : 2 }", "x"), Some(2.0));
        assert_eq!(extract_number("{\"y\": 1}", "x"), None);
    }
}
