//! Experiment harness: everything needed to regenerate the paper's tables
//! and figures.
//!
//! * [`space`] — enumeration of the affordable design space (every
//!   `union`/`inter` scheme up to the paper's 2^24-bit budget, Section 5.4);
//! * [`runner`] — parallel, panic-isolated evaluation of schemes over the
//!   benchmark suite, including the single-pass family sweep that
//!   evaluates all depths of `union` and `inter` together, with optional
//!   resumable checkpointing;
//! * [`cache`] — a checksummed on-disk cache of generated traces with
//!   atomic writes and quarantine-on-corruption;
//! * [`checkpoint`] — the crash-safe sweep-result log behind the
//!   `*_checkpointed` runners;
//! * [`error`] — the structured [`error::HarnessError`] the library
//!   surfaces instead of panicking;
//! * [`bench_engine`] — the naive-vs-prepared engine benchmark behind
//!   `csp-repro --bench-engine` and the CI regression gate;
//! * [`engines`] — the [`engines::Engine`] adapter layer putting the
//!   naive, prepared, and sharded-serve execution paths behind one
//!   trait with bit-identity cross-checks, shared by the benchmark
//!   barometer (`csp-bar`);
//! * [`serve`] — serve-backed evaluation through the online sharded
//!   engine (`csp-serve`) and the online == offline equivalence check
//!   behind `csp-repro --verify-serve`;
//! * [`render`] — plain-text tables and bar "figures" for terminals;
//! * [`experiments`] — one driver per table/figure of the paper (Tables
//!   3–11, Figures 6–9) plus the extension experiments from `DESIGN.md`.
//!
//! The `csp-repro` binary exposes all of it from the command line:
//!
//! ```text
//! csp-repro all            # every table and figure
//! csp-repro table8         # one experiment
//! csp-repro --scale 0.2 fig6
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not unwrap panics;
// tests opt back in where unwrapping is the assertion.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod bench_engine;
pub mod cache;
pub mod checkpoint;
pub mod engines;
pub mod error;
pub mod experiments;
pub mod render;
pub mod runner;
pub mod serve;
pub mod space;

pub use bench_engine::{run_engine_bench, run_engine_bench_warm, EngineBenchReport};
pub use cache::{CacheOutcome, TraceCache};
pub use error::HarnessError;
pub use runner::{PreparedSuite, SchemeStats, Suite, SweepFailure, SweepOutcome};
