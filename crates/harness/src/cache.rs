//! On-disk cache of generated benchmark traces.
//!
//! Workload generation dominates experiment start-up time, and the result
//! is a pure function of `(benchmark, scale, seed)` — so it caches. Each
//! cache entry is a pair of files keyed by benchmark name, scale, seed and
//! the on-disk format version:
//!
//! * `<bench>-s<scale>-seed<seed>-v<N>.csptrc` — the checksummed v2 trace
//!   ([`csp_trace::io`]);
//! * the same stem with extension `.stats` — the simulator counters
//!   ([`csp_sim::SimStats`]), which the trace format does not carry,
//!   CRC32c-guarded like the trace sections.
//!
//! Robustness contract:
//!
//! * **Atomic writes.** Entries are written to a `.tmp` sibling and
//!   renamed into place, so a crash mid-write never leaves a plausible
//!   half-file under the real name.
//! * **Quarantine, then regenerate.** A cache entry that fails validation
//!   (torn write, bit rot, truncation) is moved aside to `<name>.corrupt`
//!   — kept for post-mortems, never re-read — and the trace is
//!   regenerated; a hit is only reported for entries that decode cleanly.
//! * **Version-keyed names.** Format bumps change the file name, so old
//!   binaries never misparse new files and vice versa.

use crate::error::HarnessError;
use csp_sim::SimStats;
use csp_trace::{crc32c, io as trace_io};
use csp_workloads::{generate_benchmark, Benchmark, BenchmarkTrace};
use std::fs;
use std::path::{Path, PathBuf};

/// How a cache lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The entry existed and decoded cleanly.
    Hit,
    /// No entry existed; the trace was generated and stored.
    Miss,
    /// An entry existed but failed validation; it was quarantined and the
    /// trace regenerated.
    Quarantined,
}

/// Magic prefix of the stats sidecar file.
const STATS_MAGIC: &[u8; 8] = b"CSPSTAT\x01";

/// Counts one lookup outcome in the process-global metrics registry
/// (`csp_cache_lookups_total{outcome=...}`).
fn observe(outcome: CacheOutcome) {
    let label = match outcome {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Miss => "miss",
        CacheOutcome::Quarantined => "quarantined",
    };
    csp_obs::global()
        .counter(
            "csp_cache_lookups_total",
            "Trace-cache lookups by outcome.",
            &[("outcome", label)],
        )
        .inc();
}

/// A directory of cached benchmark traces.
#[derive(Clone, Debug)]
pub struct TraceCache {
    dir: PathBuf,
}

impl TraceCache {
    /// A cache rooted at `dir` (created on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TraceCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The trace file path for one `(benchmark, scale, seed)` key.
    pub fn trace_path(&self, benchmark: Benchmark, scale: f64, seed: u64) -> PathBuf {
        self.dir.join(format!(
            "{}-s{scale}-seed{seed}-v{}.csptrc",
            benchmark.name(),
            trace_io::FORMAT_VERSION
        ))
    }

    fn stats_path(&self, benchmark: Benchmark, scale: f64, seed: u64) -> PathBuf {
        self.trace_path(benchmark, scale, seed)
            .with_extension("stats")
    }

    /// Returns the cached trace for the key, generating (and storing) it
    /// on miss or corruption.
    ///
    /// The returned trace is bit-identical to what
    /// [`csp_workloads::generate_benchmark`] would produce: a warm cache
    /// changes timing only, never results.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] when the cache directory cannot be
    /// created, a corrupt entry cannot be quarantined, or a fresh entry
    /// cannot be written. Corruption of an existing entry is *not* an
    /// error: it quarantines and regenerates.
    pub fn load_or_generate(
        &self,
        benchmark: Benchmark,
        scale: f64,
        seed: u64,
    ) -> Result<(BenchmarkTrace, CacheOutcome), HarnessError> {
        let trace_path = self.trace_path(benchmark, scale, seed);
        let stats_path = self.stats_path(benchmark, scale, seed);

        let outcome = match self.try_load(benchmark, &trace_path, &stats_path) {
            Ok(Some(cached)) => {
                observe(CacheOutcome::Hit);
                return Ok((cached, CacheOutcome::Hit));
            }
            Ok(None) => CacheOutcome::Miss,
            Err(detail) => {
                quarantine(&trace_path)?;
                quarantine(&stats_path)?;
                eprintln!(
                    "warning: quarantined corrupt cache entry {} ({detail})",
                    trace_path.display()
                );
                CacheOutcome::Quarantined
            }
        };

        let generated = generate_benchmark(benchmark, scale, seed);
        self.store(&generated, &trace_path, &stats_path)?;
        observe(outcome);
        Ok((generated, outcome))
    }

    /// Loads (or generates) the whole seven-benchmark suite through the
    /// cache, returning the suite and the per-benchmark outcomes in
    /// [`Benchmark::ALL`] order. The result is identical to
    /// [`crate::runner::Suite::generate`]`(scale, seed)`.
    ///
    /// # Errors
    ///
    /// Propagates [`HarnessError`] from [`Self::load_or_generate`].
    pub fn load_suite(
        &self,
        scale: f64,
        seed: u64,
    ) -> Result<(crate::runner::Suite, Vec<CacheOutcome>), HarnessError> {
        let mut traces = Vec::with_capacity(Benchmark::ALL.len());
        let mut outcomes = Vec::with_capacity(Benchmark::ALL.len());
        for &benchmark in &Benchmark::ALL {
            let (entry, outcome) = self.load_or_generate(benchmark, scale, seed)?;
            traces.push(entry);
            outcomes.push(outcome);
        }
        let suite = crate::runner::Suite::from_parts(traces, scale, seed)?;
        Ok((suite, outcomes))
    }

    /// `Ok(Some)` on a clean hit, `Ok(None)` when absent, `Err(detail)`
    /// when present but invalid.
    fn try_load(
        &self,
        benchmark: Benchmark,
        trace_path: &Path,
        stats_path: &Path,
    ) -> Result<Option<BenchmarkTrace>, String> {
        let file = match fs::File::open(trace_path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("open: {e}")),
        };
        let trace = trace_io::read_trace(std::io::BufReader::new(file))
            .map_err(|e| format!("decode: {e}"))?;
        let stats = match fs::read(stats_path) {
            Ok(bytes) => decode_stats(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // A trace without its sidecar is a torn entry.
                return Err("stats sidecar missing".into());
            }
            Err(e) => return Err(format!("open stats: {e}")),
        };
        Ok(Some(BenchmarkTrace {
            benchmark,
            trace,
            stats,
        }))
    }

    fn store(
        &self,
        entry: &BenchmarkTrace,
        trace_path: &Path,
        stats_path: &Path,
    ) -> Result<(), HarnessError> {
        fs::create_dir_all(&self.dir).map_err(|e| HarnessError::io(&self.dir, e))?;
        // Sidecar first: the trace file's presence is the commit point, so
        // a crash between the two renames leaves no live half-entry.
        write_atomically(stats_path, &encode_stats(&entry.stats))?;
        let mut buf = Vec::new();
        trace_io::write_trace(&mut buf, &entry.trace)
            .map_err(|e| HarnessError::io(trace_path, e))?;
        write_atomically(trace_path, &buf)
    }
}

/// Writes `bytes` to `path` via a temporary sibling plus rename (the
/// shared [`trace_io::write_file_atomically`] convention).
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), HarnessError> {
    trace_io::write_file_atomically(path, bytes).map_err(|e| HarnessError::io(path, e))
}

/// Moves a failed-validation file aside to `<name>.corrupt` (replacing any
/// previous quarantine of the same name). Missing files are fine: a torn
/// entry may have only one of its two files.
fn quarantine(path: &Path) -> Result<(), HarnessError> {
    let mut target = path.as_os_str().to_owned();
    target.push(".corrupt");
    match fs::rename(path, PathBuf::from(target)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(HarnessError::io(path, e)),
    }
}

/// The `SimStats` fields in sidecar order. One place to keep the codec and
/// the struct in sync (the compiler checks exhaustiveness via the
/// destructuring in `stats_fields`).
fn stats_fields(s: &SimStats) -> [u64; 15] {
    let SimStats {
        reads,
        writes,
        l1_hits,
        l2_hits,
        read_misses,
        write_hits,
        write_misses,
        write_upgrades,
        silent_upgrades,
        invalidations_sent,
        writebacks,
        l2_evictions,
        lines_touched,
        max_static_stores_per_node,
        miss_latency_cycles,
    } = *s;
    [
        reads,
        writes,
        l1_hits,
        l2_hits,
        read_misses,
        write_hits,
        write_misses,
        write_upgrades,
        silent_upgrades,
        invalidations_sent,
        writebacks,
        l2_evictions,
        lines_touched,
        max_static_stores_per_node,
        miss_latency_cycles,
    ]
}

fn encode_stats(stats: &SimStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 15 * 8 + 4);
    out.extend_from_slice(STATS_MAGIC);
    for field in stats_fields(stats) {
        out.extend_from_slice(&field.to_le_bytes());
    }
    let crc = crc32c::checksum(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_stats(bytes: &[u8]) -> Result<SimStats, String> {
    let expected = 8 + 15 * 8 + 4;
    if bytes.len() != expected {
        return Err(format!("stats: {} bytes, expected {expected}", bytes.len()));
    }
    let (payload, crc_bytes) = bytes.split_at(expected - 4);
    if !payload.starts_with(STATS_MAGIC) {
        return Err("stats: bad magic".into());
    }
    let mut crc = [0u8; 4];
    crc.copy_from_slice(crc_bytes);
    let stored = u32::from_le_bytes(crc);
    let computed = crc32c::checksum(payload);
    if stored != computed {
        return Err(format!(
            "stats: checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
        ));
    }
    let mut fields = [0u64; 15];
    let mut cursor = payload[8..].chunks_exact(8);
    for f in &mut fields {
        let mut b = [0u8; 8];
        b.copy_from_slice(cursor.next().ok_or("stats: short payload")?);
        *f = u64::from_le_bytes(b);
    }
    let [reads, writes, l1_hits, l2_hits, read_misses, write_hits, write_misses, write_upgrades, silent_upgrades, invalidations_sent, writebacks, l2_evictions, lines_touched, max_static_stores_per_node, miss_latency_cycles] =
        fields;
    Ok(SimStats {
        reads,
        writes,
        l1_hits,
        l2_hits,
        read_misses,
        write_hits,
        write_misses,
        write_upgrades,
        silent_upgrades,
        invalidations_sent,
        writebacks,
        l2_evictions,
        lines_touched,
        max_static_stores_per_node,
        miss_latency_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("csp-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stats_roundtrip() {
        let stats = SimStats {
            reads: 1,
            writes: 2,
            l2_evictions: 77,
            miss_latency_cycles: u64::MAX,
            ..SimStats::default()
        };
        assert_eq!(decode_stats(&encode_stats(&stats)).unwrap(), stats);
    }

    #[test]
    fn stats_detect_any_single_byte_flip() {
        let bytes = encode_stats(&SimStats {
            reads: 123,
            ..SimStats::default()
        });
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x40;
            assert!(
                decode_stats(&mutated).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn miss_then_hit_then_quarantine() {
        let dir = temp_dir("basic");
        let cache = TraceCache::new(&dir);
        let (first, outcome) = cache
            .load_or_generate(Benchmark::Ocean, 0.01, 5)
            .expect("generate");
        assert_eq!(outcome, CacheOutcome::Miss);

        let (second, outcome) = cache
            .load_or_generate(Benchmark::Ocean, 0.01, 5)
            .expect("load");
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(first.trace, second.trace);
        assert_eq!(first.stats, second.stats);

        // Corrupt the stored trace: next load must quarantine + regenerate.
        let path = cache.trace_path(Benchmark::Ocean, 0.01, 5);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (third, outcome) = cache
            .load_or_generate(Benchmark::Ocean, 0.01, 5)
            .expect("recover");
        assert_eq!(outcome, CacheOutcome::Quarantined);
        assert_eq!(first.trace, third.trace);
        let quarantined = PathBuf::from(format!("{}.corrupt", path.display()));
        assert!(quarantined.exists(), "corrupt file kept for post-mortem");

        // And the regenerated entry is clean again.
        let (_, outcome) = cache
            .load_or_generate(Benchmark::Ocean, 0.01, 5)
            .expect("reload");
        assert_eq!(outcome, CacheOutcome::Hit);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lookups_surface_in_the_global_metrics_registry() {
        // The registry is process-global and other tests also look things
        // up concurrently, so assert on deltas, not absolute values.
        fn lookup_count(outcome: &str) -> u64 {
            csp_obs::parse_text(&csp_obs::global().encode_prometheus())
                .iter()
                .filter(|s| {
                    s.name == "csp_cache_lookups_total" && s.label("outcome") == Some(outcome)
                })
                .filter_map(csp_obs::Sample::value_u64)
                .sum()
        }
        let dir = temp_dir("metrics");
        let cache = TraceCache::new(&dir);
        let (miss0, hit0) = (lookup_count("miss"), lookup_count("hit"));
        cache
            .load_or_generate(Benchmark::Barnes, 0.01, 9)
            .expect("generate");
        cache
            .load_or_generate(Benchmark::Barnes, 0.01, 9)
            .expect("load");
        assert!(lookup_count("miss") > miss0);
        assert!(lookup_count("hit") > hit0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_sidecar_is_treated_as_torn_entry() {
        let dir = temp_dir("sidecar");
        let cache = TraceCache::new(&dir);
        cache
            .load_or_generate(Benchmark::Em3d, 0.01, 2)
            .expect("generate");
        fs::remove_file(
            cache
                .trace_path(Benchmark::Em3d, 0.01, 2)
                .with_extension("stats"),
        )
        .unwrap();
        let (_, outcome) = cache
            .load_or_generate(Benchmark::Em3d, 0.01, 2)
            .expect("recover");
        assert_eq!(outcome, CacheOutcome::Quarantined);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_do_not_collide() {
        let c = TraceCache::new("/tmp/x");
        let a = c.trace_path(Benchmark::Water, 0.5, 1);
        assert_ne!(a, c.trace_path(Benchmark::Water, 0.5, 2));
        assert_ne!(a, c.trace_path(Benchmark::Water, 0.25, 1));
        assert_ne!(a, c.trace_path(Benchmark::Gauss, 0.5, 1));
    }
}
