//! Plain-text rendering of tables and figures.

use std::fmt::Write;

/// Renders an aligned plain-text table with a title.
///
/// # Example
///
/// ```
/// let out = csp_harness::render::table(
///     "Table X",
///     &["scheme", "pvp"],
///     &[vec!["inter(pid)2".into(), "0.91".into()]],
/// );
/// assert!(out.contains("Table X"));
/// assert!(out.contains("inter(pid)2"));
/// ```
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "row width {} != header width {}",
            row.len(),
            headers.len()
        );
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:<w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Renders a labelled horizontal bar chart of values in `[0, 1]` — the
/// terminal stand-in for the paper's figures. Each series gets one bar
/// row per label.
///
/// # Example
///
/// ```
/// let out = csp_harness::render::bar_chart(
///     "Fig X",
///     &["pid".into(), "dir".into()],
///     &[("sens", vec![0.5, 0.25]), ("pvp", vec![1.0, 0.0])],
/// );
/// assert!(out.contains("pid"));
/// assert!(out.contains("sens"));
/// ```
///
/// # Panics
///
/// Panics if a series' length differs from the label count.
pub fn bar_chart(title: &str, labels: &[String], series: &[(&str, Vec<f64>)]) -> String {
    const WIDTH: usize = 40;
    let label_w = labels.iter().map(String::len).max().unwrap_or(0).max(5);
    let name_w = series.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    for (s, values) in series {
        assert_eq!(values.len(), labels.len(), "series {s} length mismatch");
    }
    for (i, label) in labels.iter().enumerate() {
        for (j, (name, values)) in series.iter().enumerate() {
            let v = values[i].clamp(0.0, 1.0);
            let filled = (v * WIDTH as f64).round() as usize;
            let bar: String = "#".repeat(filled) + &".".repeat(WIDTH - filled);
            let shown_label = if j == 0 { label.as_str() } else { "" };
            let _ = writeln!(
                out,
                "{shown_label:<label_w$} {name:>name_w$} |{bar}| {v:.3}"
            );
        }
    }
    out
}

/// Formats a rate with three decimals (the paper's table precision is two;
/// three avoids ties in rankings).
pub fn rate(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            "T",
            &["a", "blong"],
            &[
                vec!["xxxx".into(), "1".into()],
                vec!["y".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].starts_with("a     blong"));
        assert!(lines[3].starts_with("xxxx  1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_validates_row_width() {
        let _ = table("T", &["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn bar_chart_scales_bars() {
        let out = bar_chart("F", &["x".into()], &[("s", vec![0.5])]);
        let hashes = out.matches('#').count();
        assert_eq!(hashes, 20); // half of 40
    }

    #[test]
    fn bar_chart_clamps_out_of_range() {
        let out = bar_chart("F", &["x".into()], &[("s", vec![1.7])]);
        assert!(out.contains(&"#".repeat(40)));
    }

    #[test]
    fn rate_formats() {
        assert_eq!(rate(0.12345), "0.123");
    }
}
