//! Parallel evaluation of schemes over the benchmark suite.
//!
//! # Fault tolerance
//!
//! Sweep workers are *panic-isolated*: each work item runs under
//! [`std::panic::catch_unwind`] with a retry-once policy (a second panic on
//! the same item marks it failed, it does not bring down the sweep). Results
//! are collected into lock-free per-slot cells ([`std::sync::OnceLock`]) —
//! no mutex, so a panicking worker can never poison the collection path.
//! The `try_*` entry points return a [`SweepOutcome`] carrying both the
//! surviving results and the per-item failures; the legacy entry points
//! ([`evaluate_schemes`], [`sweep_families`]) keep their infallible
//! signatures and document the (now much narrower) panic they turn
//! failures into.
//!
//! Long sweeps can additionally be *checkpointed*
//! ([`evaluate_schemes_checkpointed`], [`sweep_families_checkpointed`]):
//! completed cells are persisted periodically through a
//! [`crate::checkpoint::SweepCheckpoint`], and a restarted sweep resumes
//! from the log with bitwise-identical results.

use crate::checkpoint::{CheckpointPayload, Fingerprint, SweepCheckpoint};
use crate::error::HarnessError;
use csp_core::engine::{
    run_history_family_prepared, run_scheme, run_scheme_prepared, FamilyResult,
};
use csp_core::{IndexSpec, PredictionFunction, PreparedTrace, Scheme, UpdateMode};
use csp_metrics::{ConfusionMatrix, Screening};
use csp_workloads::{generate_suite, Benchmark, BenchmarkTrace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The wall-time histogram for one kind of evaluation work item, in the
/// process-global metrics registry (`csp_harness_eval_ns{kind=...}`).
fn eval_timer(kind: &'static str) -> std::sync::Arc<csp_obs::Histogram> {
    csp_obs::global().histogram(
        "csp_harness_eval_ns",
        "Evaluation wall time per work item, by kind.",
        &[("kind", kind)],
    )
}

/// The benchmark suite an experiment session runs against, generated once
/// and shared by every experiment.
#[derive(Debug)]
pub struct Suite {
    traces: Vec<BenchmarkTrace>,
    scale: f64,
    seed: u64,
}

impl Suite {
    /// Generates the seven-benchmark suite at `scale` with `seed`.
    pub fn generate(scale: f64, seed: u64) -> Self {
        Suite {
            traces: generate_suite(scale, seed),
            scale,
            seed,
        }
    }

    /// Assembles a suite from pre-generated traces (e.g. a
    /// [`crate::cache::TraceCache`]). The traces must cover every
    /// benchmark in [`Benchmark::ALL`] order — the order every
    /// per-benchmark result vector in the harness is indexed by.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::MissingBenchmark`] naming the first
    /// benchmark that is absent or out of order.
    pub fn from_parts(
        traces: Vec<BenchmarkTrace>,
        scale: f64,
        seed: u64,
    ) -> Result<Self, HarnessError> {
        for (i, &expected) in Benchmark::ALL.iter().enumerate() {
            if traces.get(i).map(|t| t.benchmark) != Some(expected) {
                return Err(HarnessError::MissingBenchmark(expected));
            }
        }
        Ok(Suite {
            traces,
            scale,
            seed,
        })
    }

    /// The traces, in [`Benchmark::ALL`] order.
    pub fn traces(&self) -> &[BenchmarkTrace] {
        &self.traces
    }

    /// The scale the suite was generated at.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The seed the suite was generated with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The trace for one benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::MissingBenchmark`] if the suite does not
    /// contain `benchmark` (impossible for suites built through
    /// [`Suite::generate`] or [`Suite::from_parts`], both of which
    /// guarantee full coverage).
    pub fn try_trace(&self, benchmark: Benchmark) -> Result<&BenchmarkTrace, HarnessError> {
        self.traces
            .iter()
            .find(|t| t.benchmark == benchmark)
            .ok_or(HarnessError::MissingBenchmark(benchmark))
    }

    /// The trace for one benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the suite does not contain `benchmark`; both
    /// constructors guarantee it does, so this is unreachable short of a
    /// harness bug. Fallible callers can use [`Suite::try_trace`].
    pub fn trace(&self, benchmark: Benchmark) -> &BenchmarkTrace {
        match self.try_trace(benchmark) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// A fingerprint of everything the suite's results depend on, used to
    /// key sweep checkpoints.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::new("suite-v1")
            .push_u64(self.scale.to_bits())
            .push_u64(self.seed)
            .push_u64(self.traces.len() as u64)
    }
}

/// The suite with every trace prepared for repeated evaluation: actuals
/// resolved once per benchmark, key streams computed once per
/// [`IndexSpec`] and shared (thread-safely) by every scheme of a sweep.
///
/// Building one of these up front is what turns an N-scheme sweep from N
/// full trace resolutions into one; all sweep entry points construct one
/// internally, and callers orchestrating several sweeps over the same
/// suite can build their own and reuse it.
#[derive(Debug)]
pub struct PreparedSuite<'s> {
    prepared: Vec<PreparedTrace<'s>>,
}

impl<'s> PreparedSuite<'s> {
    /// Prepares every trace of `suite` (one resolution pass per
    /// benchmark).
    pub fn new(suite: &'s Suite) -> Self {
        PreparedSuite {
            prepared: suite
                .traces
                .iter()
                .map(|b| PreparedTrace::new(&b.trace))
                .collect(),
        }
    }

    /// The prepared traces, in [`Benchmark::ALL`] order.
    pub fn traces(&self) -> &[PreparedTrace<'s>] {
        &self.prepared
    }
}

/// Evaluation results for one scheme over the whole suite.
#[derive(Clone, Debug)]
pub struct SchemeStats {
    /// The scheme evaluated.
    pub scheme: Scheme,
    /// Per-benchmark confusion matrices, in [`Benchmark::ALL`] order.
    pub per_benchmark: Vec<ConfusionMatrix>,
    /// Arithmetic mean of the per-benchmark screening rates (the paper's
    /// aggregation).
    pub mean: Screening,
}

impl SchemeStats {
    pub(crate) fn from_matrices(scheme: Scheme, per_benchmark: Vec<ConfusionMatrix>) -> Self {
        let screenings: Vec<Screening> = per_benchmark.iter().map(|m| m.screening()).collect();
        let mean = Screening::mean(&screenings).unwrap_or_default();
        SchemeStats {
            scheme,
            per_benchmark,
            mean,
        }
    }

    /// The scheme's cost figure on the 16-node machine.
    pub fn size_log2(&self) -> u32 {
        self.scheme.size_log2_bits(16)
    }

    /// The screening rates for one benchmark.
    pub fn screening_for(&self, idx: usize) -> Screening {
        self.per_benchmark[idx].screening()
    }
}

/// One sweep item that panicked twice (original attempt plus retry).
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// Index of the work item in the sweep's item list.
    pub index: usize,
    /// Human-readable name of the item (scheme notation, cell spec, ...).
    pub label: String,
    /// The panic payload, if it was a string.
    pub message: String,
}

/// The outcome of a panic-isolated sweep: every slot either a result or
/// accounted for in `failures`.
#[derive(Debug)]
pub struct SweepOutcome<T> {
    /// Per-item results, index-aligned with the sweep's item list; `None`
    /// exactly where `failures` has an entry.
    pub results: Vec<Option<T>>,
    /// The items that panicked twice.
    pub failures: Vec<SweepFailure>,
}

impl<T> SweepOutcome<T> {
    /// `true` when every item produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// The successful `(index, result)` pairs.
    pub fn successes(&self) -> impl Iterator<Item = (usize, &T)> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|v| (i, v)))
    }

    /// Unwraps a fully successful sweep into its results.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::WorkerPanic`] listing the failed items if
    /// any worker panicked twice.
    pub fn into_complete(self) -> Result<Vec<T>, HarnessError> {
        if let Some(first) = self.failures.first() {
            return Err(HarnessError::WorkerPanic {
                message: first.message.clone(),
                labels: self.failures.iter().map(|f| f.label.clone()).collect(),
            });
        }
        // No failures means every slot is filled, by construction.
        Ok(self.results.into_iter().flatten().collect())
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The panic-isolated work-stealing core: runs `job` for each index in
/// `todo` (indices into a `total`-slot result vector), catching panics and
/// retrying each failed item once. Results land in per-slot `OnceLock`s —
/// lock-free, so no poisoning and no contention on collection.
fn run_indices<T, J, L>(total: usize, todo: &[usize], job: &J, label: &L) -> SweepOutcome<T>
where
    T: Send + Sync,
    J: Fn(usize) -> T + Sync,
    L: Fn(usize) -> String + Sync,
{
    let threads = worker_count(todo.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<Result<T, SweepFailure>>> =
        (0..total).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= todo.len() {
                    break;
                }
                let i = todo[k];
                let attempt = || catch_unwind(AssertUnwindSafe(|| job(i)));
                let outcome = match attempt() {
                    Ok(v) => Ok(v),
                    // Retry once: transient failures (e.g. allocation
                    // pressure) get a second chance; deterministic
                    // panics fail cleanly.
                    Err(_) => attempt().map_err(|payload| SweepFailure {
                        index: i,
                        label: label(i),
                        message: panic_message(payload.as_ref()),
                    }),
                };
                // Each index is claimed exactly once, so the slot is
                // always empty; a second set is a harness bug but not
                // worth panicking a worker over.
                let _ = slots[i].set(outcome);
            });
        }
    });
    let mut results: Vec<Option<T>> = Vec::with_capacity(total);
    let mut failures = Vec::new();
    for slot in slots {
        match slot.into_inner() {
            Some(Ok(v)) => results.push(Some(v)),
            Some(Err(f)) => {
                failures.push(f);
                results.push(None);
            }
            None => results.push(None), // index was not in `todo`
        }
    }
    SweepOutcome { results, failures }
}

/// Runs a checkpointed sweep: resumes completed cells from `ckpt`, runs
/// the remainder in panic-isolated chunks, and appends each chunk's
/// results to the log before starting the next (periodic persistence — an
/// interrupted run loses at most one chunk of work).
fn run_checkpointed<T, J, L>(
    total: usize,
    ckpt: &mut SweepCheckpoint<T>,
    done: Vec<(usize, T)>,
    job: &J,
    label: &L,
) -> Result<SweepOutcome<T>, HarnessError>
where
    T: CheckpointPayload + Send + Sync,
    J: Fn(usize) -> T + Sync,
    L: Fn(usize) -> String + Sync,
{
    let mut results: Vec<Option<T>> = (0..total).map(|_| None).collect();
    for (i, v) in done {
        if i < total {
            results[i] = Some(v);
        }
    }
    let todo: Vec<usize> = (0..total).filter(|&i| results[i].is_none()).collect();
    let chunk_size = (worker_count(todo.len()) * 4).max(1);
    let mut failures = Vec::new();
    for chunk in todo.chunks(chunk_size) {
        let outcome = run_indices(total, chunk, job, label);
        for (i, r) in outcome.results.into_iter().enumerate() {
            if let Some(v) = r {
                ckpt.record(i, &v)?;
                results[i] = Some(v);
            }
        }
        failures.extend(outcome.failures);
    }
    Ok(SweepOutcome { results, failures })
}

/// Evaluates one scheme over every benchmark (sequentially, preparing
/// each trace per call — the naive reference path; sweeps should prepare
/// once via [`PreparedSuite`] / [`evaluate_scheme_prepared`]).
pub fn evaluate_scheme(suite: &Suite, scheme: &Scheme) -> SchemeStats {
    let per_benchmark = suite
        .traces
        .iter()
        .map(|b| run_scheme(&b.trace, scheme))
        .collect();
    SchemeStats::from_matrices(*scheme, per_benchmark)
}

/// Evaluates one scheme over an already-prepared suite. Bit-identical to
/// [`evaluate_scheme`]; the trace resolutions and key streams come from
/// `prepared`'s shared columns.
pub fn evaluate_scheme_prepared(prepared: &PreparedSuite<'_>, scheme: &Scheme) -> SchemeStats {
    let started = Instant::now();
    let per_benchmark = prepared
        .traces()
        .iter()
        .map(|pt| run_scheme_prepared(pt, scheme))
        .collect();
    let stats = SchemeStats::from_matrices(*scheme, per_benchmark);
    eval_timer("scheme").record_duration(started.elapsed());
    stats
}

/// Evaluates many schemes in parallel with panic isolation: a scheme whose
/// evaluation panics (twice) is reported in the outcome's `failures`, the
/// rest still complete. The suite is prepared once and shared by every
/// worker.
pub fn try_evaluate_schemes(suite: &Suite, schemes: &[Scheme]) -> SweepOutcome<SchemeStats> {
    let prepared = PreparedSuite::new(suite);
    let todo: Vec<usize> = (0..schemes.len()).collect();
    run_indices(
        schemes.len(),
        &todo,
        &|i| evaluate_scheme_prepared(&prepared, &schemes[i]),
        &|i| schemes[i].to_string(),
    )
}

/// Evaluates many schemes in parallel (work-stealing over a shared index).
///
/// # Panics
///
/// Panics if any scheme's evaluation panics twice in a row (see
/// [`try_evaluate_schemes`] for the fallible form).
pub fn evaluate_schemes(suite: &Suite, schemes: &[Scheme]) -> Vec<SchemeStats> {
    match try_evaluate_schemes(suite, schemes).into_complete() {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// [`try_evaluate_schemes`] with a resumable checkpoint at `path`.
///
/// The checkpoint is keyed by the suite and scheme list: resuming with a
/// different suite or scheme set restarts from scratch rather than mixing
/// results. A resumed sweep's results are bitwise identical to an
/// uninterrupted run's.
///
/// # Errors
///
/// Returns [`HarnessError::Io`]/[`HarnessError::Checkpoint`] on
/// checkpoint failures. Worker panics are *not* errors; they are reported
/// in the outcome.
pub fn evaluate_schemes_checkpointed(
    suite: &Suite,
    schemes: &[Scheme],
    path: &Path,
) -> Result<SweepOutcome<SchemeStats>, HarnessError> {
    let mut fp = suite.fingerprint().push(b"schemes-v1");
    for s in schemes {
        fp = fp.push(s.to_string().as_bytes());
    }
    let (mut ckpt, done) = SweepCheckpoint::open(path, fp.finish())?;
    let prepared = PreparedSuite::new(suite);
    run_checkpointed(
        schemes.len(),
        &mut ckpt,
        done,
        &|i| evaluate_scheme_prepared(&prepared, &schemes[i]),
        &|i| schemes[i].to_string(),
    )
}

/// One cell of a family sweep: all `union`/`inter` depths for one
/// `(index, update)` point, per benchmark.
#[derive(Clone, Debug)]
pub struct FamilyCell {
    /// The index specification.
    pub index: IndexSpec,
    /// The update mode.
    pub update: UpdateMode,
    /// Per-benchmark family results, in [`Benchmark::ALL`] order.
    pub per_benchmark: Vec<FamilyResult>,
}

impl FamilyCell {
    /// Extracts the [`SchemeStats`] for `function` at `depth` (1-based).
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::MissingFamily`] for functions a family
    /// sweep does not evaluate (`pas`, `overlap-last`).
    ///
    /// # Panics
    ///
    /// Panics if `depth` exceeds the sweep's `max_depth` (a caller bug:
    /// the sweep never produced that depth), or if `depth != 1` for
    /// `last`.
    pub fn try_stats(
        &self,
        function: PredictionFunction,
        depth: usize,
    ) -> Result<SchemeStats, HarnessError> {
        let matrices: Vec<ConfusionMatrix> = self
            .per_benchmark
            .iter()
            .map(|f| match function {
                PredictionFunction::Union => Ok(f.union[depth - 1]),
                PredictionFunction::Inter => Ok(f.inter[depth - 1]),
                PredictionFunction::Last => {
                    assert_eq!(depth, 1, "last prediction has a fixed depth of 1");
                    Ok(f.union[0])
                }
                PredictionFunction::Pas | PredictionFunction::OverlapLast => {
                    Err(HarnessError::MissingFamily(function))
                }
            })
            .collect::<Result<_, _>>()?;
        let scheme = Scheme::new(function, self.index, depth, self.update);
        Ok(SchemeStats::from_matrices(scheme, matrices))
    }

    /// Extracts the [`SchemeStats`] for `function` at `depth` (1-based).
    ///
    /// # Panics
    ///
    /// Panics where [`FamilyCell::try_stats`] errors.
    pub fn stats(&self, function: PredictionFunction, depth: usize) -> SchemeStats {
        match self.try_stats(function, depth) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Mean screening across benchmarks for `function` at `depth`.
    pub fn mean(&self, function: PredictionFunction, depth: usize) -> Screening {
        self.stats(function, depth).mean
    }
}

/// The `(index, update)` grid of a family sweep, in sweep order.
fn family_cells(indexes: &[IndexSpec], updates: &[UpdateMode]) -> Vec<(IndexSpec, UpdateMode)> {
    indexes
        .iter()
        .flat_map(|&ix| updates.iter().map(move |&u| (ix, u)))
        .collect()
}

fn family_job<'a>(
    prepared: &'a PreparedSuite<'a>,
    cells: &'a [(IndexSpec, UpdateMode)],
    max_depth: usize,
) -> impl Fn(usize) -> FamilyCell + Sync + 'a {
    move |i| {
        let started = Instant::now();
        let (index, update) = cells[i];
        let per_benchmark = prepared
            .traces()
            .iter()
            .map(|pt| run_history_family_prepared(pt, index, update, max_depth))
            .collect();
        eval_timer("family_cell").record_duration(started.elapsed());
        FamilyCell {
            index,
            update,
            per_benchmark,
        }
    }
}

fn family_label<'a>(cells: &'a [(IndexSpec, UpdateMode)]) -> impl Fn(usize) -> String + Sync + 'a {
    move |i| {
        let (index, update) = cells[i];
        format!("family({index})[{update}]")
    }
}

/// Sweeps the `union`/`inter` family over every `(index, update)` pair in
/// parallel with panic isolation. The depth dimension comes for free
/// (single pass per cell).
///
/// Work is planned as one item per `(benchmark, index)` group rather than
/// per `(index, update)` cell: a worker that claims a group runs the
/// benchmark's prepared key stream through *every* update mode while the
/// stream is hot in cache, then the groups are reassembled into the cell
/// grid. A group that panics twice fails every cell that needed it.
pub fn try_sweep_families(
    suite: &Suite,
    indexes: &[IndexSpec],
    updates: &[UpdateMode],
    max_depth: usize,
) -> SweepOutcome<FamilyCell> {
    let cells = family_cells(indexes, updates);
    if cells.is_empty() {
        return SweepOutcome {
            results: Vec::new(),
            failures: Vec::new(),
        };
    }
    let prepared = PreparedSuite::new(suite);
    let n_bench = suite.traces.len();
    // Group g = index i x benchmark b, laid out index-major.
    let groups: Vec<(usize, usize)> = (0..indexes.len())
        .flat_map(|i| (0..n_bench).map(move |b| (i, b)))
        .collect();
    let todo: Vec<usize> = (0..groups.len()).collect();
    let job = |g: usize| -> Vec<FamilyResult> {
        let started = Instant::now();
        let (i, b) = groups[g];
        let pt = &prepared.traces()[b];
        let out = updates
            .iter()
            .map(|&u| run_history_family_prepared(pt, indexes[i], u, max_depth))
            .collect();
        eval_timer("family_group").record_duration(started.elapsed());
        // This group is the only consumer of the (trace, index) stream;
        // evicting here keeps a design-space-sized sweep's footprint at
        // O(live groups) instead of O(all indexes).
        pt.evict_stream(indexes[i]);
        out
    };
    let label = |g: usize| -> String {
        let (i, b) = groups[g];
        format!("family({})@{}", indexes[i], suite.traces[b].benchmark)
    };
    let grouped = run_indices(groups.len(), &todo, &job, &label);

    // Reassemble the groups into the (index, update) cell grid the sweep
    // is specified in. A cell exists iff every benchmark group under its
    // index survived.
    let mut results: Vec<Option<FamilyCell>> = Vec::with_capacity(cells.len());
    let mut failures = Vec::new();
    for (c, &(index, update)) in cells.iter().enumerate() {
        let i = c / updates.len();
        let j = c % updates.len();
        let per_benchmark: Option<Vec<FamilyResult>> = (0..n_bench)
            .map(|b| {
                grouped.results[i * n_bench + b]
                    .as_ref()
                    .map(|group| group[j].clone())
            })
            .collect();
        match per_benchmark {
            Some(per_benchmark) => results.push(Some(FamilyCell {
                index,
                update,
                per_benchmark,
            })),
            None => {
                let message = grouped
                    .failures
                    .iter()
                    .find(|f| f.index / n_bench == i)
                    .map(|f| f.message.clone())
                    .unwrap_or_else(|| "benchmark group failed".to_string());
                failures.push(SweepFailure {
                    index: c,
                    label: format!("family({index})[{update}]"),
                    message,
                });
                results.push(None);
            }
        }
    }
    SweepOutcome { results, failures }
}

/// Sweeps the `union`/`inter` family over every `(index, update)` pair, in
/// parallel. The depth dimension comes for free (single pass per cell).
///
/// # Panics
///
/// Panics if any cell's evaluation panics twice in a row (see
/// [`try_sweep_families`] for the fallible form).
pub fn sweep_families(
    suite: &Suite,
    indexes: &[IndexSpec],
    updates: &[UpdateMode],
    max_depth: usize,
) -> Vec<FamilyCell> {
    match try_sweep_families(suite, indexes, updates, max_depth).into_complete() {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// [`try_sweep_families`] with a resumable checkpoint at `path`.
///
/// Keyed by the suite and the full `(indexes, updates, max_depth)` grid;
/// a resumed sweep is bitwise identical to an uninterrupted one.
///
/// # Errors
///
/// Returns [`HarnessError::Io`]/[`HarnessError::Checkpoint`] on
/// checkpoint failures. Worker panics are reported in the outcome, not as
/// errors.
pub fn sweep_families_checkpointed(
    suite: &Suite,
    indexes: &[IndexSpec],
    updates: &[UpdateMode],
    max_depth: usize,
    path: &Path,
) -> Result<SweepOutcome<FamilyCell>, HarnessError> {
    let cells = family_cells(indexes, updates);
    let mut fp = suite
        .fingerprint()
        .push(b"families-v1")
        .push_u64(max_depth as u64);
    for (index, update) in &cells {
        fp = fp
            .push(format!("{index}").as_bytes())
            .push(format!("{update}").as_bytes());
    }
    let (mut ckpt, done) = SweepCheckpoint::open(path, fp.finish())?;
    // Per-cell job granularity keeps the fingerprint and log layout
    // identical to earlier versions (old checkpoints stay resumable); the
    // jobs still share one prepared suite, so resolutions and key streams
    // are paid once, not per cell.
    let prepared = PreparedSuite::new(suite);
    let job = family_job(&prepared, &cells, max_depth);
    let label = family_label(&cells);
    run_checkpointed(cells.len(), &mut ckpt, done, &job, &label)
}

fn worker_count(tasks: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(tasks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> Suite {
        Suite::generate(0.02, 11)
    }

    #[test]
    fn suite_has_all_benchmarks() {
        let s = tiny_suite();
        assert_eq!(s.traces().len(), 7);
        assert_eq!(s.trace(Benchmark::Gauss).benchmark, Benchmark::Gauss);
        assert!((s.scale() - 0.02).abs() < 1e-12);
        assert_eq!(s.seed(), 11);
    }

    #[test]
    fn from_parts_validates_coverage_and_order() {
        let s = tiny_suite();
        let mut traces = s.traces.clone();
        let rebuilt = Suite::from_parts(traces.clone(), 0.02, 11).expect("full set");
        assert_eq!(rebuilt.trace(Benchmark::Water).benchmark, Benchmark::Water);

        traces.swap(0, 1);
        let err = Suite::from_parts(traces.clone(), 0.02, 11).unwrap_err();
        assert!(matches!(err, HarnessError::MissingBenchmark(_)));

        traces.truncate(3);
        assert!(Suite::from_parts(traces, 0.02, 11).is_err());
    }

    #[test]
    fn try_trace_reports_missing_benchmark() {
        let s = tiny_suite();
        assert!(s.try_trace(Benchmark::Mp3d).is_ok());
        let partial = Suite {
            traces: Vec::new(),
            scale: 1.0,
            seed: 0,
        };
        let err = partial.try_trace(Benchmark::Mp3d).unwrap_err();
        assert!(err.to_string().contains("mp3d"), "{err}");
    }

    #[test]
    fn parallel_matches_sequential() {
        let suite = tiny_suite();
        let schemes: Vec<Scheme> = ["last(pid+pc8)1", "inter(pid+pc8)2", "union(dir+add8)4"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let par = evaluate_schemes(&suite, &schemes);
        for (i, scheme) in schemes.iter().enumerate() {
            let seq = evaluate_scheme(&suite, scheme);
            assert_eq!(par[i].per_benchmark, seq.per_benchmark);
            assert_eq!(par[i].scheme, *scheme);
        }
    }

    #[test]
    fn panicking_item_is_isolated_and_reported() {
        // Item 2 always panics; the other four must still complete.
        let todo: Vec<usize> = (0..5).collect();
        let outcome = run_indices(
            5,
            &todo,
            &|i| {
                if i == 2 {
                    panic!("injected failure on item {i}");
                }
                i * 10
            },
            &|i| format!("item {i}"),
        );
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 2);
        assert_eq!(outcome.failures[0].label, "item 2");
        assert!(outcome.failures[0].message.contains("injected failure"));
        assert!(!outcome.is_complete());
        let ok: Vec<(usize, &usize)> = outcome.successes().collect();
        assert_eq!(ok.len(), 4);
        for (i, &v) in ok {
            assert_eq!(v, i * 10);
        }
        let err = outcome.into_complete().unwrap_err();
        assert!(matches!(err, HarnessError::WorkerPanic { .. }), "{err}");
    }

    #[test]
    fn flaky_item_succeeds_on_retry() {
        use std::sync::atomic::AtomicBool;
        let tripped = AtomicBool::new(false);
        let todo = [0usize];
        let outcome = run_indices(
            1,
            &todo,
            &|i| {
                if !tripped.swap(true, Ordering::SeqCst) {
                    panic!("transient failure");
                }
                i + 1
            },
            &|i| format!("item {i}"),
        );
        assert!(outcome.is_complete());
        assert_eq!(outcome.into_complete().unwrap(), vec![1]);
    }

    #[test]
    fn family_cell_matches_direct_evaluation() {
        let suite = tiny_suite();
        let ix = IndexSpec::new(true, 4, false, 4);
        let cells = sweep_families(&suite, &[ix], &[UpdateMode::Direct], 2);
        assert_eq!(cells.len(), 1);
        let from_family = cells[0].stats(PredictionFunction::Inter, 2);
        let direct = evaluate_scheme(
            &suite,
            &Scheme::new(PredictionFunction::Inter, ix, 2, UpdateMode::Direct),
        );
        assert_eq!(from_family.per_benchmark, direct.per_benchmark);
    }

    #[test]
    fn grouped_sweep_matches_naive_per_cell_runs() {
        use csp_core::engine::run_history_family;
        let suite = tiny_suite();
        let indexes = [
            IndexSpec::new(true, 2, false, 0),
            IndexSpec::new(false, 0, false, 4),
            IndexSpec::new(true, 2, true, 2),
        ];
        let updates = [
            UpdateMode::Direct,
            UpdateMode::Forwarded,
            UpdateMode::Ordered,
        ];
        let outcome = try_sweep_families(&suite, &indexes, &updates, 3);
        assert!(outcome.is_complete());
        let cells = outcome.into_complete().unwrap();
        assert_eq!(cells.len(), indexes.len() * updates.len());
        // Cell order is index-major, update-minor, and every cell is
        // bit-identical to a naive single-cell evaluation.
        for (c, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, indexes[c / updates.len()]);
            assert_eq!(cell.update, updates[c % updates.len()]);
            for (b, bench) in suite.traces().iter().enumerate() {
                assert_eq!(
                    cell.per_benchmark[b],
                    run_history_family(&bench.trace, cell.index, cell.update, 3),
                    "cell {c} benchmark {}",
                    bench.benchmark
                );
            }
        }
    }

    #[test]
    fn prepared_suite_shares_resolutions_across_schemes() {
        let suite = tiny_suite();
        let prepared = PreparedSuite::new(&suite);
        assert_eq!(prepared.traces().len(), suite.traces().len());
        let scheme: Scheme = "union(pid+pc8)2[forwarded]".parse().unwrap();
        let fast = evaluate_scheme_prepared(&prepared, &scheme);
        let naive = evaluate_scheme(&suite, &scheme);
        assert_eq!(fast.per_benchmark, naive.per_benchmark);
        assert_eq!(fast.scheme, naive.scheme);
    }

    #[test]
    fn empty_family_grid_returns_empty_outcome() {
        let suite = tiny_suite();
        let outcome = try_sweep_families(&suite, &[], &[UpdateMode::Direct], 2);
        assert!(outcome.is_complete());
        assert!(outcome.results.is_empty());
        let outcome = try_sweep_families(&suite, &[IndexSpec::none()], &[], 2);
        assert!(outcome.is_complete());
        assert!(outcome.results.is_empty());
    }

    #[test]
    fn try_stats_rejects_unswept_functions() {
        let suite = tiny_suite();
        let ix = IndexSpec::new(true, 4, false, 4);
        let cells = sweep_families(&suite, &[ix], &[UpdateMode::Direct], 2);
        let err = cells[0].try_stats(PredictionFunction::Pas, 1).unwrap_err();
        assert!(matches!(err, HarnessError::MissingFamily(_)), "{err}");
        assert!(cells[0].try_stats(PredictionFunction::Union, 2).is_ok());
    }

    #[test]
    #[should_panic(expected = "family sweep has no pas results")]
    fn stats_panic_message_names_the_function() {
        let suite = tiny_suite();
        let ix = IndexSpec::new(false, 2, false, 2);
        let cells = sweep_families(&suite, &[ix], &[UpdateMode::Direct], 1);
        let _ = cells[0].stats(PredictionFunction::Pas, 1);
    }

    #[test]
    fn scheme_stats_aggregates_mean() {
        let suite = tiny_suite();
        let stats = evaluate_scheme(&suite, &"last(pid+pc8)1".parse().unwrap());
        assert_eq!(stats.per_benchmark.len(), 7);
        let manual: Vec<_> = stats.per_benchmark.iter().map(|m| m.screening()).collect();
        let mean = Screening::mean(&manual).unwrap();
        assert!((stats.mean.pvp - mean.pvp).abs() < 1e-12);
        assert!(stats.size_log2() >= 16);
    }

    #[test]
    fn checkpointed_schemes_resume_bitwise_identical() {
        let suite = Suite::generate(0.01, 4);
        let schemes: Vec<Scheme> = ["last(pid+pc8)1", "union(pid+pc8)2", "inter(dir+add8)2"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let path = std::env::temp_dir().join(format!("csp-runner-ckpt-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let fresh = evaluate_schemes(&suite, &schemes);
        // First pass populates the checkpoint...
        let first = evaluate_schemes_checkpointed(&suite, &schemes, &path)
            .unwrap()
            .into_complete()
            .unwrap();
        // ...second pass resumes everything from it (no recomputation).
        let resumed = evaluate_schemes_checkpointed(&suite, &schemes, &path)
            .unwrap()
            .into_complete()
            .unwrap();
        for ((a, b), c) in fresh.iter().zip(&first).zip(&resumed) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.per_benchmark, b.per_benchmark);
            assert_eq!(b.per_benchmark, c.per_benchmark);
            // Bitwise on the derived floats too.
            assert_eq!(a.mean.pvp.to_bits(), c.mean.pvp.to_bits());
            assert_eq!(a.mean.sensitivity.to_bits(), c.mean.sensitivity.to_bits());
            assert_eq!(a.mean.prevalence.to_bits(), c.mean.prevalence.to_bits());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpointed_families_skip_finished_cells() {
        let suite = Suite::generate(0.01, 4);
        let indexes = [
            IndexSpec::new(true, 2, false, 0),
            IndexSpec::new(false, 0, true, 2),
        ];
        let updates = [UpdateMode::Direct];
        let path =
            std::env::temp_dir().join(format!("csp-runner-famckpt-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let fresh = sweep_families(&suite, &indexes, &updates, 2);
        let first = sweep_families_checkpointed(&suite, &indexes, &updates, 2, &path)
            .unwrap()
            .into_complete()
            .unwrap();
        let resumed = sweep_families_checkpointed(&suite, &indexes, &updates, 2, &path)
            .unwrap()
            .into_complete()
            .unwrap();
        assert_eq!(fresh.len(), resumed.len());
        for ((a, b), c) in fresh.iter().zip(&first).zip(&resumed) {
            assert_eq!(a.index, c.index);
            assert_eq!(a.update, c.update);
            assert_eq!(a.per_benchmark, b.per_benchmark);
            assert_eq!(b.per_benchmark, c.per_benchmark);
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// Dumps the full paper design space — every in-budget `union`/`inter`
/// scheme under both implementable update modes — as tab-separated values
/// for offline analysis: scheme, size, mean prevalence/pvp/sensitivity,
/// then per-benchmark pvp and sensitivity columns.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn dump_sweep_tsv<W: std::io::Write>(suite: &Suite, mut w: W) -> std::io::Result<()> {
    use crate::space::DesignSpace;
    let space = DesignSpace::paper();
    let max_depth = *space.depths.iter().max().expect("non-empty depths");
    let cells = sweep_families(suite, &space.index_specs(), &space.updates, max_depth);

    write!(w, "scheme\tsize\tprev\tpvp\tsens")?;
    for b in Benchmark::ALL {
        write!(w, "\t{b}_pvp\t{b}_sens")?;
    }
    writeln!(w)?;
    for cell in &cells {
        for &f in &space.functions {
            for &d in &space.depths {
                if f == PredictionFunction::Inter && d == 1 {
                    continue; // identical to union depth 1 (`last`)
                }
                let stats = cell.stats(f, d);
                if stats.size_log2() > space.max_size_log2 {
                    continue;
                }
                write!(
                    w,
                    "{}\t{}\t{:.4}\t{:.4}\t{:.4}",
                    stats.scheme,
                    stats.size_log2(),
                    stats.mean.prevalence,
                    stats.mean.pvp,
                    stats.mean.sensitivity
                )?;
                for i in 0..Benchmark::ALL.len() {
                    let s = stats.screening_for(i);
                    write!(w, "\t{:.4}\t{:.4}", s.pvp, s.sensitivity)?;
                }
                writeln!(w)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tsv_tests {
    use super::*;

    #[test]
    fn tsv_dump_has_header_and_schemes() {
        let suite = Suite::generate(0.01, 2);
        let mut buf = Vec::new();
        dump_sweep_tsv(&suite, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("scheme\tsize\tprev"));
        assert!(header.contains("water_sens"));
        let body: Vec<&str> = lines.collect();
        assert!(
            body.len() > 1000,
            "expected the full space, got {}",
            body.len()
        );
        // Every row has the same column count as the header.
        let cols = header.split('\t').count();
        for row in body.iter().take(50) {
            assert_eq!(row.split('\t').count(), cols);
        }
    }
}
