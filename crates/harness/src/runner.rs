//! Parallel evaluation of schemes over the benchmark suite.

use csp_core::engine::{run_history_family, run_scheme, FamilyResult};
use csp_core::{IndexSpec, PredictionFunction, Scheme, UpdateMode};
use csp_metrics::{ConfusionMatrix, Screening};
use csp_workloads::{generate_suite, Benchmark, BenchmarkTrace};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The benchmark suite an experiment session runs against, generated once
/// and shared by every experiment.
#[derive(Debug)]
pub struct Suite {
    traces: Vec<BenchmarkTrace>,
    scale: f64,
}

impl Suite {
    /// Generates the seven-benchmark suite at `scale` with `seed`.
    pub fn generate(scale: f64, seed: u64) -> Self {
        Suite {
            traces: generate_suite(scale, seed),
            scale,
        }
    }

    /// The traces, in [`Benchmark::ALL`] order.
    pub fn traces(&self) -> &[BenchmarkTrace] {
        &self.traces
    }

    /// The scale the suite was generated at.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The trace for one benchmark.
    pub fn trace(&self, benchmark: Benchmark) -> &BenchmarkTrace {
        self.traces
            .iter()
            .find(|t| t.benchmark == benchmark)
            .expect("suite contains every benchmark")
    }
}

/// Evaluation results for one scheme over the whole suite.
#[derive(Clone, Debug)]
pub struct SchemeStats {
    /// The scheme evaluated.
    pub scheme: Scheme,
    /// Per-benchmark confusion matrices, in [`Benchmark::ALL`] order.
    pub per_benchmark: Vec<ConfusionMatrix>,
    /// Arithmetic mean of the per-benchmark screening rates (the paper's
    /// aggregation).
    pub mean: Screening,
}

impl SchemeStats {
    fn from_matrices(scheme: Scheme, per_benchmark: Vec<ConfusionMatrix>) -> Self {
        let screenings: Vec<Screening> = per_benchmark.iter().map(|m| m.screening()).collect();
        let mean = Screening::mean(&screenings).unwrap_or_default();
        SchemeStats {
            scheme,
            per_benchmark,
            mean,
        }
    }

    /// The scheme's cost figure on the 16-node machine.
    pub fn size_log2(&self) -> u32 {
        self.scheme.size_log2_bits(16)
    }

    /// The screening rates for one benchmark.
    pub fn screening_for(&self, idx: usize) -> Screening {
        self.per_benchmark[idx].screening()
    }
}

/// Evaluates one scheme over every benchmark (sequentially).
pub fn evaluate_scheme(suite: &Suite, scheme: &Scheme) -> SchemeStats {
    let per_benchmark = suite
        .traces
        .iter()
        .map(|b| run_scheme(&b.trace, scheme))
        .collect();
    SchemeStats::from_matrices(*scheme, per_benchmark)
}

/// Evaluates many schemes in parallel (work-stealing over a shared index).
pub fn evaluate_schemes(suite: &Suite, schemes: &[Scheme]) -> Vec<SchemeStats> {
    let threads = worker_count(schemes.len());
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<SchemeStats>>> = Mutex::new(vec![None; schemes.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= schemes.len() {
                    break;
                }
                let stats = evaluate_scheme(suite, &schemes[i]);
                results.lock().expect("no panics hold the lock")[i] = Some(stats);
            });
        }
    });
    results
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// One cell of a family sweep: all `union`/`inter` depths for one
/// `(index, update)` point, per benchmark.
#[derive(Clone, Debug)]
pub struct FamilyCell {
    /// The index specification.
    pub index: IndexSpec,
    /// The update mode.
    pub update: UpdateMode,
    /// Per-benchmark family results, in [`Benchmark::ALL`] order.
    pub per_benchmark: Vec<FamilyResult>,
}

impl FamilyCell {
    /// Extracts the [`SchemeStats`] for `function` at `depth` (1-based).
    pub fn stats(&self, function: PredictionFunction, depth: usize) -> SchemeStats {
        let matrices: Vec<ConfusionMatrix> = self
            .per_benchmark
            .iter()
            .map(|f| match function {
                PredictionFunction::Union => f.union[depth - 1],
                PredictionFunction::Inter => f.inter[depth - 1],
                PredictionFunction::Last => {
                    assert_eq!(depth, 1);
                    f.union[0]
                }
                other => panic!("family sweep has no {other} results"),
            })
            .collect();
        let scheme = Scheme::new(function, self.index, depth, self.update);
        SchemeStats::from_matrices(scheme, matrices)
    }

    /// Mean screening across benchmarks for `function` at `depth`.
    pub fn mean(&self, function: PredictionFunction, depth: usize) -> Screening {
        self.stats(function, depth).mean
    }
}

/// Sweeps the `union`/`inter` family over every `(index, update)` pair, in
/// parallel. The depth dimension comes for free (single pass per cell).
pub fn sweep_families(
    suite: &Suite,
    indexes: &[IndexSpec],
    updates: &[UpdateMode],
    max_depth: usize,
) -> Vec<FamilyCell> {
    let cells: Vec<(IndexSpec, UpdateMode)> = indexes
        .iter()
        .flat_map(|&ix| updates.iter().map(move |&u| (ix, u)))
        .collect();
    let threads = worker_count(cells.len());
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<FamilyCell>>> = Mutex::new(vec![None; cells.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let (index, update) = cells[i];
                let per_benchmark = suite
                    .traces
                    .iter()
                    .map(|b| run_history_family(&b.trace, index, update, max_depth))
                    .collect();
                results.lock().expect("no panics hold the lock")[i] = Some(FamilyCell {
                    index,
                    update,
                    per_benchmark,
                });
            });
        }
    });
    results
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .map(|c| c.expect("every slot filled"))
        .collect()
}

fn worker_count(tasks: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(tasks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> Suite {
        Suite::generate(0.02, 11)
    }

    #[test]
    fn suite_has_all_benchmarks() {
        let s = tiny_suite();
        assert_eq!(s.traces().len(), 7);
        assert_eq!(s.trace(Benchmark::Gauss).benchmark, Benchmark::Gauss);
        assert!((s.scale() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential() {
        let suite = tiny_suite();
        let schemes: Vec<Scheme> = ["last(pid+pc8)1", "inter(pid+pc8)2", "union(dir+add8)4"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let par = evaluate_schemes(&suite, &schemes);
        for (i, scheme) in schemes.iter().enumerate() {
            let seq = evaluate_scheme(&suite, scheme);
            assert_eq!(par[i].per_benchmark, seq.per_benchmark);
            assert_eq!(par[i].scheme, *scheme);
        }
    }

    #[test]
    fn family_cell_matches_direct_evaluation() {
        let suite = tiny_suite();
        let ix = IndexSpec::new(true, 4, false, 4);
        let cells = sweep_families(&suite, &[ix], &[UpdateMode::Direct], 2);
        assert_eq!(cells.len(), 1);
        let from_family = cells[0].stats(PredictionFunction::Inter, 2);
        let direct = evaluate_scheme(
            &suite,
            &Scheme::new(PredictionFunction::Inter, ix, 2, UpdateMode::Direct),
        );
        assert_eq!(from_family.per_benchmark, direct.per_benchmark);
    }

    #[test]
    fn scheme_stats_aggregates_mean() {
        let suite = tiny_suite();
        let stats = evaluate_scheme(&suite, &"last(pid+pc8)1".parse().unwrap());
        assert_eq!(stats.per_benchmark.len(), 7);
        let manual: Vec<_> = stats.per_benchmark.iter().map(|m| m.screening()).collect();
        let mean = Screening::mean(&manual).unwrap();
        assert!((stats.mean.pvp - mean.pvp).abs() < 1e-12);
        assert!(stats.size_log2() >= 16);
    }
}

/// Dumps the full paper design space — every in-budget `union`/`inter`
/// scheme under both implementable update modes — as tab-separated values
/// for offline analysis: scheme, size, mean prevalence/pvp/sensitivity,
/// then per-benchmark pvp and sensitivity columns.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn dump_sweep_tsv<W: std::io::Write>(suite: &Suite, mut w: W) -> std::io::Result<()> {
    use crate::space::DesignSpace;
    let space = DesignSpace::paper();
    let max_depth = *space.depths.iter().max().expect("non-empty depths");
    let cells = sweep_families(suite, &space.index_specs(), &space.updates, max_depth);

    write!(w, "scheme\tsize\tprev\tpvp\tsens")?;
    for b in Benchmark::ALL {
        write!(w, "\t{b}_pvp\t{b}_sens")?;
    }
    writeln!(w)?;
    for cell in &cells {
        for &f in &space.functions {
            for &d in &space.depths {
                if f == PredictionFunction::Inter && d == 1 {
                    continue; // identical to union depth 1 (`last`)
                }
                let stats = cell.stats(f, d);
                if stats.size_log2() > space.max_size_log2 {
                    continue;
                }
                write!(
                    w,
                    "{}\t{}\t{:.4}\t{:.4}\t{:.4}",
                    stats.scheme,
                    stats.size_log2(),
                    stats.mean.prevalence,
                    stats.mean.pvp,
                    stats.mean.sensitivity
                )?;
                for i in 0..Benchmark::ALL.len() {
                    let s = stats.screening_for(i);
                    write!(w, "\t{:.4}\t{:.4}", s.pvp, s.sensitivity)?;
                }
                writeln!(w)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tsv_tests {
    use super::*;

    #[test]
    fn tsv_dump_has_header_and_schemes() {
        let suite = Suite::generate(0.01, 2);
        let mut buf = Vec::new();
        dump_sweep_tsv(&suite, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("scheme\tsize\tprev"));
        assert!(header.contains("water_sens"));
        let body: Vec<&str> = lines.collect();
        assert!(
            body.len() > 1000,
            "expected the full space, got {}",
            body.len()
        );
        // Every row has the same column count as the header.
        let cols = header.split('\t').count();
        for row in body.iter().take(50) {
            assert_eq!(row.split('\t').count(), cols);
        }
    }
}
