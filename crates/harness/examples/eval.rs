//! Evaluate arbitrary schemes over the benchmark suite.
//!
//! ```text
//! cargo run --release -p csp-harness --example eval -- \
//!     --scale 0.3 "inter(pid+add6)4[direct]" "union(dir+add2)4"
//! ```

use csp_core::Scheme;
use csp_harness::runner::{evaluate_scheme, Suite};
use csp_workloads::Benchmark;

fn main() {
    let mut scale = 0.3f64;
    let mut per_bench = false;
    let mut specs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            scale = args.next().unwrap().parse().unwrap();
        } else if a == "--per-bench" {
            per_bench = true;
        } else {
            specs.push(a);
        }
    }
    let suite = Suite::generate(scale, 1);
    println!("{:34} {:>4} {:>6} {:>6}", "scheme", "size", "pvp", "sens");
    for spec in specs {
        let scheme: Scheme = spec.parse().expect("valid scheme");
        let st = evaluate_scheme(&suite, &scheme);
        println!(
            "{:34} {:>4} {:>6.3} {:>6.3}",
            scheme.to_string(),
            st.size_log2(),
            st.mean.pvp,
            st.mean.sensitivity
        );
        if per_bench {
            for (i, b) in Benchmark::ALL.iter().enumerate() {
                let s = st.screening_for(i);
                println!(
                    "    {:10} pvp {:>6.3} sens {:>6.3}",
                    b.name(),
                    s.pvp,
                    s.sensitivity
                );
            }
        }
    }
}
