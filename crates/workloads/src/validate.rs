//! Calibration validation: checks a generated trace against the paper's
//! per-benchmark sharing signature.
//!
//! The generators substitute for real SPLASH traces, so the repository
//! needs a standing, testable definition of "close enough". This module
//! encodes the calibration bands used by the unit tests and exposes them
//! to users who retune generator parameters.

use crate::Benchmark;
use csp_trace::Trace;
use std::fmt;

/// One signature check's outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct SignatureCheck {
    /// Which quantity was checked.
    pub name: &'static str,
    /// Measured value.
    pub measured: f64,
    /// Accepted band (inclusive).
    pub band: (f64, f64),
}

impl SignatureCheck {
    /// Whether the measurement falls inside the band.
    pub fn passed(&self) -> bool {
        self.measured >= self.band.0 && self.measured <= self.band.1
    }
}

impl fmt::Display for SignatureCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.4} in [{:.4}, {:.4}] -> {}",
            self.name,
            self.measured,
            self.band.0,
            self.band.1,
            if self.passed() { "ok" } else { "OUT OF BAND" }
        )
    }
}

/// Validates `trace` against `benchmark`'s paper signature.
///
/// Checks performed:
///
/// * prevalence within ±45% (relative) of the paper's Table 6 value;
/// * mean invalidation degree consistent with that prevalence;
/// * a non-degenerate event population (at least 16 events).
///
/// Returns every check; [`all_pass`] summarizes.
///
/// # Example
///
/// ```
/// use csp_workloads::{validate, Benchmark, WorkloadConfig};
/// let (trace, _) = WorkloadConfig::new(Benchmark::Ocean).scale(0.2).generate_trace();
/// let checks = validate::signature_checks(Benchmark::Ocean, &trace);
/// assert!(validate::all_pass(&checks), "{checks:?}");
/// ```
pub fn signature_checks(benchmark: Benchmark, trace: &Trace) -> Vec<SignatureCheck> {
    let paper = benchmark.paper_prevalence();
    let prevalence = trace.prevalence();
    let mean_degree = prevalence * trace.nodes() as f64;
    vec![
        SignatureCheck {
            name: "prevalence",
            measured: prevalence,
            band: (paper * 0.55, paper * 1.45),
        },
        SignatureCheck {
            name: "mean invalidation degree",
            measured: mean_degree,
            band: (paper * 16.0 * 0.55, paper * 16.0 * 1.45),
        },
        SignatureCheck {
            name: "events",
            measured: trace.len() as f64,
            band: (16.0, f64::INFINITY),
        },
    ]
}

/// `true` when every check passed.
pub fn all_pass(checks: &[SignatureCheck]) -> bool {
    checks.iter().all(SignatureCheck::passed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadConfig;

    #[test]
    fn every_benchmark_passes_its_own_signature() {
        for b in Benchmark::ALL {
            let (trace, _) = WorkloadConfig::new(b).scale(0.25).generate_trace();
            let checks = signature_checks(b, &trace);
            assert!(
                all_pass(&checks),
                "{b} failed calibration: {:#?}",
                checks.iter().filter(|c| !c.passed()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn cross_signatures_fail() {
        // An ocean trace (2% prevalence) must not pass barnes's (15%) band.
        let (ocean, _) = WorkloadConfig::new(Benchmark::Ocean)
            .scale(0.1)
            .generate_trace();
        let checks = signature_checks(Benchmark::Barnes, &ocean);
        assert!(!all_pass(&checks));
    }

    #[test]
    fn check_display_marks_failures() {
        let bad = SignatureCheck {
            name: "prevalence",
            measured: 0.5,
            band: (0.1, 0.2),
        };
        assert!(bad.to_string().contains("OUT OF BAND"));
        assert!(!bad.passed());
    }

    #[test]
    fn empty_trace_fails_event_check() {
        let checks = signature_checks(Benchmark::Water, &Trace::new(16));
        assert!(!all_pass(&checks));
    }
}
