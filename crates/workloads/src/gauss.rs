//! `gauss` — Gaussian elimination, 512x512 array.
//!
//! Sharing structure: at step *k* the pivot row is broadcast-read by every
//! node still holding work (wide sharing), while the remaining rows are
//! updated in place by dynamically scheduled eliminators (migratory
//! read-modify-write: each row's next writer is effectively random). The
//! mix of many 1-reader elimination intervals with a few 15-reader pivot
//! broadcasts yields the paper's mid-range prevalence (Table 6: 9.92%).
//!
//! This generator is bespoke (not a `patterns` mixture) because the
//! broadcast readership shrinks as elimination progresses.

use crate::patterns::{AddressAllocator, NODES};
use csp_sim::MemAccess;
use csp_trace::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scaled(n: u64, scale: f64) -> u64 {
    ((n as f64 * scale).round() as u64).max(4)
}

/// Tunable inputs of the gauss generator (the Table 3 analogue of
/// "512x512 array").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaussParams {
    /// Matrix rows (each becomes the pivot once).
    pub rows: usize,
    /// Cache lines per row.
    pub lines_per_row: usize,
}

impl GaussParams {
    /// The default matrix, with rows scaled by `sqrt(scale)` so total
    /// work scales roughly linearly.
    pub fn scaled(scale: f64) -> Self {
        GaussParams {
            rows: scaled(128, scale.sqrt()) as usize,
            lines_per_row: 4,
        }
    }

    /// Generates the access stream for these parameters.
    pub fn accesses(&self, seed: u64) -> Vec<MemAccess> {
        gauss_accesses(self.rows, self.lines_per_row, seed)
    }
}

impl Default for GaussParams {
    fn default() -> Self {
        GaussParams::scaled(1.0)
    }
}

/// Generates the gauss access stream at `scale`.
pub fn accesses(scale: f64, seed: u64) -> Vec<MemAccess> {
    GaussParams::scaled(scale).accesses(seed)
}

fn gauss_accesses(rows: usize, lines_per_row: usize, seed: u64) -> Vec<MemAccess> {
    let mut alloc = AddressAllocator::new();
    let matrix = alloc.alloc((rows * lines_per_row) as u64);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6A55);
    let mut sink = Vec::new();

    const PC_INIT: u32 = 0x100;
    const PC_ELIM: u32 = 0x110;
    const PC_NORM: u32 = 0x120;
    const PC_READ_PIVOT: u32 = 0x8000;
    const PC_READ_ROW: u32 = 0x8001;

    let line_of = |row: usize, l: usize| (row * lines_per_row + l) as u64;

    // First touch: cyclic row distribution.
    for row in 0..rows {
        let owner = NodeId((row % NODES) as u8);
        for l in 0..lines_per_row {
            sink.push(MemAccess::write(
                owner,
                PC_INIT + (l as u32 % 4),
                matrix.addr(line_of(row, l), 0),
            ));
        }
    }

    let mut holder: Vec<NodeId> = (0..rows).map(|r| NodeId((r % NODES) as u8)).collect();
    // Dynamic scheduling with affinity: each row is usually eliminated by
    // its owner or one of two fixed helpers (work stealing is local).
    let affinity: Vec<[NodeId; 3]> = (0..rows)
        .map(|r| {
            let owner = (r % NODES) as u8;
            [
                NodeId(owner),
                NodeId(((owner as usize + 1 + rng.random_range(0..3)) % NODES) as u8),
                NodeId(((owner as usize + NODES - 1 - rng.random_range(0..3)) % NODES) as u8),
            ]
        })
        .collect();
    for k in 0..rows.saturating_sub(1) {
        let remaining = rows - k - 1;
        // Nodes still holding elimination work; tapers at the end.
        let active = remaining.min(NODES);
        // Normalize the pivot row (usually a silent store for its last
        // eliminator; kept for fidelity).
        for l in 0..lines_per_row {
            sink.push(MemAccess::write(
                holder[k],
                PC_NORM + (l as u32 % 4),
                matrix.addr(line_of(k, l), 0),
            ));
        }
        // Broadcast: every active node reads the pivot row.
        for n in 0..active {
            let reader = NodeId(n as u8);
            if reader == holder[k] {
                continue;
            }
            for l in 0..lines_per_row {
                sink.push(MemAccess::read(
                    reader,
                    PC_READ_PIVOT,
                    matrix.addr(line_of(k, l), 1),
                ));
            }
        }
        // Dynamically scheduled elimination: each remaining row is updated
        // in place by a random active node (half its lines per step keeps
        // the event count proportional to the paper's).
        for row in k + 1..rows {
            let mut eliminator = if rng.random_bool(0.8) {
                affinity[row][rng.random_range(0..3)]
            } else {
                NodeId(rng.random_range(0..NODES) as u8)
            };
            if eliminator.index() >= active {
                eliminator = NodeId(rng.random_range(0..active) as u8);
            }
            for l in 0..lines_per_row {
                if rng.random_bool(0.5) {
                    continue;
                }
                let addr = matrix.addr(line_of(row, l), 0);
                sink.push(MemAccess::read(eliminator, PC_READ_ROW, addr));
                sink.push(MemAccess::write(eliminator, PC_ELIM + (l as u32 % 4), addr));
                // Partial-pivoting column scans: bystanders read candidate
                // rows while searching for the next pivot.
                for _ in 0..2 {
                    if rng.random_bool(0.85) {
                        let mut scanner = affinity[row][rng.random_range(0..3)];
                        if scanner == eliminator {
                            scanner = NodeId(((scanner.index() + 1) % NODES) as u8);
                        }
                        sink.push(MemAccess::read(scanner, PC_READ_ROW + 1, addr));
                    }
                }
            }
            holder[row] = eliminator;
        }
    }
    sink
}

#[cfg(test)]
mod tests {
    use crate::{Benchmark, WorkloadConfig};

    #[test]
    fn prevalence_near_paper_signature() {
        let (trace, _) = WorkloadConfig::new(Benchmark::Gauss)
            .scale(0.5)
            .generate_trace();
        let p = trace.prevalence();
        assert!(
            (0.055..=0.150).contains(&p),
            "gauss prevalence {p:.4} outside calibration band (paper: 0.0992)"
        );
    }

    #[test]
    fn few_static_stores() {
        // Gauss is a tiny kernel: the paper reports 21 static stores/node.
        let (_, stats) = WorkloadConfig::new(Benchmark::Gauss)
            .scale(0.25)
            .generate_trace();
        assert!(
            stats.max_static_stores_per_node <= 40,
            "gauss should have few static stores, got {}",
            stats.max_static_stores_per_node
        );
    }
}
