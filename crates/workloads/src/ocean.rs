//! `ocean` — ocean basin simulation, 258x258 grid.
//!
//! Sharing structure: block-partitioned 5-point stencils. Only partition
//! *boundary* rows are shared — each read every iteration by exactly one
//! neighbouring node — while the vast interior plus the multigrid scratch
//! arrays generate reader-free store misses (re-initialization sweeps whose
//! write ownership rotates across phases, modelled as blind write
//! rotation) and boundary-straddling lines add false sharing. The result
//! is the suite's lowest prevalence (paper Table 6: 2.14%) across its
//! largest block population and its biggest static-store count (380/node).

use crate::patterns::{
    run_schedule, AddressAllocator, FalseSharing, Locks, Migratory, ProducerConsumer,
    ReaderSizeDist,
};
use csp_sim::MemAccess;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scaled(n: u64, scale: f64) -> u64 {
    ((n as f64 * scale).round() as u64).max(2)
}

/// Tunable inputs of the ocean generator (the Table 3 analogue of
/// "258x258 grid").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OceanParams {
    /// Partition-boundary stencil lines (one neighbour reads each).
    pub boundary_lines: u64,
    /// Corner lines falsely shared between two partitions.
    pub corner_lines: u64,
    /// Multigrid scratch lines re-initialized by rotating writers.
    pub scratch_lines: u64,
    /// Solver iterations.
    pub rounds: usize,
}

impl OceanParams {
    /// The default working set multiplied by `scale`.
    pub fn scaled(scale: f64) -> Self {
        OceanParams {
            boundary_lines: scaled(1300, scale),
            corner_lines: scaled(250, scale),
            scratch_lines: scaled(2300, scale),
            rounds: 20,
        }
    }

    /// Generates the access stream for these parameters.
    pub fn accesses(&self, seed: u64) -> Vec<MemAccess> {
        let mut alloc = AddressAllocator::new();
        let mut setup_rng = StdRng::seed_from_u64(seed ^ 0x0CEA);
        // Boundary rows: exactly one stencil neighbour reads each line.
        let boundary_dist = ReaderSizeDist::new(&[0.0, 1.0]);
        let mut boundaries = ProducerConsumer::new(
            &mut alloc,
            self.boundary_lines,
            boundary_dist,
            0.0,
            1.0, // the reader is always a torus neighbour
            0x1000,
            120,
            &mut setup_rng,
        );
        // Corner lines shared by two partitions: false sharing.
        let mut corners = FalseSharing::new(&mut alloc, self.corner_lines, 0x2000, 60);
        // Multigrid scratch: rotating blind re-initialization, no readers.
        let mut scratch = Migratory::new(
            &mut alloc,
            self.scratch_lines,
            1,
            false,
            0.0,
            0,
            0x3000,
            120,
            &mut setup_rng,
        );
        let mut locks = Locks::new(&mut alloc, 8, 2, 0x4000);
        run_schedule(
            &mut [&mut boundaries, &mut corners, &mut scratch, &mut locks],
            self.rounds,
            seed,
        )
    }
}

impl Default for OceanParams {
    fn default() -> Self {
        OceanParams::scaled(1.0)
    }
}

/// Generates the ocean access stream at `scale`.
pub fn accesses(scale: f64, seed: u64) -> Vec<MemAccess> {
    OceanParams::scaled(scale).accesses(seed)
}

#[cfg(test)]
mod tests {
    use crate::{Benchmark, WorkloadConfig};

    #[test]
    fn prevalence_near_paper_signature() {
        let (trace, _) = WorkloadConfig::new(Benchmark::Ocean)
            .scale(0.25)
            .generate_trace();
        let p = trace.prevalence();
        assert!(
            (0.008..=0.045).contains(&p),
            "ocean prevalence {p:.4} outside calibration band (paper: 0.0214)"
        );
    }

    #[test]
    fn largest_static_store_population() {
        let (_, stats) = WorkloadConfig::new(Benchmark::Ocean)
            .scale(0.25)
            .generate_trace();
        // Ocean has by far the most static stores in the paper's Table 5.
        assert!(
            stats.max_static_stores_per_node >= 150,
            "ocean static stores {} too few",
            stats.max_static_stores_per_node
        );
    }
}
