//! Whole-suite generation.

use crate::{Benchmark, WorkloadConfig};
use csp_sim::SimStats;
use csp_trace::Trace;

/// One generated benchmark trace plus its simulator statistics.
#[derive(Clone, Debug)]
pub struct BenchmarkTrace {
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// The coherence trace.
    pub trace: Trace,
    /// The simulator's counters for the run.
    pub stats: SimStats,
}

/// Derives the generator seed for one benchmark from a suite seed.
///
/// This is the suite's seed-spreading rule, exposed so callers (notably
/// the harness trace cache) can regenerate a *single* benchmark and get
/// bit-identical output to the corresponding member of
/// [`generate_suite`]`(scale, seed)`.
pub fn benchmark_seed(suite_seed: u64, benchmark: Benchmark) -> u64 {
    suite_seed.wrapping_add(benchmark as u64 * 0x9E37_79B9)
}

/// Generates one benchmark of the suite, identical to the corresponding
/// element of [`generate_suite`]`(scale, seed)`.
pub fn generate_benchmark(benchmark: Benchmark, scale: f64, seed: u64) -> BenchmarkTrace {
    let (trace, stats) = WorkloadConfig::new(benchmark)
        .scale(scale)
        .seed(benchmark_seed(seed, benchmark))
        .generate_trace();
    BenchmarkTrace {
        benchmark,
        trace,
        stats,
    }
}

/// Generates the full seven-benchmark suite at the given scale.
///
/// Deterministic for a given `(scale, seed)`: each benchmark's generator
/// seed is derived from `seed` via [`benchmark_seed`].
///
/// # Example
///
/// ```
/// let suite = csp_workloads::generate_suite(0.02, 1);
/// assert_eq!(suite.len(), 7);
/// assert!(suite.iter().all(|b| !b.trace.is_empty()));
/// ```
pub fn generate_suite(scale: f64, seed: u64) -> Vec<BenchmarkTrace> {
    Benchmark::ALL
        .iter()
        .map(|&benchmark| generate_benchmark(benchmark, scale, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_benchmark_matches_suite_member() {
        let suite = generate_suite(0.02, 9);
        let solo = generate_benchmark(Benchmark::Gauss, 0.02, 9);
        let in_suite = suite
            .iter()
            .find(|b| b.benchmark == Benchmark::Gauss)
            .unwrap();
        assert_eq!(solo.trace, in_suite.trace);
        assert_eq!(solo.stats, in_suite.stats);
    }

    #[test]
    fn suite_covers_all_benchmarks_in_order() {
        let suite = generate_suite(0.02, 3);
        let names: Vec<_> = suite.iter().map(|b| b.benchmark.name()).collect();
        assert_eq!(
            names,
            vec!["barnes", "em3d", "gauss", "mp3d", "ocean", "unstruct", "water"]
        );
    }

    #[test]
    fn prevalence_ordering_matches_paper() {
        // The paper's robust cross-benchmark shape: ocean and em3d are the
        // low-prevalence outliers; barnes is the highest.
        let suite = generate_suite(0.25, 3);
        let prev: std::collections::HashMap<_, _> = suite
            .iter()
            .map(|b| (b.benchmark, b.trace.prevalence()))
            .collect();
        let barnes = prev[&Benchmark::Barnes];
        for (&b, &p) in &prev {
            if b != Benchmark::Barnes {
                assert!(barnes >= p * 0.9, "barnes should be ~highest, {b} has {p}");
            }
        }
        assert!(prev[&Benchmark::Ocean] < prev[&Benchmark::Unstruct]);
        assert!(prev[&Benchmark::Em3d] < prev[&Benchmark::Water]);
    }
}
