//! `em3d` — electromagnetic wave propagation, 9600 graph nodes, degree 5,
//! 15% remote edges.
//!
//! Sharing structure: a *static* bipartite dependence graph. Each E/H
//! value is rewritten by its owner every iteration and read by the owners
//! of its remote neighbours — reader sets that never change, the textbook
//! static producer-consumer pattern. Most values have no remote consumers
//! at all, and 64-byte lines straddling ownership boundaries add
//! reader-free false-sharing traffic, which is why em3d's prevalence is so
//! low (paper Table 6: 3.19%).

use crate::patterns::{
    run_schedule, AddressAllocator, FalseSharing, Locks, ProducerConsumer, ReaderSizeDist,
};
use csp_sim::MemAccess;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scaled(n: u64, scale: f64) -> u64 {
    ((n as f64 * scale).round() as u64).max(2)
}

/// Tunable inputs of the em3d generator (the Table 3 analogue of
/// "9600 nodes, degree 5, 15% remote").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Em3dParams {
    /// E/H value lines in the bipartite graph.
    pub graph_lines: u64,
    /// Ownership-boundary lines exhibiting false sharing.
    pub boundary_lines: u64,
    /// Propagation iterations.
    pub rounds: usize,
}

impl Em3dParams {
    /// The default working set multiplied by `scale`.
    pub fn scaled(scale: f64) -> Self {
        Em3dParams {
            graph_lines: scaled(2800, scale),
            boundary_lines: scaled(1800, scale),
            rounds: 22,
        }
    }

    /// Generates the access stream for these parameters.
    pub fn accesses(&self, seed: u64) -> Vec<MemAccess> {
        let mut alloc = AddressAllocator::new();
        let mut setup_rng = StdRng::seed_from_u64(seed ^ 0xE3D);
        // Degree 5 with 15% remote edges: ~44% of values see no remote
        // reader, and remote neighbours coalesce to few distinct nodes.
        let graph_dist = ReaderSizeDist::new(&[0.60, 0.30, 0.08, 0.02]);
        let mut graph = ProducerConsumer::new(
            &mut alloc,
            self.graph_lines,
            graph_dist,
            0.0, // the graph never changes
            0.80,
            0x1000,
            20,
            &mut setup_rng,
        );
        let mut boundary = FalseSharing::new(&mut alloc, self.boundary_lines, 0x2000, 10);
        let mut locks = Locks::new(&mut alloc, 4, 2, 0x3000);
        run_schedule(
            &mut [&mut graph, &mut boundary, &mut locks],
            self.rounds,
            seed,
        )
    }
}

impl Default for Em3dParams {
    fn default() -> Self {
        Em3dParams::scaled(1.0)
    }
}

/// Generates the em3d access stream at `scale`.
pub fn accesses(scale: f64, seed: u64) -> Vec<MemAccess> {
    Em3dParams::scaled(scale).accesses(seed)
}

#[cfg(test)]
mod tests {
    use crate::{Benchmark, WorkloadConfig};

    #[test]
    fn prevalence_near_paper_signature() {
        let (trace, _) = WorkloadConfig::new(Benchmark::Em3d)
            .scale(0.25)
            .generate_trace();
        let p = trace.prevalence();
        assert!(
            (0.015..=0.060).contains(&p),
            "em3d prevalence {p:.4} outside calibration band (paper: 0.0319)"
        );
    }

    #[test]
    fn sharing_is_highly_predictable() {
        // Static reader sets: even a depth-1 instruction predictor should
        // reach high PVP once warm. (Indirectly validates that the
        // generator produces *stable* producer-consumer sharing.)
        use csp_core::{engine, Scheme};
        let (trace, _) = WorkloadConfig::new(Benchmark::Em3d)
            .scale(0.1)
            .generate_trace();
        let scheme: Scheme = "last(dir+add16)1[direct]".parse().unwrap();
        let s = engine::run_scheme(&trace, &scheme).screening();
        assert!(s.pvp > 0.75, "em3d address-based last PVP {:.3}", s.pvp);
    }
}
