//! Reusable sharing-pattern components.
//!
//! Every synthetic benchmark is a weighted mixture of a few canonical
//! sharing patterns (Weber & Gupta's classification, which the paper's
//! Section 1 cites): producer–consumer, migratory, wide/broadcast sharing,
//! and false sharing. Each component here owns a region of the address
//! space, emits a deterministic access stream one *round* (outer program
//! iteration) at a time, and models the static-store structure of the
//! pattern by drawing its store `pc`s from a small per-component range —
//! exactly the leverage instruction-based predictors exploit.

use csp_sim::torus::Torus;
use csp_sim::MemAccess;
use csp_trace::{NodeId, SharingBitmap, PAPER_NODES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cache-line size all generators assume (the paper's 64 bytes).
pub const LINE: u64 = 64;

/// Number of nodes all generators target.
pub const NODES: usize = PAPER_NODES;

/// Data-structure groups per producer-consumer owner (see
/// [`ProducerConsumer`]).
const GROUPS: usize = 3;

/// A contiguous range of cache lines owned by one component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    first_line: u64,
    lines: u64,
}

impl Region {
    /// The byte address of word `word` of line `idx` within the region.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the region.
    pub fn addr(&self, idx: u64, word: u64) -> u64 {
        assert!(
            idx < self.lines,
            "line {idx} outside region of {}",
            self.lines
        );
        (self.first_line + idx) * LINE + (word % 8) * 8
    }

    /// Number of lines in the region.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

/// Hands out disjoint address-space regions.
#[derive(Clone, Debug)]
pub struct AddressAllocator {
    next_line: u64,
}

impl AddressAllocator {
    /// A fresh allocator (regions start above line 256 to keep address 0
    /// out of the data space).
    pub fn new() -> Self {
        AddressAllocator { next_line: 256 }
    }

    /// Allocates a region of `lines` cache lines, padded so distinct
    /// regions never share a line.
    pub fn alloc(&mut self, lines: u64) -> Region {
        let r = Region {
            first_line: self.next_line,
            lines,
        };
        self.next_line += lines + 16;
        r
    }
}

impl Default for AddressAllocator {
    fn default() -> Self {
        Self::new()
    }
}

/// A distribution over reader-set sizes: `probs[k]` is the probability of
/// exactly `k` readers.
#[derive(Clone, Debug)]
pub struct ReaderSizeDist {
    probs: Vec<f64>,
}

impl ReaderSizeDist {
    /// Creates a distribution.
    ///
    /// # Panics
    ///
    /// Panics unless the probabilities are non-negative and sum to ~1.
    pub fn new(probs: &[f64]) -> Self {
        assert!(!probs.is_empty());
        assert!(probs.iter().all(|&p| p >= 0.0), "negative probability");
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "probabilities sum to {total}, expected 1"
        );
        ReaderSizeDist {
            probs: probs.to_vec(),
        }
    }

    /// The mean reader-set size — `16 x prevalence` is approximately this
    /// for a pure producer-consumer workload.
    pub fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(k, p)| k as f64 * p)
            .sum()
    }

    /// Samples a size.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let mut x: f64 = rng.random();
        for (k, &p) in self.probs.iter().enumerate() {
            if x < p {
                return k;
            }
            x -= p;
        }
        self.probs.len() - 1
    }
}

/// Samples a reader set of `size` nodes for a line owned by `owner`,
/// biased (probability `bias`) toward the owner's torus neighbourhood —
/// the spatial locality that makes a node's stores have *correlated*
/// reader sets, which is what gives `pid` indexing its power.
pub fn sample_readers(
    owner: NodeId,
    size: usize,
    bias: f64,
    torus: &Torus,
    rng: &mut StdRng,
) -> SharingBitmap {
    let nodes = torus.nodes();
    let neighbourhood: Vec<NodeId> = (0..nodes)
        .map(|i| NodeId(i as u8))
        .filter(|&n| n != owner && torus.hops(owner, n) <= 2)
        .collect();
    let mut set = SharingBitmap::empty();
    let mut guard = 0;
    while (set.count() as usize) < size && guard < 1000 {
        guard += 1;
        let candidate = if rng.random_bool(bias) && !neighbourhood.is_empty() {
            neighbourhood[rng.random_range(0..neighbourhood.len())]
        } else {
            NodeId(rng.random_range(0..nodes) as u8)
        };
        if candidate != owner {
            set.insert(candidate);
        }
    }
    set
}

/// The order in which a component visits its lines within a round:
/// round-robin across the owning nodes, the way barrier-synchronized
/// parallel phases interleave in a real trace. (Without this, consecutive
/// events share an owner and even an index-free global predictor rides
/// the temporal locality.)
pub fn interleaved_order(lines: u64) -> Vec<u32> {
    let per_node = lines.div_ceil(NODES as u64).max(1);
    let mut order = Vec::with_capacity(lines as usize);
    for r in 0..per_node {
        for o in 0..NODES as u64 {
            let idx = o * per_node + r;
            if idx < lines {
                order.push(idx as u32);
            }
        }
    }
    order
}

/// One sharing-pattern component: a source of rounds of accesses.
pub trait SharingComponent {
    /// Emits the initialization accesses (owners touch their lines first,
    /// establishing first-touch homes — the paper's data placement).
    fn init(&mut self, sink: &mut Vec<MemAccess>);

    /// Emits one outer-iteration round of accesses.
    fn round(&mut self, rng: &mut StdRng, sink: &mut Vec<MemAccess>);
}

/// Runs a schedule: init every component, then `rounds` rounds of each.
pub fn run_schedule(
    components: &mut [&mut dyn SharingComponent],
    rounds: usize,
    seed: u64,
) -> Vec<MemAccess> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sink = Vec::new();
    for c in components.iter_mut() {
        c.init(&mut sink);
    }
    for _ in 0..rounds {
        for c in components.iter_mut() {
            c.round(&mut rng, &mut sink);
        }
    }
    sink
}

/// Static (or slowly churning) producer–consumer sharing: each line has a
/// fixed owner that writes it every round and a per-line reader set that
/// reads it every round.
#[derive(Clone, Debug)]
pub struct ProducerConsumer {
    region: Region,
    owners: Vec<NodeId>,
    readers: Vec<SharingBitmap>,
    dist: ReaderSizeDist,
    /// Per-round probability that one member of a line's reader set is
    /// replaced (0 = perfectly static sharing).
    churn: f64,
    bias: f64,
    /// Per-(owner, data-structure) "core partners": the nodes that consume
    /// nearly everything this owner produces *into one data structure*.
    /// Lines written by the same store pc belong to the same structure and
    /// share a core pair, so `pid+pc` (and fine `addr`) indexing isolates a
    /// precise, stable pattern, while coarse `pid`- or `dir`-only entries
    /// mix the owner's structures and intersect away — the mechanism
    /// behind the paper's "pid is paramount, dir has the least value".
    cores: Vec<Vec<Vec<NodeId>>>,
    /// Which node first touches each line. A realistic fraction of lines
    /// is initialized serially by node 0 (SPLASH programs build many
    /// structures before the parallel phase), which homes those lines
    /// away from their producer — the reason `pid` indexing carries
    /// information `dir` does not.
    initializers: Vec<NodeId>,
    order: Vec<u32>,
    pc_base: u32,
    pc_count: u32,
    torus: Torus,
}

impl ProducerConsumer {
    /// Creates the component: `lines` cache lines block-distributed over
    /// the 16 owners, reader sets sampled from `dist` with neighbourhood
    /// `bias`, mutated with per-round probability `churn`; store pcs drawn
    /// from `pc_base..pc_base + pc_count`.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's knob list
    pub fn new(
        alloc: &mut AddressAllocator,
        lines: u64,
        dist: ReaderSizeDist,
        churn: f64,
        bias: f64,
        pc_base: u32,
        pc_count: u32,
        rng: &mut StdRng,
    ) -> Self {
        assert!(pc_count > 0);
        let region = alloc.alloc(lines);
        let torus = Torus::new(4, 4);
        let per_node = lines.div_ceil(NODES as u64);
        let owners: Vec<NodeId> = (0..lines)
            .map(|i| NodeId((i / per_node.max(1)).min(NODES as u64 - 1) as u8))
            .collect();
        // Nested core partners: every owner has one *primary* partner that
        // consumes nearly everything it produces (the adjacent block in a
        // spatial partitioning), plus one *secondary* partner per data
        // structure. Entries that mix an owner's structures still
        // intersect down to the primary partner, which is what makes
        // hybrid pid+addr indexing precise in the paper.
        let cores: Vec<Vec<Vec<NodeId>>> = (0..NODES)
            .map(|o| {
                let owner = NodeId(o as u8);
                let near: Vec<NodeId> = (0..NODES)
                    .map(|i| NodeId(i as u8))
                    .filter(|&n| n != owner && torus.hops(owner, n) <= 2)
                    .collect();
                let primary = near[rng.random_range(0..near.len())];
                (0..GROUPS)
                    .map(|_| {
                        let mut secondary = near[rng.random_range(0..near.len())];
                        while secondary == primary {
                            secondary = near[rng.random_range(0..near.len())];
                        }
                        vec![primary, secondary]
                    })
                    .collect()
            })
            .collect();
        let initializers = owners
            .iter()
            .map(|&o| if rng.random_bool(0.4) { NodeId(0) } else { o })
            .collect();
        let mut pc = ProducerConsumer {
            region,
            owners,
            readers: Vec::new(),
            dist,
            churn,
            bias,
            cores,
            initializers,
            order: interleaved_order(lines),
            pc_base,
            pc_count,
            torus,
        };
        pc.readers = (0..lines as usize)
            .map(|i| {
                let size = pc.dist.sample(rng);
                pc.sample_set(i, pc.owners[i], size, rng)
            })
            .collect();
        pc
    }

    /// The structure group of line `i`: lines sharing a store pc share a
    /// group (one instruction writes one data structure).
    fn group_of(&self, i: usize) -> usize {
        ((i as u32 % self.pc_count) % GROUPS as u32) as usize
    }

    /// Samples a reader set of roughly `size` nodes: the line's structure
    /// core partners first (each with 85% probability), then
    /// neighbourhood- or uniformly-drawn extras.
    fn sample_set(
        &self,
        line: usize,
        owner: NodeId,
        size: usize,
        rng: &mut StdRng,
    ) -> SharingBitmap {
        let mut set = SharingBitmap::empty();
        for &c in &self.cores[owner.index()][self.group_of(line)] {
            if (set.count() as usize) < size && rng.random_bool(0.85) {
                set.insert(c);
            }
        }
        let remainder = size.saturating_sub(set.count() as usize);
        set | sample_readers(owner, remainder, self.bias, &self.torus, rng).without(owner)
    }

    /// The current reader set of line `idx` (for tests).
    pub fn readers_of(&self, idx: u64) -> SharingBitmap {
        self.readers[idx as usize]
    }
}

impl SharingComponent for ProducerConsumer {
    fn init(&mut self, sink: &mut Vec<MemAccess>) {
        for (i, &initializer) in self.initializers.iter().enumerate() {
            let pc = self.pc_base + 0x4000 + (i as u32 % self.pc_count);
            sink.push(MemAccess::write(
                initializer,
                pc,
                self.region.addr(i as u64, 0),
            ));
        }
    }

    fn round(&mut self, rng: &mut StdRng, sink: &mut Vec<MemAccess>) {
        // Slow churn: occasionally resample one line's reader set.
        for i in 0..self.owners.len() {
            if self.churn > 0.0 && rng.random_bool(self.churn) {
                let size = self.dist.sample(rng);
                self.readers[i] = self.sample_set(i, self.owners[i], size, rng);
            }
        }
        // Producers write (interleaved across owners, as in a real
        // barrier-synchronized phase)...
        for &i in &self.order {
            let i = i as usize;
            let pc = self.pc_base + (i as u32 % self.pc_count);
            sink.push(MemAccess::write(
                self.owners[i],
                pc,
                self.region.addr(i as u64, 0),
            ));
        }
        // ...consumers read.
        for &i in &self.order {
            let i = i as usize;
            for r in self.readers[i].iter() {
                sink.push(MemAccess::read(
                    r,
                    self.pc_base + 0x8000,
                    self.region.addr(i as u64, 1),
                ));
            }
        }
    }
}

/// Migratory sharing: each line's ownership migrates along a chain of
/// nodes, each performing a read-modify-write (lock-protected object
/// semantics). The effective "reader" of each write interval is just the
/// next, essentially random, writer — the hard-to-predict pattern the
/// paper deliberately keeps in its study.
#[derive(Clone, Debug)]
pub struct Migratory {
    region: Region,
    holder: Vec<NodeId>,
    /// Per-line affinity set: the recurring visitors of this object
    /// (spatial domain decomposition means a particle or cell is touched
    /// by the same few nodes over and over). Empty = uniformly random
    /// visitors (pure locks).
    affinity: Vec<Vec<NodeId>>,
    /// Ownership transfers per line per round.
    chain: usize,
    /// Whether the new holder reads before writing (true migratory RMW).
    /// With `false`, this degenerates into rotating blind writes — events
    /// with zero readers, modelling private-data re-initialization churn.
    read_before_write: bool,
    /// Mean number of bystander nodes that read the object during a hop
    /// without writing it (statistics scans, neighbour lookups). These are
    /// the true *consumers* migratory data has beyond the migration
    /// itself; may exceed 1.
    extra_readers: f64,
    order: Vec<u32>,
    pc_base: u32,
    pc_count: u32,
}

impl Migratory {
    /// Creates the component with every line initially held by a
    /// block-distributed home node. `affinity_size > 0` gives each line a
    /// fixed set of that many recurring visitors (drawn near its home);
    /// visitors are picked from it with 85% probability.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        alloc: &mut AddressAllocator,
        lines: u64,
        chain: usize,
        read_before_write: bool,
        extra_readers: f64,
        affinity_size: usize,
        pc_base: u32,
        pc_count: u32,
        rng: &mut StdRng,
    ) -> Self {
        assert!(pc_count > 0);
        let region = alloc.alloc(lines);
        let torus = Torus::new(4, 4);
        let per_node = lines.div_ceil(NODES as u64);
        let holder: Vec<NodeId> = (0..lines)
            .map(|i| NodeId((i / per_node.max(1)).min(NODES as u64 - 1) as u8))
            .collect();
        let affinity = holder
            .iter()
            .map(|&home| {
                let mut set = vec![home];
                let mut guard = 0;
                while set.len() < affinity_size && guard < 100 {
                    guard += 1;
                    let c = if rng.random_bool(0.7) {
                        let near: Vec<NodeId> = (0..NODES)
                            .map(|i| NodeId(i as u8))
                            .filter(|&n| torus.hops(home, n) == 1)
                            .collect();
                        near[rng.random_range(0..near.len())]
                    } else {
                        NodeId(rng.random_range(0..NODES) as u8)
                    };
                    if !set.contains(&c) {
                        set.push(c);
                    }
                }
                if affinity_size == 0 {
                    Vec::new()
                } else {
                    set
                }
            })
            .collect();
        Migratory {
            region,
            holder,
            affinity,
            chain,
            read_before_write,
            extra_readers,
            order: interleaved_order(lines),
            pc_base,
            pc_count,
        }
    }

    /// Picks the next visitor of line `i` (never the current holder).
    fn next_visitor(&self, i: usize, rng: &mut StdRng) -> NodeId {
        let aff = &self.affinity[i];
        let mut next = if !aff.is_empty() && rng.random_bool(0.85) {
            aff[rng.random_range(0..aff.len())]
        } else {
            NodeId(rng.random_range(0..NODES) as u8)
        };
        if next == self.holder[i] {
            next = if aff.len() > 1 {
                let pos = aff
                    .iter()
                    .position(|&n| n == next)
                    .map(|p| (p + 1) % aff.len());
                match pos {
                    Some(p) => aff[p],
                    None => NodeId(((next.index() + 1) % NODES) as u8),
                }
            } else {
                NodeId(((next.index() + 1) % NODES) as u8)
            };
        }
        next
    }
}

impl SharingComponent for Migratory {
    fn init(&mut self, sink: &mut Vec<MemAccess>) {
        for (i, &h) in self.holder.iter().enumerate() {
            let pc = self.pc_base + (i as u32 % self.pc_count);
            sink.push(MemAccess::write(h, pc, self.region.addr(i as u64, 0)));
        }
    }

    fn round(&mut self, rng: &mut StdRng, sink: &mut Vec<MemAccess>) {
        for &i in &self.order {
            let i = i as usize;
            for _ in 0..self.chain {
                let next = self.next_visitor(i, rng);
                let addr = self.region.addr(i as u64, 0);
                let pc = self.pc_base + (i as u32 % self.pc_count);
                if self.read_before_write {
                    sink.push(MemAccess::read(next, self.pc_base + 0x8000, addr));
                }
                // Bystander consumers, drawn mostly from the line's
                // affinity set so their identity is learnable.
                let mut budget = self.extra_readers;
                while budget > 0.0 {
                    if budget >= 1.0 || rng.random_bool(budget) {
                        let aff = &self.affinity[i];
                        let mut extra = if !aff.is_empty() && rng.random_bool(0.8) {
                            aff[rng.random_range(0..aff.len())]
                        } else {
                            NodeId(rng.random_range(0..NODES) as u8)
                        };
                        if extra == next {
                            extra = NodeId(((extra.index() + 1) % NODES) as u8);
                        }
                        sink.push(MemAccess::read(extra, self.pc_base + 0x8001, addr));
                    }
                    budget -= 1.0;
                }
                sink.push(MemAccess::write(next, pc, addr));
                self.holder[i] = next;
            }
        }
    }
}

/// False sharing: two nodes alternately write *different words* of the
/// same line, never reading it. Every write is a coherence store miss with
/// an empty true-reader set — the prevalence-diluting traffic that
/// 64-byte lines induce at data-structure boundaries.
#[derive(Clone, Debug)]
pub struct FalseSharing {
    region: Region,
    pairs: Vec<(NodeId, NodeId)>,
    parity: bool,
    pc_base: u32,
    pc_count: u32,
}

impl FalseSharing {
    /// Creates the component with adjacent-node writer pairs.
    pub fn new(alloc: &mut AddressAllocator, lines: u64, pc_base: u32, pc_count: u32) -> Self {
        assert!(pc_count > 0);
        let region = alloc.alloc(lines);
        let pairs = (0..lines)
            .map(|i| {
                let a = (i % NODES as u64) as u8;
                let b = ((i + 1) % NODES as u64) as u8;
                (NodeId(a), NodeId(b))
            })
            .collect();
        FalseSharing {
            region,
            pairs,
            parity: false,
            pc_base,
            pc_count,
        }
    }
}

impl SharingComponent for FalseSharing {
    fn init(&mut self, sink: &mut Vec<MemAccess>) {
        for (i, &(a, _)) in self.pairs.iter().enumerate() {
            let pc = self.pc_base + (i as u32 % self.pc_count);
            sink.push(MemAccess::write(a, pc, self.region.addr(i as u64, 0)));
        }
    }

    fn round(&mut self, _rng: &mut StdRng, sink: &mut Vec<MemAccess>) {
        for (i, &(a, b)) in self.pairs.iter().enumerate() {
            let (writer, word) = if self.parity { (b, 1) } else { (a, 0) };
            let pc = self.pc_base + (i as u32 % self.pc_count);
            sink.push(MemAccess::write(
                writer,
                pc,
                self.region.addr(i as u64, word),
            ));
        }
        self.parity = !self.parity;
    }
}

/// Lock/barrier metadata: a handful of hot lines with short migratory
/// read-modify-write chains every round. A thin wrapper that exists so
/// benchmark mixtures read naturally.
#[derive(Clone, Debug)]
pub struct Locks {
    inner: Migratory,
}

impl Locks {
    /// `count` lock lines, each acquired by `acquirers` nodes per round.
    pub fn new(alloc: &mut AddressAllocator, count: u64, acquirers: usize, pc_base: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(u64::from(pc_base));
        Locks {
            inner: Migratory::new(alloc, count, acquirers, true, 0.0, 0, pc_base, 2, &mut rng),
        }
    }
}

impl SharingComponent for Locks {
    fn init(&mut self, sink: &mut Vec<MemAccess>) {
        self.inner.init(sink);
    }

    fn round(&mut self, rng: &mut StdRng, sink: &mut Vec<MemAccess>) {
        self.inner.round(rng, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn allocator_regions_are_disjoint() {
        let mut a = AddressAllocator::new();
        let r1 = a.alloc(100);
        let r2 = a.alloc(50);
        let r1_last = r1.addr(99, 7);
        let r2_first = r2.addr(0, 0);
        assert!(r2_first > r1_last);
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn region_bounds_checked() {
        let mut a = AddressAllocator::new();
        let r = a.alloc(10);
        let _ = r.addr(10, 0);
    }

    #[test]
    fn reader_dist_mean_and_sampling() {
        let d = ReaderSizeDist::new(&[0.5, 0.25, 0.25]);
        assert!((d.mean() - 0.75).abs() < 1e-12);
        let mut rng = rng();
        let mut total = 0usize;
        let n = 20_000;
        for _ in 0..n {
            total += d.sample(&mut rng);
        }
        let empirical = total as f64 / n as f64;
        assert!(
            (empirical - 0.75).abs() < 0.05,
            "empirical mean {empirical}"
        );
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn reader_dist_validates_sum() {
        let _ = ReaderSizeDist::new(&[0.5, 0.2]);
    }

    #[test]
    fn sample_readers_never_includes_owner() {
        let torus = Torus::new(4, 4);
        let mut rng = rng();
        for _ in 0..100 {
            let set = sample_readers(NodeId(5), 4, 0.7, &torus, &mut rng);
            assert!(!set.contains(NodeId(5)));
            assert!(set.count() <= 4);
        }
    }

    #[test]
    fn producer_consumer_emits_writes_then_reads() {
        let mut alloc = AddressAllocator::new();
        let mut rng = rng();
        let dist = ReaderSizeDist::new(&[0.0, 1.0]); // exactly one reader
        let mut pc = ProducerConsumer::new(&mut alloc, 32, dist, 0.0, 0.5, 100, 4, &mut rng);
        let mut sink = Vec::new();
        pc.init(&mut sink);
        assert_eq!(sink.len(), 32);
        assert!(sink.iter().all(|a| a.is_write));
        sink.clear();
        pc.round(&mut rng, &mut sink);
        let writes = sink.iter().filter(|a| a.is_write).count();
        let reads = sink.iter().filter(|a| !a.is_write).count();
        assert_eq!(writes, 32);
        assert_eq!(reads, 32); // one reader per line
    }

    #[test]
    fn producer_consumer_static_sets_do_not_churn() {
        let mut alloc = AddressAllocator::new();
        let mut rng = rng();
        let dist = ReaderSizeDist::new(&[0.0, 0.5, 0.5]);
        let mut pc = ProducerConsumer::new(&mut alloc, 16, dist, 0.0, 0.5, 100, 4, &mut rng);
        let before: Vec<_> = (0..16).map(|i| pc.readers_of(i)).collect();
        let mut sink = Vec::new();
        for _ in 0..5 {
            pc.round(&mut rng, &mut sink);
        }
        let after: Vec<_> = (0..16).map(|i| pc.readers_of(i)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn migratory_moves_ownership() {
        let mut alloc = AddressAllocator::new();
        let mut rng = rng();
        let mut m = Migratory::new(&mut alloc, 8, 2, true, 0.0, 0, 200, 4, &mut rng);
        let mut sink = Vec::new();
        m.init(&mut sink);
        sink.clear();
        m.round(&mut rng, &mut sink);
        // chain=2 with RMW: per line 2 reads + 2 writes.
        assert_eq!(sink.len(), 8 * 4);
        // Consecutive (read, write) pairs are by the same node.
        for pair in sink.chunks(2) {
            assert!(!pair[0].is_write);
            assert!(pair[1].is_write);
            assert_eq!(pair[0].node, pair[1].node);
            assert_eq!(pair[0].addr & !63, pair[1].addr & !63);
        }
    }

    #[test]
    fn blind_rotation_emits_no_reads() {
        let mut alloc = AddressAllocator::new();
        let mut rng = rng();
        let mut m = Migratory::new(&mut alloc, 8, 1, false, 0.0, 0, 200, 4, &mut rng);
        let mut sink = Vec::new();
        m.round(&mut rng, &mut sink);
        assert!(sink.iter().all(|a| a.is_write));
    }

    #[test]
    fn false_sharing_alternates_writers() {
        let mut alloc = AddressAllocator::new();
        let mut rng = rng();
        let mut fs = FalseSharing::new(&mut alloc, 4, 300, 2);
        let mut sink = Vec::new();
        fs.round(&mut rng, &mut sink);
        let first: Vec<_> = sink.iter().map(|a| a.node).collect();
        sink.clear();
        fs.round(&mut rng, &mut sink);
        let second: Vec<_> = sink.iter().map(|a| a.node).collect();
        assert_ne!(first, second);
        assert!(sink.iter().all(|a| a.is_write));
    }

    #[test]
    fn schedule_runs_init_once_and_rounds() {
        let mut alloc = AddressAllocator::new();
        let mut rng = rng();
        let dist = ReaderSizeDist::new(&[1.0]);
        let mut pc = ProducerConsumer::new(&mut alloc, 4, dist, 0.0, 0.5, 100, 1, &mut rng);
        let stream = run_schedule(&mut [&mut pc], 3, 9);
        // init (4 writes) + 3 rounds x 4 writes (no readers).
        assert_eq!(stream.len(), 4 + 12);
    }
}

/// Wide/broadcast sharing: a rotating producer writes a small set of hot
/// lines that most of the machine reads every round (Weber & Gupta's
/// "wide sharing"; the pattern pivot rows exhibit in gauss).
#[derive(Clone, Debug)]
pub struct Broadcast {
    region: Region,
    /// Which node produces in the current round.
    producer: usize,
    /// Readers per round (all nodes except the producer when >= NODES-1).
    audience: usize,
    pc_base: u32,
}

impl Broadcast {
    /// `lines` hot lines, re-published every round to `audience` readers.
    pub fn new(alloc: &mut AddressAllocator, lines: u64, audience: usize, pc_base: u32) -> Self {
        Broadcast {
            region: alloc.alloc(lines),
            producer: 0,
            audience: audience.min(NODES - 1),
            pc_base,
        }
    }
}

impl SharingComponent for Broadcast {
    fn init(&mut self, sink: &mut Vec<MemAccess>) {
        for i in 0..self.region.lines() {
            sink.push(MemAccess::write(
                NodeId(0),
                self.pc_base,
                self.region.addr(i, 0),
            ));
        }
    }

    fn round(&mut self, _rng: &mut StdRng, sink: &mut Vec<MemAccess>) {
        let producer = NodeId(self.producer as u8);
        for i in 0..self.region.lines() {
            sink.push(MemAccess::write(
                producer,
                self.pc_base + 1,
                self.region.addr(i, 0),
            ));
        }
        for k in 1..=self.audience {
            let reader = NodeId(((self.producer + k) % NODES) as u8);
            for i in 0..self.region.lines() {
                sink.push(MemAccess::read(
                    reader,
                    self.pc_base + 0x8000,
                    self.region.addr(i, 1),
                ));
            }
        }
        self.producer = (self.producer + 1) % NODES;
    }
}

/// Read-mostly data: written once at initialization (plus very rare
/// republications), read by everyone — lookup tables, program constants.
/// Contributes read traffic and cache pressure but almost no prediction
/// points, like the read-only segments of real programs.
#[derive(Clone, Debug)]
pub struct ReadMostly {
    region: Region,
    /// Republication probability per line per round.
    update_prob: f64,
    pc_base: u32,
}

impl ReadMostly {
    /// `lines` of read-mostly data, republished with probability
    /// `update_prob` per line per round.
    pub fn new(alloc: &mut AddressAllocator, lines: u64, update_prob: f64, pc_base: u32) -> Self {
        ReadMostly {
            region: alloc.alloc(lines),
            update_prob,
            pc_base,
        }
    }
}

impl SharingComponent for ReadMostly {
    fn init(&mut self, sink: &mut Vec<MemAccess>) {
        for i in 0..self.region.lines() {
            sink.push(MemAccess::write(
                NodeId((i % NODES as u64) as u8),
                self.pc_base,
                self.region.addr(i, 0),
            ));
        }
    }

    fn round(&mut self, rng: &mut StdRng, sink: &mut Vec<MemAccess>) {
        for i in 0..self.region.lines() {
            let owner = NodeId((i % NODES as u64) as u8);
            if self.update_prob > 0.0 && rng.random_bool(self.update_prob) {
                sink.push(MemAccess::write(
                    owner,
                    self.pc_base + 1,
                    self.region.addr(i, 0),
                ));
            }
            // A rotating subset of nodes consults the table each round.
            for k in 1..4u64 {
                let reader = NodeId(((i + k * 5) % NODES as u64) as u8);
                if reader != owner {
                    sink.push(MemAccess::read(
                        reader,
                        self.pc_base + 0x8000,
                        self.region.addr(i, 1),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn broadcast_rotates_producers() {
        let mut alloc = AddressAllocator::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = Broadcast::new(&mut alloc, 2, 15, 0x500);
        let mut sink = Vec::new();
        b.round(&mut rng, &mut sink);
        let first_producer = sink[0].node;
        sink.clear();
        b.round(&mut rng, &mut sink);
        assert_ne!(sink[0].node, first_producer);
        // Every round: 2 writes + 15 readers x 2 lines.
        assert_eq!(sink.len(), 2 + 15 * 2);
    }

    #[test]
    fn broadcast_audience_capped() {
        let mut alloc = AddressAllocator::new();
        let b = Broadcast::new(&mut alloc, 1, 99, 0x500);
        assert_eq!(b.audience, NODES - 1);
    }

    #[test]
    fn read_mostly_emits_mostly_reads() {
        let mut alloc = AddressAllocator::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = ReadMostly::new(&mut alloc, 64, 0.01, 0x600);
        let mut sink = Vec::new();
        for _ in 0..10 {
            r.round(&mut rng, &mut sink);
        }
        let writes = sink.iter().filter(|a| a.is_write).count();
        let reads = sink.iter().filter(|a| !a.is_write).count();
        assert!(reads > writes * 20, "reads {reads} writes {writes}");
    }

    #[test]
    fn broadcast_generates_wide_sharing_through_the_simulator() {
        use csp_sim::{MemorySystem, SystemConfig};
        let mut alloc = AddressAllocator::new();
        let mut b = Broadcast::new(&mut alloc, 4, 15, 0x500);
        let stream = run_schedule(&mut [&mut b], 8, 3);
        let mut sys = MemorySystem::new(SystemConfig::paper_16_node());
        sys.run(stream);
        let (trace, _) = sys.finish();
        // Wide sharing: mean degree well above the suite's.
        assert!(
            trace.prevalence() > 0.5,
            "broadcast prevalence {} should be high",
            trace.prevalence()
        );
    }
}
