//! Workload configuration and trace generation.

use crate::Benchmark;
use csp_sim::{MemorySystem, SimStats, SystemConfig};
use csp_trace::Trace;

/// Configuration for generating one benchmark trace.
///
/// # Example
///
/// ```
/// use csp_workloads::{Benchmark, WorkloadConfig};
///
/// let (trace, _stats) = WorkloadConfig::new(Benchmark::Em3d)
///     .scale(0.05)
///     .seed(7)
///     .generate_trace();
/// assert_eq!(trace.nodes(), 16);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    benchmark: Benchmark,
    scale: f64,
    seed: u64,
    system: SystemConfig,
}

impl WorkloadConfig {
    /// Default configuration for `benchmark`: scale 1.0, seed derived from
    /// the benchmark name, the paper's 16-node machine.
    pub fn new(benchmark: Benchmark) -> Self {
        // Per-benchmark default seeds keep the suite's traces decorrelated.
        let seed = benchmark.name().bytes().fold(0xC0FFEEu64, |acc, b| {
            acc.wrapping_mul(131).wrapping_add(u64::from(b))
        });
        WorkloadConfig {
            benchmark,
            scale: 1.0,
            seed,
            system: SystemConfig::paper_16_node(),
        }
    }

    /// Sets the working-set scale factor (1.0 = default laptop-scale run).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Sets the generator seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the simulated machine configuration.
    pub fn system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }

    /// The configured benchmark.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Generates the access stream and runs it through the memory-system
    /// simulator, returning the coherence trace and the simulator
    /// statistics.
    pub fn generate_trace(&self) -> (Trace, SimStats) {
        let accesses = self.benchmark.accesses(self.scale, self.seed);
        let mut sys = MemorySystem::new(self.system);
        sys.run(accesses);
        sys.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seeds_differ_per_benchmark() {
        let seeds: std::collections::HashSet<u64> = Benchmark::ALL
            .iter()
            .map(|&b| {
                let c = WorkloadConfig::new(b);
                c.seed
            })
            .collect();
        assert_eq!(seeds.len(), Benchmark::ALL.len());
    }

    #[test]
    fn generate_trace_is_deterministic() {
        let cfg = WorkloadConfig::new(Benchmark::Gauss).scale(0.05);
        let (t1, s1) = cfg.generate_trace();
        let (t2, s2) = cfg.generate_trace();
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scale_must_be_positive() {
        let _ = WorkloadConfig::new(Benchmark::Gauss).scale(-1.0);
    }
}
