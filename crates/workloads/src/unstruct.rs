//! `unstruct` — unstructured-mesh CFD, 2K mesh.
//!
//! Sharing structure: a small, *hot* set of vertex/edge blocks (the paper
//! reports only 2832 blocks but 634K store misses — each block is written
//! hundreds of times). Mesh connectivity is fixed, so each block's reader
//! set (the owners of adjacent mesh entities) is almost perfectly stable
//! across its many rewrites. (Paper Table 6: 12.83% prevalence.)

use crate::patterns::{run_schedule, AddressAllocator, Locks, ProducerConsumer, ReaderSizeDist};
use csp_sim::MemAccess;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scaled(n: u64, scale: f64) -> u64 {
    ((n as f64 * scale).round() as u64).max(2)
}

/// Tunable inputs of the unstruct generator (the Table 3 analogue of
/// "2K mesh").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnstructParams {
    /// Mesh vertex/edge lines.
    pub mesh_lines: u64,
    /// Sweeps over the mesh.
    pub rounds: usize,
}

impl UnstructParams {
    /// The default working set multiplied by `scale`.
    pub fn scaled(scale: f64) -> Self {
        UnstructParams {
            mesh_lines: scaled(2500, scale),
            rounds: 56,
        }
    }

    /// Generates the access stream for these parameters.
    pub fn accesses(&self, seed: u64) -> Vec<MemAccess> {
        let mut alloc = AddressAllocator::new();
        let mut setup_rng = StdRng::seed_from_u64(seed ^ 0x0575);
        let mesh_dist = ReaderSizeDist::new(&[0.12, 0.30, 0.30, 0.17, 0.08, 0.03]);
        let mut mesh = ProducerConsumer::new(
            &mut alloc,
            self.mesh_lines,
            mesh_dist,
            0.005, // mesh connectivity is essentially fixed
            0.70,
            0x1000,
            50,
            &mut setup_rng,
        );
        let mut locks = Locks::new(&mut alloc, 4, 2, 0x2000);
        // Many sweeps over few blocks: the benchmark's signature shape.
        run_schedule(&mut [&mut mesh, &mut locks], self.rounds, seed)
    }
}

impl Default for UnstructParams {
    fn default() -> Self {
        UnstructParams::scaled(1.0)
    }
}

/// Generates the unstruct access stream at `scale`.
pub fn accesses(scale: f64, seed: u64) -> Vec<MemAccess> {
    UnstructParams::scaled(scale).accesses(seed)
}

#[cfg(test)]
mod tests {
    use crate::{Benchmark, WorkloadConfig};

    #[test]
    fn prevalence_near_paper_signature() {
        let (trace, _) = WorkloadConfig::new(Benchmark::Unstruct)
            .scale(0.25)
            .generate_trace();
        let p = trace.prevalence();
        assert!(
            (0.08..=0.19).contains(&p),
            "unstruct prevalence {p:.4} outside calibration band (paper: 0.1283)"
        );
    }

    #[test]
    fn few_blocks_many_misses() {
        let (trace, stats) = WorkloadConfig::new(Benchmark::Unstruct)
            .scale(0.25)
            .generate_trace();
        let misses_per_block = trace.len() as f64 / stats.lines_touched as f64;
        assert!(
            misses_per_block > 10.0,
            "unstruct should rewrite blocks many times, got {misses_per_block:.1} misses/block"
        );
    }
}
