//! Synthetic SPLASH-style workloads for sharing-prediction studies.
//!
//! The paper traces seven shared-memory programs (Table 3) with RSIM. We
//! do not have RSIM or the original binaries, so this crate substitutes
//! *synthetic workload generators* that reproduce each program's **sharing
//! structure** — who reads a line after whom, per static store — which is
//! the only thing prediction accuracy depends on. Each generator emits a
//! deterministic, seeded stream of [`csp_sim::MemAccess`]es that the
//! `csp-sim` memory system turns into a coherence trace.
//!
//! Generators are assembled from reusable sharing-pattern components
//! ([`patterns`]):
//!
//! * producer–consumer regions with per-line (slowly churning) reader sets,
//!   biased toward the owner's torus neighbours — the paper's static
//!   producer-consumer sharing;
//! * migratory regions (read-modify-write chains under lock-style
//!   ownership transfer), where the next reader is effectively random;
//! * broadcast regions (one producer, most nodes read — wide sharing);
//! * false-sharing regions (disjoint words of one line written by
//!   alternating nodes, no readers) — the prevalence-diluting traffic real
//!   64-byte-line traces exhibit;
//! * lock regions (short migratory chains standing in for barrier/lock
//!   metadata).
//!
//! The per-benchmark mixtures are calibrated so that the resulting traces
//! land near the paper's Table 5/6 signatures: prevalence between ~2%
//! (ocean) and ~15% (barnes), small static-store populations, and
//! benchmark-appropriate block counts. `DESIGN.md` documents the
//! substitution rationale.
//!
//! # Example
//!
//! ```
//! use csp_workloads::{Benchmark, WorkloadConfig};
//!
//! let cfg = WorkloadConfig::new(Benchmark::Water).scale(0.05);
//! let (trace, stats) = cfg.generate_trace();
//! assert!(trace.len() > 100);
//! assert_eq!(stats.coherence_store_misses(), trace.len() as u64);
//! let prev = trace.prevalence();
//! assert!(prev > 0.02 && prev < 0.30, "water prevalence {prev}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barnes;
mod config;
pub mod em3d;
pub mod gauss;
pub mod mp3d;
pub mod ocean;
pub mod patterns;
mod suite;
pub mod unstruct;
pub mod validate;
pub mod water;

pub use barnes::BarnesParams;
pub use config::WorkloadConfig;
pub use em3d::Em3dParams;
pub use gauss::GaussParams;
pub use mp3d::Mp3dParams;
pub use ocean::OceanParams;
pub use suite::{benchmark_seed, generate_benchmark, generate_suite, BenchmarkTrace};
pub use unstruct::UnstructParams;
pub use water::WaterParams;

use csp_sim::MemAccess;

/// The seven benchmarks of the paper's Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Hierarchical N-body (8K particles): irregular neighbour sharing,
    /// the highest prevalence in the suite (~15%).
    Barnes,
    /// Electromagnetic wave propagation on a static bipartite graph
    /// (9600 nodes, degree 5, 15% remote): textbook static
    /// producer-consumer with very low prevalence (~3%).
    Em3d,
    /// Gaussian elimination (512x512): pivot-row broadcast plus dynamically
    /// scheduled elimination updates (~10%).
    Gauss,
    /// Rarefied fluid-flow Monte Carlo (50K molecules): migratory particle
    /// and cell records (~9%).
    Mp3d,
    /// Ocean basin simulation (258x258 grid): nearest-neighbour stencil
    /// boundaries amid a sea of private data; lowest prevalence (~2%).
    Ocean,
    /// Unstructured-mesh computational fluid dynamics (2K mesh): few, hot,
    /// stably shared blocks (~13%).
    Unstruct,
    /// N-molecule water simulation (512 molecules): pairwise force
    /// interactions, mixing stable position readers with migratory force
    /// accumulation (~12%).
    Water,
}

impl Benchmark {
    /// All benchmarks, in the paper's table order.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::Barnes,
        Benchmark::Em3d,
        Benchmark::Gauss,
        Benchmark::Mp3d,
        Benchmark::Ocean,
        Benchmark::Unstruct,
        Benchmark::Water,
    ];

    /// The benchmark's lowercase name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Barnes => "barnes",
            Benchmark::Em3d => "em3d",
            Benchmark::Gauss => "gauss",
            Benchmark::Mp3d => "mp3d",
            Benchmark::Ocean => "ocean",
            Benchmark::Unstruct => "unstruct",
            Benchmark::Water => "water",
        }
    }

    /// The input description of the paper's Table 3.
    pub fn paper_input(self) -> &'static str {
        match self {
            Benchmark::Barnes => "8K particles",
            Benchmark::Em3d => "9600 nodes, degree 5, 15% remote",
            Benchmark::Gauss => "512x512 array",
            Benchmark::Mp3d => "50K molecules",
            Benchmark::Ocean => "258x258 grid",
            Benchmark::Unstruct => "2K mesh",
            Benchmark::Water => "512 molecules",
        }
    }

    /// The paper's measured prevalence for this benchmark (Table 6), as a
    /// fraction — the target our generators are calibrated against.
    pub fn paper_prevalence(self) -> f64 {
        match self {
            Benchmark::Barnes => 0.1510,
            Benchmark::Em3d => 0.0319,
            Benchmark::Gauss => 0.0992,
            Benchmark::Mp3d => 0.0902,
            Benchmark::Ocean => 0.0214,
            Benchmark::Unstruct => 0.1283,
            Benchmark::Water => 0.1213,
        }
    }

    /// Parses a benchmark name (as printed by [`name`](Self::name)).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Generates the raw access stream for this benchmark.
    ///
    /// `scale` multiplies the working-set and iteration sizes (1.0 is the
    /// default laptop-scale run, ~30k-130k coherence store misses); `seed`
    /// makes the stream deterministic. Most callers want
    /// [`WorkloadConfig::generate_trace`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn accesses(self, scale: f64, seed: u64) -> Vec<MemAccess> {
        assert!(scale > 0.0, "scale must be positive");
        match self {
            Benchmark::Barnes => barnes::accesses(scale, seed),
            Benchmark::Em3d => em3d::accesses(scale, seed),
            Benchmark::Gauss => gauss::accesses(scale, seed),
            Benchmark::Mp3d => mp3d::accesses(scale, seed),
            Benchmark::Ocean => ocean::accesses(scale, seed),
            Benchmark::Unstruct => unstruct::accesses(scale, seed),
            Benchmark::Water => water::accesses(scale, seed),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("fortran"), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Benchmark::Water.accesses(0.03, 42);
        let b = Benchmark::Water.accesses(0.03, 42);
        assert_eq!(a, b);
        let c = Benchmark::Water.accesses(0.03, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn params_api_matches_scale_api() {
        let via_scale = Benchmark::Water.accesses(0.05, 9);
        let via_params = WaterParams::scaled(0.05).accesses(9);
        assert_eq!(via_scale, via_params);
        // Custom knobs change the stream.
        let mut custom = WaterParams::scaled(0.05);
        custom.rounds = 3;
        assert_ne!(custom.accesses(9), via_params);
    }

    #[test]
    fn default_params_are_scale_one() {
        assert_eq!(BarnesParams::default(), BarnesParams::scaled(1.0));
        assert_eq!(GaussParams::default(), GaussParams::scaled(1.0));
        assert_eq!(OceanParams::default(), OceanParams::scaled(1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = Benchmark::Ocean.accesses(0.0, 1);
    }
}
