//! `barnes` — hierarchical N-body (Barnes-Hut), 8K particles.
//!
//! Sharing structure: each node owns a block of bodies whose records it
//! rewrites every timestep; the force-computation phase makes spatially
//! nearby nodes read those records, so each body has a *moderately large,
//! slowly drifting* reader set biased toward the owner's neighbourhood.
//! The shared octree is rebuilt every step by whoever gets each cell —
//! migratory read-modify-write traffic. This is the highest-prevalence
//! benchmark in the suite (paper Table 6: 15.1%).

use crate::patterns::{
    run_schedule, AddressAllocator, Locks, Migratory, ProducerConsumer, ReaderSizeDist,
};
use csp_sim::MemAccess;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scaled(n: u64, scale: f64) -> u64 {
    ((n as f64 * scale).round() as u64).max(2)
}

/// Tunable inputs of the barnes generator (the Table 3 analogue of
/// "8K particles").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BarnesParams {
    /// Body records (one cache line each).
    pub bodies: u64,
    /// Octree cells rebuilt every timestep.
    pub tree_cells: u64,
    /// Timesteps simulated.
    pub rounds: usize,
    /// Per-round probability that a body's reader set drifts.
    pub reader_churn: f64,
}

impl BarnesParams {
    /// The default working set multiplied by `scale`.
    pub fn scaled(scale: f64) -> Self {
        BarnesParams {
            bodies: scaled(1600, scale),
            tree_cells: scaled(320, scale),
            rounds: 16,
            reader_churn: 0.08,
        }
    }

    /// Generates the access stream for these parameters.
    pub fn accesses(&self, seed: u64) -> Vec<MemAccess> {
        let mut alloc = AddressAllocator::new();
        let mut setup_rng = StdRng::seed_from_u64(seed ^ 0xBA61E5);
        // Body records: reader-set sizes average ~3 (prevalence ~15% of
        // 16), drifting slowly as bodies move through space.
        let body_dist = ReaderSizeDist::new(&[0.05, 0.11, 0.17, 0.22, 0.20, 0.15, 0.10]);
        let mut bodies = ProducerConsumer::new(
            &mut alloc,
            self.bodies,
            body_dist,
            self.reader_churn,
            0.75,
            0x1000,
            48,
            &mut setup_rng,
        );
        // Octree cells: rebuilt each step by essentially random builders.
        let mut tree = Migratory::new(
            &mut alloc,
            self.tree_cells,
            2,
            true,
            1.10,
            4,
            0x2000,
            24,
            &mut setup_rng,
        );
        let mut locks = Locks::new(&mut alloc, 8, 3, 0x3000);
        run_schedule(&mut [&mut bodies, &mut tree, &mut locks], self.rounds, seed)
    }
}

impl Default for BarnesParams {
    fn default() -> Self {
        BarnesParams::scaled(1.0)
    }
}

/// Generates the barnes access stream at `scale`.
pub fn accesses(scale: f64, seed: u64) -> Vec<MemAccess> {
    BarnesParams::scaled(scale).accesses(seed)
}

#[cfg(test)]
mod tests {
    use crate::{Benchmark, WorkloadConfig};

    #[test]
    fn prevalence_near_paper_signature() {
        let (trace, _) = WorkloadConfig::new(Benchmark::Barnes)
            .scale(0.25)
            .generate_trace();
        let p = trace.prevalence();
        assert!(
            (0.10..=0.22).contains(&p),
            "barnes prevalence {p:.4} outside calibration band (paper: 0.151)"
        );
    }

    #[test]
    fn static_store_population_is_small() {
        let (trace, stats) = WorkloadConfig::new(Benchmark::Barnes)
            .scale(0.25)
            .generate_trace();
        assert!(stats.max_static_stores_per_node <= 300);
        assert!(trace.stats().max_predicted_stores_per_node <= 300);
    }
}
