//! `water` — N-molecule water simulation, 512 molecules.
//!
//! Sharing structure: a blend. Molecule *positions* are producer-consumer
//! data read by the owners of interacting molecules (O(n²) pair force
//! computation gives fairly large, slowly drifting reader sets), while the
//! per-molecule *force accumulators* migrate under lock from accumulator
//! to accumulator — migratory read-modify-write chains. Like unstruct,
//! the block population is tiny and hot (paper: 2896 blocks, 173K misses,
//! 12.13% prevalence).

use crate::patterns::{
    run_schedule, AddressAllocator, Locks, Migratory, ProducerConsumer, ReaderSizeDist,
};
use csp_sim::MemAccess;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scaled(n: u64, scale: f64) -> u64 {
    ((n as f64 * scale).round() as u64).max(2)
}

/// Tunable inputs of the water generator (the Table 3 analogue of
/// "512 molecules").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaterParams {
    /// Molecule records (one force-accumulator line and one position line
    /// each).
    pub molecules: u64,
    /// Timesteps simulated.
    pub rounds: usize,
}

impl WaterParams {
    /// The default working set multiplied by `scale`.
    pub fn scaled(scale: f64) -> Self {
        WaterParams {
            molecules: scaled(520, scale),
            rounds: 36,
        }
    }

    /// Generates the access stream for these parameters.
    pub fn accesses(&self, seed: u64) -> Vec<MemAccess> {
        let mut alloc = AddressAllocator::new();
        let mut setup_rng = StdRng::seed_from_u64(seed ^ 0x0A7E2);
        let mut forces = Migratory::new(
            &mut alloc,
            self.molecules,
            3,
            true,
            2.30,
            3,
            0x1000,
            30,
            &mut setup_rng,
        );
        let position_dist = ReaderSizeDist::new(&[0.04, 0.08, 0.15, 0.25, 0.25, 0.15, 0.08]);
        let mut positions = ProducerConsumer::new(
            &mut alloc,
            self.molecules,
            position_dist,
            0.04,
            0.60,
            0x2000,
            30,
            &mut setup_rng,
        );
        let mut locks = Locks::new(&mut alloc, 8, 2, 0x3000);
        run_schedule(
            &mut [&mut forces, &mut positions, &mut locks],
            self.rounds,
            seed,
        )
    }
}

impl Default for WaterParams {
    fn default() -> Self {
        WaterParams::scaled(1.0)
    }
}

/// Generates the water access stream at `scale`.
pub fn accesses(scale: f64, seed: u64) -> Vec<MemAccess> {
    WaterParams::scaled(scale).accesses(seed)
}

#[cfg(test)]
mod tests {
    use crate::{Benchmark, WorkloadConfig};

    #[test]
    fn prevalence_near_paper_signature() {
        let (trace, _) = WorkloadConfig::new(Benchmark::Water)
            .scale(0.5)
            .generate_trace();
        let p = trace.prevalence();
        assert!(
            (0.07..=0.18).contains(&p),
            "water prevalence {p:.4} outside calibration band (paper: 0.1213)"
        );
    }

    #[test]
    fn block_population_is_small() {
        let (_, stats) = WorkloadConfig::new(Benchmark::Water)
            .scale(1.0)
            .generate_trace();
        assert!(
            stats.lines_touched < 5000,
            "water touches few blocks, got {}",
            stats.lines_touched
        );
    }
}
