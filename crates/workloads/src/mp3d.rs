//! `mp3d` — rarefied fluid-flow Monte Carlo, 50K molecules.
//!
//! Sharing structure: the canonical *migratory* benchmark. Particle and
//! space-cell records are read-modified-written by whichever node's
//! particle stream touches them, so each write interval's sole reader is
//! the next — essentially random — writer, occasionally joined by a
//! statistics scan. A small producer-consumer component models the global
//! flow-field data. (Paper Table 6: 9.02% prevalence; the paper singles
//! mp3d out as the pattern whose succession of producers and consumers is
//! "effectively random".)

use crate::patterns::{
    run_schedule, AddressAllocator, Locks, Migratory, ProducerConsumer, ReaderSizeDist,
};
use csp_sim::MemAccess;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scaled(n: u64, scale: f64) -> u64 {
    ((n as f64 * scale).round() as u64).max(2)
}

/// Tunable inputs of the mp3d generator (the Table 3 analogue of
/// "50K molecules").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mp3dParams {
    /// Particle/cell record lines (migratory).
    pub particle_lines: u64,
    /// Flow-field lines (producer-consumer).
    pub field_lines: u64,
    /// Timesteps simulated.
    pub rounds: usize,
    /// Mean bystander readers per migration hop.
    pub scan_readers: f64,
}

impl Mp3dParams {
    /// The default working set multiplied by `scale`.
    pub fn scaled(scale: f64) -> Self {
        Mp3dParams {
            particle_lines: scaled(2600, scale),
            field_lines: scaled(300, scale),
            rounds: 24,
            scan_readers: 2.25,
        }
    }

    /// Generates the access stream for these parameters.
    pub fn accesses(&self, seed: u64) -> Vec<MemAccess> {
        let mut alloc = AddressAllocator::new();
        let mut setup_rng = StdRng::seed_from_u64(seed ^ 0x3D3D);
        let mut particles = Migratory::new(
            &mut alloc,
            self.particle_lines,
            2,
            true,
            self.scan_readers,
            3,
            0x1000,
            90,
            &mut setup_rng,
        );
        let field_dist = ReaderSizeDist::new(&[0.30, 0.25, 0.25, 0.15, 0.05]);
        let mut field = ProducerConsumer::new(
            &mut alloc,
            self.field_lines,
            field_dist,
            0.02,
            0.6,
            0x2000,
            40,
            &mut setup_rng,
        );
        let mut locks = Locks::new(&mut alloc, 16, 2, 0x3000);
        run_schedule(
            &mut [&mut particles, &mut field, &mut locks],
            self.rounds,
            seed,
        )
    }
}

impl Default for Mp3dParams {
    fn default() -> Self {
        Mp3dParams::scaled(1.0)
    }
}

/// Generates the mp3d access stream at `scale`.
pub fn accesses(scale: f64, seed: u64) -> Vec<MemAccess> {
    Mp3dParams::scaled(scale).accesses(seed)
}

#[cfg(test)]
mod tests {
    use crate::{Benchmark, WorkloadConfig};

    #[test]
    fn prevalence_near_paper_signature() {
        let (trace, _) = WorkloadConfig::new(Benchmark::Mp3d)
            .scale(0.25)
            .generate_trace();
        let p = trace.prevalence();
        assert!(
            (0.05..=0.13).contains(&p),
            "mp3d prevalence {p:.4} outside calibration band (paper: 0.0902)"
        );
    }

    #[test]
    fn migratory_sharing_is_hard_to_predict() {
        // Intersection prediction over migratory traffic should be very
        // conservative: low sensitivity (it refuses to guess the random
        // next owner).
        use csp_core::{engine, Scheme};
        let (trace, _) = WorkloadConfig::new(Benchmark::Mp3d)
            .scale(0.1)
            .generate_trace();
        let scheme: Scheme = "inter(pid+pc8)4[direct]".parse().unwrap();
        let s = engine::run_scheme(&trace, &scheme).screening();
        assert!(
            s.sensitivity < 0.5,
            "mp3d deep intersection sensitivity {:.3} should be low",
            s.sensitivity
        );
    }
}
