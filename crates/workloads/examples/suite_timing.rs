fn main() {
    let t0 = std::time::Instant::now();
    let suite = csp_workloads::generate_suite(1.0, 1);
    for b in &suite {
        println!(
            "{:10} events={:7} blocks={:7} prev={:.4} static={}",
            b.benchmark.name(),
            b.trace.len(),
            b.stats.lines_touched,
            b.trace.prevalence(),
            b.stats.max_static_stores_per_node
        );
    }
    println!("total {:?}", t0.elapsed());
}
