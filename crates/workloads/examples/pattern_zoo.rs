//! The sharing-pattern zoo: each reusable component run in isolation
//! through the simulated machine, showing its coherence signature —
//! prevalence, invalidation degree, and how predictable it is.
//!
//! ```text
//! cargo run --release -p csp-workloads --example pattern_zoo
//! ```

use csp_core::{engine, Scheme};
use csp_sim::{MemorySystem, SystemConfig};
use csp_workloads::patterns::{
    run_schedule, AddressAllocator, Broadcast, FalseSharing, Locks, Migratory, ProducerConsumer,
    ReadMostly, ReaderSizeDist, SharingComponent,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn show(name: &str, component: &mut dyn SharingComponent, rounds: usize) {
    let stream = run_schedule(&mut [component], rounds, 42);
    let mut sys = MemorySystem::new(SystemConfig::paper_16_node());
    sys.run(stream);
    let (trace, _) = sys.finish();
    let last: Scheme = "last(dir+add16)1".parse().unwrap();
    let inter: Scheme = "inter(dir+add16)4".parse().unwrap();
    let s_last = engine::run_scheme(&trace, &last).screening();
    let s_inter = engine::run_scheme(&trace, &inter).screening();
    println!(
        "{name:16} events {:>6}  prevalence {:>5.1}%  mean degree {:>4.2}  last pvp/sens {:.2}/{:.2}  inter4 {:.2}/{:.2}",
        trace.len(),
        trace.prevalence() * 100.0,
        trace.prevalence() * 16.0,
        s_last.pvp,
        s_last.sensitivity,
        s_inter.pvp,
        s_inter.sensitivity,
    );
}

fn main() {
    println!("each component in isolation (16-node machine, address-indexed predictors):\n");
    let mut rng = StdRng::seed_from_u64(7);

    let mut alloc = AddressAllocator::new();
    let dist = ReaderSizeDist::new(&[0.1, 0.3, 0.3, 0.2, 0.1]);
    let mut pc = ProducerConsumer::new(&mut alloc, 600, dist, 0.0, 0.7, 0x100, 16, &mut rng);
    show("producer-consumer", &mut pc, 30);

    let mut alloc = AddressAllocator::new();
    let mut mig = Migratory::new(&mut alloc, 600, 2, true, 0.5, 3, 0x200, 16, &mut rng);
    show("migratory", &mut mig, 30);

    let mut alloc = AddressAllocator::new();
    let mut bc = Broadcast::new(&mut alloc, 8, 15, 0x300);
    show("broadcast", &mut bc, 30);

    let mut alloc = AddressAllocator::new();
    let mut fs = FalseSharing::new(&mut alloc, 600, 0x400, 16);
    show("false sharing", &mut fs, 30);

    let mut alloc = AddressAllocator::new();
    let mut locks = Locks::new(&mut alloc, 16, 3, 0x500);
    show("locks", &mut locks, 30);

    let mut alloc = AddressAllocator::new();
    let mut rm = ReadMostly::new(&mut alloc, 600, 0.01, 0x600);
    show("read-mostly", &mut rm, 30);

    println!(
        "\nStable producer-consumer sharing is trivially predictable; migratory\n\
         and lock traffic defeat both functions; broadcast has huge prevalence;\n\
         false sharing and read-mostly data contribute (nearly) zero true\n\
         sharing. Real benchmarks are weighted mixtures of these signatures."
    );
}
