//! `csp-bar` — the benchmark barometer CLI.
//!
//! ```text
//! csp-bar run   [--defs F] [--out F] [run options]   measure the matrix, append records
//! csp-bar diff  A.bar [B.bar]                        compare two record sets cell by cell
//! csp-bar rank  F.bar                                rank engines per workload (latest run)
//! csp-bar history CELL [F.bar]                       one cell's trajectory across runs
//! csp-bar check [--defs F] [--trajectory F] [opts]   run a reduced matrix, gate vs history
//! csp-bar import BENCH.json [--defs F] [--out F]     migrate a legacy engine-bench point
//! csp-bar prune --keep-last N [F.bar]                drop all but each cell's newest N records
//! ```
//!
//! Run options (also honored by `check`):
//!
//! ```text
//!   --scale S        workload scale factor      (default: from definitions)
//!   --seed N         suite seed                 (default: from definitions)
//!   --warmup N       untimed passes per cell    (default: from definitions)
//!   --iters N        timed passes per cell      (default: from definitions)
//!   --shards N       sharded-engine workers     (default: from definitions)
//!   --cache-dir DIR  trace cache directory      (default: results/trace-cache)
//!   --no-cache       generate the suite in memory
//! ```
//!
//! Exit codes: 0 success, 1 runtime or gate failure, 2 usage.

#![forbid(unsafe_code)]

use csp_bar::record::{
    append_records_file, prune_records_file, read_records_file, require_fingerprint,
};
use csp_bar::runner::RunMeta;
use csp_bar::{
    check, diff, history, rank, run_matrix, BarDefs, BarError, BarRecord, CellKey, SCHEMA_VERSION,
};
use csp_harness::{CacheOutcome, Suite, TraceCache};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Default committed definitions file.
const DEFAULT_DEFS: &str = "benchmarks.bar";
/// Default committed trajectory file.
const DEFAULT_TRAJECTORY: &str = "results/bar/trajectory.bar";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage_error("missing subcommand");
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(rest),
        "diff" => cmd_diff(rest),
        "rank" => cmd_rank(rest),
        "history" => cmd_history(rest),
        "check" => cmd_check(rest),
        "import" => cmd_import(rest),
        "prune" => cmd_prune(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            return ExitCode::SUCCESS;
        }
        other => return usage_error(&format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => usage_error(&msg),
        Err(CliError::Runtime(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

enum CliError {
    Usage(String),
    Runtime(BarError),
}

impl From<BarError> for CliError {
    fn from(e: BarError) -> Self {
        CliError::Runtime(e)
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Flags shared by `run` and `check`; `None` defers to the definitions.
#[derive(Default)]
struct RunFlags {
    defs: Option<PathBuf>,
    out: Option<PathBuf>,
    trajectory: Option<PathBuf>,
    scale: Option<f64>,
    seed: Option<u64>,
    warmup: Option<usize>,
    iters: Option<usize>,
    shards: Option<usize>,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    keep_last: Option<usize>,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<RunFlags, CliError> {
    let mut flags = RunFlags {
        cache_dir: Some(PathBuf::from("results/trace-cache")),
        ..RunFlags::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| usage(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--defs" => flags.defs = Some(PathBuf::from(value("--defs")?)),
            "--out" => flags.out = Some(PathBuf::from(value("--out")?)),
            "--trajectory" => flags.trajectory = Some(PathBuf::from(value("--trajectory")?)),
            "--scale" => flags.scale = Some(parse_value(&value("--scale")?, "--scale")?),
            "--seed" => flags.seed = Some(parse_value(&value("--seed")?, "--seed")?),
            "--warmup" => flags.warmup = Some(parse_value(&value("--warmup")?, "--warmup")?),
            "--iters" => flags.iters = Some(parse_value(&value("--iters")?, "--iters")?),
            "--shards" => flags.shards = Some(parse_value(&value("--shards")?, "--shards")?),
            "--cache-dir" => flags.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--no-cache" => flags.no_cache = true,
            "--keep-last" => {
                flags.keep_last = Some(parse_value(&value("--keep-last")?, "--keep-last")?)
            }
            other if other.starts_with('-') => {
                return Err(usage(format!("unknown flag {other:?}")))
            }
            positional => flags.positional.push(positional.to_string()),
        }
    }
    Ok(flags)
}

fn parse_value<T: std::str::FromStr>(raw: &str, name: &str) -> Result<T, CliError> {
    raw.parse()
        .map_err(|_| usage(format!("{name} got invalid value {raw:?}")))
}

/// Loads the definitions: `--defs` path, the committed default, or the
/// built-in matrix when neither exists; then applies flag overrides.
fn load_defs(flags: &RunFlags) -> Result<BarDefs, CliError> {
    let mut defs = match &flags.defs {
        Some(path) => parse_defs_file(path)?,
        None if Path::new(DEFAULT_DEFS).exists() => parse_defs_file(Path::new(DEFAULT_DEFS))?,
        None => {
            eprintln!("no {DEFAULT_DEFS}; using built-in definitions");
            BarDefs::builtin()
        }
    };
    if let Some(v) = flags.scale {
        defs.scale = v;
    }
    if let Some(v) = flags.seed {
        defs.seed = v;
    }
    if let Some(v) = flags.warmup {
        defs.warmup = v;
    }
    if let Some(v) = flags.iters {
        defs.iters = v;
    }
    if let Some(v) = flags.shards {
        defs.shards = v;
    }
    Ok(defs)
}

fn parse_defs_file(path: &Path) -> Result<BarDefs, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| BarError::io(path, e))?;
    let defs = BarDefs::parse(&text).map_err(|e| match e {
        BarError::Defs { line, detail } => BarError::Defs {
            line,
            detail: format!("{}: {detail}", path.display()),
        },
        other => other,
    })?;
    Ok(defs)
}

/// Builds the suite, through the trace cache unless `--no-cache`.
fn load_suite(defs: &BarDefs, flags: &RunFlags) -> Suite {
    match (&flags.cache_dir, flags.no_cache) {
        (Some(dir), false) => {
            eprintln!(
                "loading benchmark suite (scale {}, seed {}, cache {})...",
                defs.scale,
                defs.seed,
                dir.display()
            );
            let cache = TraceCache::new(dir);
            match cache.load_suite(defs.scale, defs.seed) {
                Ok((suite, outcomes)) => {
                    let hits = outcomes.iter().filter(|&&o| o == CacheOutcome::Hit).count();
                    eprintln!("  cache: {hits}/{} hits", outcomes.len());
                    suite
                }
                Err(e) => {
                    eprintln!("  cache unavailable ({e}); generating in memory");
                    Suite::generate(defs.scale, defs.seed)
                }
            }
        }
        _ => {
            eprintln!(
                "generating benchmark suite (scale {}, seed {})...",
                defs.scale, defs.seed
            );
            Suite::generate(defs.scale, defs.seed)
        }
    }
}

fn measure(defs: &BarDefs, flags: &RunFlags) -> Result<(RunMeta, Vec<BarRecord>), CliError> {
    let suite = load_suite(defs, flags);
    let meta = RunMeta::capture();
    eprintln!(
        "run {} on {} ({} workloads x {} schemes x {} engines, warmup {}, iters {})",
        meta.run,
        meta.host,
        defs.workloads.len(),
        defs.schemes.len(),
        defs.engines.len(),
        defs.warmup,
        defs.iters,
    );
    let records = run_matrix(&suite, defs, &meta, |line| eprintln!("  {line}"))?;
    Ok((meta, records))
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    if !flags.positional.is_empty() {
        return Err(usage(format!(
            "run takes no positionals, got {:?}",
            flags.positional
        )));
    }
    let defs = load_defs(&flags)?;
    let (meta, records) = measure(&defs, &flags)?;
    let out = flags
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_TRAJECTORY));
    append_records_file(&out, &records)?;
    println!(
        "appended {} records (run {}) to {}",
        records.len(),
        meta.run,
        out.display()
    );
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let report = match flags.positional.as_slice() {
        [a, b] => {
            let ra = read_records_file(Path::new(a))?;
            let rb = read_records_file(Path::new(b))?;
            diff(&ra, &rb)
        }
        [single] => {
            // One file: compare its latest two run batches.
            let records = read_records_file(Path::new(single))?;
            let groups = csp_bar::report::runs(&records);
            let [.., prev, last] = groups.as_slice() else {
                return Err(BarError::Record {
                    detail: format!("{single} holds fewer than two runs; nothing to diff"),
                }
                .into());
            };
            println!("diffing run {} (A) against run {} (B)", prev.run, last.run);
            let a: Vec<BarRecord> = prev.records.iter().map(|r| (*r).clone()).collect();
            let b: Vec<BarRecord> = last.records.iter().map(|r| (*r).clone()).collect();
            diff(&a, &b)
        }
        _ => return Err(usage("diff takes one trajectory or two record files")),
    };
    print!("{report}");
    Ok(())
}

fn cmd_rank(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let [file] = flags.positional.as_slice() else {
        return Err(usage("rank takes exactly one record file"));
    };
    let records = read_records_file(Path::new(file))?;
    if records.is_empty() {
        return Err(BarError::Record {
            detail: format!("{file} holds no records"),
        }
        .into());
    }
    print!("{}", rank(&records));
    Ok(())
}

/// `csp-bar history ENGINE/WORKLOAD/SCHEME [F.bar]` — one cell's
/// committed throughput trajectory: sparkline plus a p50/p99 table.
/// Reads the default trajectory when no file is given. Deliberately no
/// fingerprint requirement: history spans matrix reshapes; records key
/// by cell strings, so old-shape runs that covered the cell still show.
fn cmd_history(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let (cell_arg, file) = match flags.positional.as_slice() {
        [cell] => (cell, PathBuf::from(DEFAULT_TRAJECTORY)),
        [cell, file] => (cell, PathBuf::from(file)),
        _ => {
            return Err(usage(
                "history takes a cell (engine/workload/scheme) and optionally a record file",
            ))
        }
    };
    let mut parts = cell_arg.splitn(3, '/');
    let (Some(engine), Some(workload), Some(scheme)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(usage(format!(
            "cell {cell_arg:?} must be engine/workload/scheme (e.g. simd/water/last(pid+pc8)1[direct])"
        )));
    };
    let records = read_records_file(&file)?;
    let cell = CellKey {
        engine: engine.to_string(),
        workload: workload.to_string(),
        scheme: scheme.to_string(),
    };
    let report = history(&records, &cell);
    if report.points.is_empty() {
        return Err(BarError::Record {
            detail: format!("{}: no runs in {} cover this cell", cell, file.display()),
        }
        .into());
    }
    println!("{report}");
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    if !flags.positional.is_empty() {
        return Err(usage(format!(
            "check takes no positionals, got {:?}",
            flags.positional
        )));
    }
    let defs = load_defs(&flags)?;
    let trajectory_path = flags
        .trajectory
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_TRAJECTORY));
    let trajectory = if trajectory_path.exists() {
        let records = read_records_file(&trajectory_path)?;
        // History measured under a different matrix shape must never
        // gate this one.
        require_fingerprint(&records, defs.fingerprint())?;
        records
    } else {
        eprintln!(
            "no trajectory at {} — gating ratio floors on the current run only",
            trajectory_path.display()
        );
        Vec::new()
    };
    let (_, current) = measure(&defs, &flags)?;
    let report = check(&defs, &trajectory, &current);
    println!("{report}");
    if report.ok() {
        Ok(())
    } else {
        Err(BarError::Gate {
            failures: report.failures.clone(),
        }
        .into())
    }
}

/// Migrates a legacy `BENCH_engine.json` single point into trajectory
/// records: one whole-suite cell per arm, stamped with the definitions'
/// matrix fingerprint so it lives in (and gates nothing outside) that
/// trajectory.
fn cmd_import(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let [file] = flags.positional.as_slice() else {
        return Err(usage("import takes exactly one legacy BENCH_engine.json"));
    };
    let text = std::fs::read_to_string(file).map_err(|e| BarError::io(file.as_str(), e))?;
    let defs = load_defs(&flags)?;
    let records = import_engine_bench(&text, &defs).map_err(|detail| BarError::Record {
        detail: format!("{file}: {detail}"),
    })?;
    let out = flags
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(DEFAULT_TRAJECTORY));
    append_records_file(&out, &records)?;
    println!(
        "imported {} -> {} ({} records, run {})",
        file,
        out.display(),
        records.len(),
        records[0].run
    );
    Ok(())
}

/// `csp-bar prune --keep-last N [F.bar]` — rewrites the trajectory
/// keeping only each cell's newest N records. The rewrite is atomic
/// (tmp + rename), so an interrupted prune leaves the file untouched;
/// `--keep-last 0` is refused rather than silently emptying history.
fn cmd_prune(args: &[String]) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let path = match flags.positional.as_slice() {
        [] => PathBuf::from(DEFAULT_TRAJECTORY),
        [file] => PathBuf::from(file),
        _ => return Err(usage("prune takes at most one trajectory file")),
    };
    let Some(keep_last) = flags.keep_last else {
        return Err(usage("prune needs --keep-last N"));
    };
    if keep_last == 0 {
        return Err(usage(
            "--keep-last 0 would erase the whole trajectory; delete the file if you mean that",
        ));
    }
    let (kept, dropped) = prune_records_file(&path, keep_last)?;
    println!(
        "pruned {}: kept {kept} record(s), dropped {dropped} (newest {keep_last} per cell)",
        path.display()
    );
    Ok(())
}

/// Converts the legacy engine-bench report (naive + prepared arms over
/// the whole family sweep) into two `suite`-workload records.
fn import_engine_bench(text: &str, defs: &BarDefs) -> Result<Vec<BarRecord>, String> {
    let num = |key: &str| -> Result<f64, String> {
        json_number(text, key).ok_or_else(|| format!("missing numeric field {key:?}"))
    };
    let events = num("events_per_pass")? as u64;
    let scale = num("scale")?;
    let seed = num("seed")? as u64;
    let max_depth = num("max_depth")? as u64;
    // The legacy report nests each arm as {"seconds": ..,
    // "events_per_sec": ..}; slice the object out and read inside it.
    let arm = |name: &str| -> Result<(f64, f64), String> {
        let at = text
            .find(&format!("\"{name}\""))
            .ok_or_else(|| format!("missing arm {name:?}"))?;
        let body = &text[at..];
        let end = body.find('}').map(|i| i + 1).unwrap_or(body.len());
        let body = &body[..end];
        let seconds =
            json_number(body, "seconds").ok_or_else(|| format!("arm {name:?} has no seconds"))?;
        let eps = json_number(body, "events_per_sec")
            .ok_or_else(|| format!("arm {name:?} has no events_per_sec"))?;
        Ok((seconds, eps))
    };
    let scheme = format!("family-sweep[depth{max_depth}]");
    let run = format!("legacy-bench-engine-scale{scale}");
    let fingerprint = defs.fingerprint();
    ["naive", "prepared"]
        .iter()
        .map(|engine| {
            let (seconds, events_per_sec) = arm(engine)?;
            let ns = (seconds * 1e9) as u64;
            Ok(BarRecord {
                schema: SCHEMA_VERSION,
                fingerprint,
                run: run.clone(),
                unix_ms: 0,
                git_rev: "legacy".to_string(),
                host: "legacy".to_string(),
                engine: (*engine).to_string(),
                workload: "suite".to_string(),
                scheme: scheme.clone(),
                scale,
                seed,
                warmup: 0,
                iters: 3,
                shards: 0,
                events,
                seconds,
                events_per_sec,
                // The legacy point kept only the fastest pass; both
                // quantiles collapse onto it.
                p50_ns: ns,
                p99_ns: ns,
            })
        })
        .collect()
}

/// Finds `"key": <number>` in a flat JSON document — enough for the
/// legacy reports `csp-repro --bench-engine` writes.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn usage_error(err: &str) -> ExitCode {
    eprintln!("error: {err}\n");
    print_usage();
    ExitCode::from(2)
}

fn print_usage() {
    eprintln!("csp-bar — benchmark barometer (see crates/bar/FORMAT.md)");
    eprintln!();
    eprintln!("usage:");
    eprintln!("  csp-bar run   [--defs F] [--out F] [run options]");
    eprintln!("  csp-bar diff  A.bar [B.bar]");
    eprintln!("  csp-bar rank  F.bar");
    eprintln!("  csp-bar history ENGINE/WORKLOAD/SCHEME [F.bar]");
    eprintln!("  csp-bar check [--defs F] [--trajectory F] [run options]");
    eprintln!("  csp-bar import BENCH_engine.json [--defs F] [--out F]");
    eprintln!("  csp-bar prune --keep-last N [F.bar]");
    eprintln!();
    eprintln!("run options:");
    eprintln!("  --scale S        workload scale factor      (default: from definitions)");
    eprintln!("  --seed N         suite seed                 (default: from definitions)");
    eprintln!("  --warmup N       untimed passes per cell    (default: from definitions)");
    eprintln!("  --iters N        timed passes per cell      (default: from definitions)");
    eprintln!("  --shards N       sharded-engine workers     (default: from definitions)");
    eprintln!("  --cache-dir DIR  trace cache directory      (default: results/trace-cache)");
    eprintln!("  --no-cache       generate the suite in memory");
    eprintln!();
    eprintln!("defaults: --defs {DEFAULT_DEFS}, trajectory {DEFAULT_TRAJECTORY}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_engine_bench_imports_both_arms() {
        let legacy = r#"{
  "bench": "engine", "scale": 0.1, "seed": 1, "max_depth": 4,
  "indexes": 16, "updates": 3, "benchmarks": 7,
  "events_per_pass": 2696400,
  "naive": { "seconds": 0.161240, "events_per_sec": 16722889.9 },
  "prepared": { "seconds": 0.061049, "events_per_sec": 44168092.6 },
  "speedup": 2.6412
}"#;
        let defs = BarDefs::builtin();
        let records = import_engine_bench(legacy, &defs).expect("imports");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].engine, "naive");
        assert_eq!(records[1].engine, "prepared");
        assert_eq!(records[0].workload, "suite");
        assert_eq!(records[0].scheme, "family-sweep[depth4]");
        assert_eq!(records[0].events, 2_696_400);
        let ratio = records[1].events_per_sec / records[0].events_per_sec;
        assert!((ratio - 2.6412).abs() < 1e-3, "{ratio}");
        assert_eq!(records[0].fingerprint, defs.fingerprint());
        // The imported pair forms one run group that reproduces the
        // committed speedup through the generic ratio machinery.
        let groups = csp_bar::report::runs(&records);
        let r = groups[0].engine_ratio("prepared", "naive").expect("pair");
        assert!((r - 2.6412).abs() < 1e-3, "{r}");
    }

    #[test]
    fn import_rejects_malformed_reports() {
        let defs = BarDefs::builtin();
        let err = import_engine_bench("{}", &defs).unwrap_err();
        assert!(err.contains("events_per_pass"), "{err}");
        let err = import_engine_bench(
            r#"{"events_per_pass": 5, "scale": 1, "seed": 1, "max_depth": 2}"#,
            &defs,
        )
        .unwrap_err();
        assert!(err.contains("arm"), "{err}");
    }

    #[test]
    fn json_number_handles_layouts() {
        assert_eq!(json_number("{\"x\":1.5}", "x"), Some(1.5));
        assert_eq!(json_number("{ \"x\" : 2 }", "x"), Some(2.0));
        assert_eq!(json_number("{\"y\": 1}", "x"), None);
    }
}
