//! The captured-measurement record format.
//!
//! A trajectory file is a CRC32c-framed append-only log (via
//! [`csp_trace::io::ChecksumWriter`]): an 8-byte magic (`CSPBAR1\n`)
//! followed by its CRC, then per record `len[4] json crc[4]` with the
//! CRC32c covering everything since the previous checksum. One JSON
//! object per run of one (engine, workload, scheme) cell. A torn tail —
//! a record cut off mid-append by a crash — terminates a read cleanly
//! with every fully-checksummed prefix record intact; corruption *in* a
//! complete record is an error, never silently skipped.
//!
//! Records carry the matrix fingerprint of the definitions they were
//! measured under ([`crate::BarDefs::fingerprint`]); readers gating
//! against a definitions file reject records whose fingerprint does not
//! match, so history from a different matrix shape cannot leak into a
//! comparison. See `crates/bar/FORMAT.md` for the full schema.

use crate::BarError;
use csp_trace::io::{ChecksumReader, ChecksumWriter};
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes opening every trajectory file.
pub const RECORD_MAGIC: &[u8; 8] = b"CSPBAR1\n";

/// The record schema version this crate writes.
pub const SCHEMA_VERSION: u32 = 1;

/// Longest JSON body a record may claim; a wild length prefix in a torn
/// tail is treated as the end of the log, not a 4 GiB allocation.
const MAX_RECORD_BYTES: u32 = 1 << 16;

/// One captured measurement: a single (engine, workload, scheme) cell
/// of one `csp-bar run` invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct BarRecord {
    /// Record schema version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// Matrix fingerprint of the definitions this was measured under.
    pub fingerprint: u64,
    /// Run batch id, shared by every record of one invocation.
    pub run: String,
    /// Wall-clock milliseconds since the Unix epoch at batch start.
    pub unix_ms: u64,
    /// Git revision of the working tree (short hash, or `unknown`).
    pub git_rev: String,
    /// Host fingerprint (`os-arch-hostname`).
    pub host: String,
    /// Engine name.
    pub engine: String,
    /// Workload name (a benchmark, or `suite` for whole-suite cells).
    pub workload: String,
    /// Scheme notation (or a synthetic label for imported cells).
    pub scheme: String,
    /// Workload scale factor.
    pub scale: f64,
    /// Suite seed.
    pub seed: u64,
    /// Untimed warmup passes that preceded timing.
    pub warmup: u32,
    /// Timed iterations.
    pub iters: u32,
    /// Worker shards (sharded engine; 0 when not applicable).
    pub shards: u32,
    /// Decisions scored per iteration.
    pub events: u64,
    /// Fastest timed iteration, in seconds.
    pub seconds: f64,
    /// `events / seconds` of the fastest iteration.
    pub events_per_sec: f64,
    /// Median per-iteration wall time in nanoseconds (log2-bucketed).
    pub p50_ns: u64,
    /// 99th-percentile per-iteration wall time in nanoseconds.
    pub p99_ns: u64,
}

impl BarRecord {
    /// The cell this record measured.
    pub fn cell(&self) -> crate::CellKey {
        crate::CellKey {
            engine: self.engine.clone(),
            workload: self.workload.clone(),
            scheme: self.scheme.clone(),
        }
    }

    /// Serializes the record as a single JSON line.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        let _ = write!(s, "\"schema\":{}", self.schema);
        let _ = write!(s, ",\"fingerprint\":\"{:016x}\"", self.fingerprint);
        push_str_field(&mut s, "run", &self.run);
        let _ = write!(s, ",\"unix_ms\":{}", self.unix_ms);
        push_str_field(&mut s, "git_rev", &self.git_rev);
        push_str_field(&mut s, "host", &self.host);
        push_str_field(&mut s, "engine", &self.engine);
        push_str_field(&mut s, "workload", &self.workload);
        push_str_field(&mut s, "scheme", &self.scheme);
        let _ = write!(s, ",\"scale\":{}", self.scale);
        let _ = write!(s, ",\"seed\":{}", self.seed);
        let _ = write!(s, ",\"warmup\":{}", self.warmup);
        let _ = write!(s, ",\"iters\":{}", self.iters);
        let _ = write!(s, ",\"shards\":{}", self.shards);
        let _ = write!(s, ",\"events\":{}", self.events);
        let _ = write!(s, ",\"seconds\":{:.9}", self.seconds);
        let _ = write!(s, ",\"events_per_sec\":{:.3}", self.events_per_sec);
        let _ = write!(s, ",\"p50_ns\":{}", self.p50_ns);
        let _ = write!(s, ",\"p99_ns\":{}", self.p99_ns);
        s.push('}');
        s
    }

    /// Parses a record from the JSON produced by [`BarRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`BarError::Record`] naming the first missing or
    /// malformed field.
    pub fn from_json(text: &str) -> Result<Self, BarError> {
        let schema = u64_field(text, "schema")?;
        let fingerprint_hex = str_field(text, "fingerprint")?;
        let fingerprint = u64::from_str_radix(&fingerprint_hex, 16).map_err(|_| {
            record_err(&format!(
                "fingerprint {fingerprint_hex:?} is not a 64-bit hex value"
            ))
        })?;
        Ok(BarRecord {
            schema: u32::try_from(schema)
                .map_err(|_| record_err("schema does not fit in 32 bits"))?,
            fingerprint,
            run: str_field(text, "run")?,
            unix_ms: u64_field(text, "unix_ms")?,
            git_rev: str_field(text, "git_rev")?,
            host: str_field(text, "host")?,
            engine: str_field(text, "engine")?,
            workload: str_field(text, "workload")?,
            scheme: str_field(text, "scheme")?,
            scale: f64_field(text, "scale")?,
            seed: u64_field(text, "seed")?,
            warmup: u64_field(text, "warmup")? as u32,
            iters: u64_field(text, "iters")? as u32,
            shards: u64_field(text, "shards")? as u32,
            events: u64_field(text, "events")?,
            seconds: f64_field(text, "seconds")?,
            events_per_sec: f64_field(text, "events_per_sec")?,
            p50_ns: u64_field(text, "p50_ns")?,
            p99_ns: u64_field(text, "p99_ns")?,
        })
    }
}

fn push_str_field(s: &mut String, key: &str, value: &str) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

fn record_err(detail: &str) -> BarError {
    BarError::Record {
        detail: detail.to_string(),
    }
}

/// Locates `"key":` in `text` and returns the byte offset just past the
/// colon. Good enough for the flat objects this module itself writes.
fn field_start(text: &str, key: &str) -> Result<usize, BarError> {
    let needle = format!("\"{key}\":");
    text.find(&needle)
        .map(|at| at + needle.len())
        .ok_or_else(|| record_err(&format!("missing field {key:?}")))
}

fn str_field(text: &str, key: &str) -> Result<String, BarError> {
    let at = field_start(text, key)?;
    let rest = text[at..]
        .strip_prefix('"')
        .ok_or_else(|| record_err(&format!("field {key:?} is not a string")))?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next() {
            None => return Err(record_err(&format!("unterminated string in field {key:?}"))),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| record_err(&format!("bad \\u escape in field {key:?}")))?;
                    out.push(code);
                }
                _ => return Err(record_err(&format!("bad escape in field {key:?}"))),
            },
            Some(c) => out.push(c),
        }
    }
}

fn num_field<'a>(text: &'a str, key: &str) -> Result<&'a str, BarError> {
    let at = field_start(text, key)?;
    let rest = &text[at..];
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(rest.len());
    if end == 0 {
        return Err(record_err(&format!("field {key:?} is not a number")));
    }
    Ok(&rest[..end])
}

fn u64_field(text: &str, key: &str) -> Result<u64, BarError> {
    num_field(text, key)?
        .parse()
        .map_err(|_| record_err(&format!("field {key:?} is not an unsigned integer")))
}

fn f64_field(text: &str, key: &str) -> Result<f64, BarError> {
    num_field(text, key)?
        .parse()
        .map_err(|_| record_err(&format!("field {key:?} is not a number")))
}

/// Serializes `records` (with the file header) to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_records<W: Write>(w: W, records: &[BarRecord]) -> io::Result<()> {
    let mut w = ChecksumWriter::new(w);
    w.write_all(RECORD_MAGIC)?;
    w.write_section_crc()?;
    write_record_frames(&mut w, records)
}

fn write_record_frames<W: Write>(
    w: &mut ChecksumWriter<W>,
    records: &[BarRecord],
) -> io::Result<()> {
    for record in records {
        let line = record.to_json();
        w.write_all(&(line.len() as u32).to_le_bytes())?;
        w.write_all(line.as_bytes())?;
        w.write_section_crc()?;
    }
    Ok(())
}

/// Reads every record from a trajectory stream written by
/// [`write_records`] / [`append_records_file`].
///
/// A torn tail terminates the read cleanly: every fully-checksummed
/// prefix record is returned. Records with a schema version newer than
/// [`SCHEMA_VERSION`] are skipped (forward compatibility); a record
/// that fails its checksum mid-file, or whose JSON is malformed, is an
/// error.
///
/// # Errors
///
/// Returns [`BarError::Record`] on bad magic or malformed complete
/// records, [`BarError::Io`]-free `Record` variants throughout (the
/// caller owns path context).
pub fn read_records<R: Read>(r: R) -> Result<Vec<BarRecord>, BarError> {
    let mut r = ChecksumReader::new(BufReader::new(r));
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| record_err(&format!("unreadable header: {e}")))?;
    if &magic != RECORD_MAGIC {
        return Err(record_err("bad magic; not a csp-bar trajectory file"));
    }
    r.check_section_crc("trajectory header")
        .map_err(|e| record_err(&e.to_string()))?;
    let mut records = Vec::new();
    loop {
        let mut len_bytes = [0u8; 4];
        match read_fully(&mut r, &mut len_bytes) {
            ReadOutcome::Done | ReadOutcome::Torn => break,
            ReadOutcome::Err(e) => return Err(record_err(&e.to_string())),
            ReadOutcome::Ok => {}
        }
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_RECORD_BYTES {
            // A wild length means the tail bytes are garbage, not a
            // record; treat like a torn tail.
            break;
        }
        let mut body = vec![0u8; len as usize];
        match read_fully(&mut r, &mut body) {
            ReadOutcome::Ok => {}
            ReadOutcome::Err(e) => return Err(record_err(&e.to_string())),
            _ => break, // torn mid-record
        }
        if let Err(e) = r.check_section_crc("measurement record") {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                break; // CRC itself truncated: torn append
            }
            // The CRC is present but wrong. On the very last frame that
            // is a partially-flushed append (tolerate); with data still
            // following it is corruption of a complete record (fatal).
            let mut probe = [0u8; 1];
            match r.read(&mut probe) {
                Ok(0) => break,
                _ => return Err(record_err(&e.to_string())),
            }
        }
        let text =
            String::from_utf8(body).map_err(|_| record_err("checksummed record is not UTF-8"))?;
        let schema = u64_field(&text, "schema")?;
        if schema > u64::from(SCHEMA_VERSION) {
            continue; // a future writer's record; skip, don't guess
        }
        records.push(BarRecord::from_json(&text)?);
    }
    Ok(records)
}

enum ReadOutcome {
    Ok,
    Done,
    Torn,
    Err(io::Error),
}

fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return ReadOutcome::Done,
            Ok(0) => return ReadOutcome::Torn,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return ReadOutcome::Err(e),
        }
    }
    ReadOutcome::Ok
}

/// Reads a trajectory file from disk.
///
/// # Errors
///
/// Returns [`BarError::Io`] if the file cannot be opened and
/// [`BarError::Record`] on format errors.
pub fn read_records_file(path: &Path) -> Result<Vec<BarRecord>, BarError> {
    let file = std::fs::File::open(path).map_err(|e| BarError::io(path, e))?;
    read_records(file).map_err(|e| match e {
        BarError::Record { detail } => BarError::Record {
            detail: format!("{}: {detail}", path.display()),
        },
        other => other,
    })
}

/// Appends `records` to the trajectory file at `path`, creating it
/// (with parent directories and the file header) if needed. Existing
/// files must open with the right magic — appending measurement frames
/// to some other format would corrupt both.
///
/// # Errors
///
/// Returns [`BarError::Io`] on filesystem failures and
/// [`BarError::Record`] if an existing file is not a trajectory.
pub fn append_records_file(path: &Path, records: &[BarRecord]) -> Result<(), BarError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| BarError::io(parent, e))?;
        }
    }
    let existing = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    if existing == 0 {
        let file = std::fs::File::create(path).map_err(|e| BarError::io(path, e))?;
        let mut w = BufWriter::new(file);
        write_records(&mut w, records).map_err(|e| BarError::io(path, e))?;
        w.flush().map_err(|e| BarError::io(path, e))?;
        return Ok(());
    }
    // Verify the magic before appending frames to a non-empty file.
    {
        let mut file = std::fs::File::open(path).map_err(|e| BarError::io(path, e))?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)
            .map_err(|e| BarError::io(path, e))?;
        if &magic != RECORD_MAGIC {
            return Err(record_err(&format!(
                "{} exists but is not a csp-bar trajectory file",
                path.display()
            )));
        }
    }
    let file = OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| BarError::io(path, e))?;
    let mut w = ChecksumWriter::new(BufWriter::new(file));
    write_record_frames(&mut w, records).map_err(|e| BarError::io(path, e))?;
    w.flush().map_err(|e| BarError::io(path, e))?;
    Ok(())
}

/// Keeps only the newest `keep_last` records of each (engine, workload,
/// scheme) cell, preserving file order among the survivors. "Newest"
/// means latest in file order — the trajectory is append-only, so file
/// order is time order. `keep_last == 0` drops everything.
pub fn prune_records(records: &[BarRecord], keep_last: usize) -> Vec<BarRecord> {
    use std::collections::HashMap;
    let mut total: HashMap<crate::CellKey, usize> = HashMap::new();
    for r in records {
        *total.entry(r.cell()).or_insert(0) += 1;
    }
    // A record survives when it sits within the last `keep_last` of its
    // cell: its 1-based position must exceed `total - keep_last`.
    let mut seen: HashMap<crate::CellKey, usize> = HashMap::new();
    records
        .iter()
        .filter(|r| {
            let cell = r.cell();
            let cut = total[&cell].saturating_sub(keep_last);
            let at = seen.entry(cell).or_insert(0);
            *at += 1;
            *at > cut
        })
        .cloned()
        .collect()
}

/// Rewrites the trajectory at `path` keeping only the newest
/// `keep_last` records per cell. The replacement is built in memory and
/// swapped in atomically (tmp + rename), so a crash mid-prune leaves
/// the original file intact. Returns `(kept, dropped)` counts.
///
/// # Errors
///
/// Returns [`BarError::Io`] on filesystem failures and
/// [`BarError::Record`] if the existing file is not a trajectory.
pub fn prune_records_file(path: &Path, keep_last: usize) -> Result<(usize, usize), BarError> {
    let records = read_records_file(path)?;
    let kept = prune_records(&records, keep_last);
    let dropped = records.len() - kept.len();
    if dropped == 0 {
        return Ok((kept.len(), 0));
    }
    let mut buf = Vec::with_capacity(kept.len() * 512 + 16);
    write_records(&mut buf, &kept).map_err(|e| BarError::io(path, e))?;
    csp_trace::io::write_file_atomically(path, &buf).map_err(|e| BarError::io(path, e))?;
    Ok((kept.len(), dropped))
}

/// Validates records against a definitions file's matrix fingerprint.
/// Returns the indices and descriptions of rejected records.
pub fn fingerprint_mismatches(records: &[BarRecord], fingerprint: u64) -> Vec<String> {
    records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.fingerprint != fingerprint)
        .map(|(i, r)| {
            format!(
                "record {i} ({}, run {}) carries matrix fingerprint {:016x}, \
                 definitions say {fingerprint:016x}",
                r.cell(),
                r.run,
                r.fingerprint
            )
        })
        .collect()
}

/// Rejects any record whose matrix fingerprint does not match the
/// definitions — a record measured under a different matrix shape must
/// never gate (or be gated by) this one.
///
/// # Errors
///
/// Returns [`BarError::Record`] listing every mismatched record.
pub fn require_fingerprint(records: &[BarRecord], fingerprint: u64) -> Result<(), BarError> {
    let mismatches = fingerprint_mismatches(records, fingerprint);
    if mismatches.is_empty() {
        Ok(())
    } else {
        Err(record_err(&mismatches.join("; ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(engine: &str, workload: &str, run: &str) -> BarRecord {
        BarRecord {
            schema: SCHEMA_VERSION,
            fingerprint: 0xDEAD_BEEF_0123_4567,
            run: run.to_string(),
            unix_ms: 1_700_000_000_000,
            git_rev: "abc123def456".to_string(),
            host: "linux-x86_64-testbox".to_string(),
            engine: engine.to_string(),
            workload: workload.to_string(),
            scheme: "union(pid+pc8)2[forwarded]".to_string(),
            scale: 0.05,
            seed: 1,
            warmup: 1,
            iters: 3,
            shards: 4,
            events: 123_456,
            seconds: 0.004_2,
            events_per_sec: 29_394_285.714,
            p50_ns: 4_194_304,
            p99_ns: 8_388_608,
        }
    }

    #[test]
    fn json_round_trips_including_escapes() {
        let mut r = sample("prepared", "water", "run-1");
        r.host = "we\"ird\\host\nname\ttab\u{1}".to_string();
        let parsed = BarRecord::from_json(&r.to_json()).expect("round-trip");
        assert_eq!(parsed, r);
    }

    #[test]
    fn stream_round_trips_many_records() {
        let records: Vec<BarRecord> = (0..10)
            .map(|i| sample("naive", "gauss", &format!("run-{i}")))
            .collect();
        let mut buf = Vec::new();
        write_records(&mut buf, &records).expect("in-memory write");
        let back = read_records(&buf[..]).expect("read");
        assert_eq!(back, records);
    }

    #[test]
    fn append_extends_an_existing_file() {
        let dir = std::env::temp_dir().join(format!("csp-bar-append-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("t.bar");
        append_records_file(&path, &[sample("naive", "water", "a")]).expect("create");
        append_records_file(&path, &[sample("prepared", "water", "b")]).expect("append");
        let back = read_records_file(&path).expect("read");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].run, "a");
        assert_eq!(back[1].run, "b");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_refuses_foreign_files() {
        let dir = std::env::temp_dir().join(format!("csp-bar-foreign-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("notbar.json");
        std::fs::write(&path, b"{\"not\": \"a trajectory\"}").expect("write");
        let err = append_records_file(&path, &[sample("naive", "water", "a")]).unwrap_err();
        assert!(
            err.to_string().contains("not a csp-bar trajectory"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_schema_records_are_skipped_not_fatal() {
        let old = sample("naive", "water", "a");
        let mut future = sample("prepared", "water", "b");
        future.schema = SCHEMA_VERSION + 1;
        let mut buf = Vec::new();
        write_records(&mut buf, &[old.clone(), future, old.clone()]).expect("write");
        let back = read_records(&buf[..]).expect("read");
        assert_eq!(back.len(), 2);
        assert!(back.iter().all(|r| r.schema == SCHEMA_VERSION));
    }

    #[test]
    fn fingerprint_gatekeeping_rejects_mismatches() {
        let a = sample("naive", "water", "a");
        let mut b = sample("prepared", "water", "a");
        b.fingerprint ^= 1;
        require_fingerprint(std::slice::from_ref(&a), a.fingerprint).expect("match passes");
        let err = require_fingerprint(&[a.clone(), b], a.fingerprint).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        assert_eq!(
            fingerprint_mismatches(std::slice::from_ref(&a), !a.fingerprint).len(),
            1
        );
    }

    #[test]
    fn bad_magic_is_an_error() {
        let err = read_records(&b"NOTABAR1xxxx"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn prune_keeps_the_last_n_per_cell_in_file_order() {
        // Two cells interleaved: naive/water runs a..d, prepared/water
        // runs x..z. Keeping 2 must keep each cell's last two, still in
        // original file order.
        let records = vec![
            sample("naive", "water", "a"),
            sample("prepared", "water", "x"),
            sample("naive", "water", "b"),
            sample("naive", "water", "c"),
            sample("prepared", "water", "y"),
            sample("naive", "water", "d"),
            sample("prepared", "water", "z"),
        ];
        let kept = prune_records(&records, 2);
        let runs: Vec<&str> = kept.iter().map(|r| r.run.as_str()).collect();
        assert_eq!(runs, ["c", "y", "d", "z"]);
        // A cell with fewer records than the cap survives untouched.
        assert_eq!(prune_records(&records, 10), records);
        // Zero drops everything.
        assert!(prune_records(&records, 0).is_empty());
    }

    #[test]
    fn prune_rewrites_the_file_atomically_and_reports_counts() {
        let dir = std::env::temp_dir().join(format!("csp-bar-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("t.bar");
        let records: Vec<BarRecord> = (0..5)
            .map(|i| sample("naive", "gauss", &format!("run-{i}")))
            .collect();
        append_records_file(&path, &records).expect("create");
        let (kept, dropped) = prune_records_file(&path, 2).expect("prune");
        assert_eq!((kept, dropped), (2, 3));
        let back = read_records_file(&path).expect("read pruned");
        let runs: Vec<&str> = back.iter().map(|r| r.run.as_str()).collect();
        assert_eq!(runs, ["run-3", "run-4"]);
        // No leftover tmp file, and a no-op prune reports zero dropped
        // without rewriting.
        assert!(!dir.join("t.bar.tmp").exists());
        let before = std::fs::metadata(&path).expect("meta").modified().ok();
        let (kept, dropped) = prune_records_file(&path, 2).expect("no-op prune");
        assert_eq!((kept, dropped), (2, 0));
        assert_eq!(
            std::fs::metadata(&path).expect("meta").modified().ok(),
            before
        );
        // The pruned file still appends cleanly (header intact).
        append_records_file(&path, &[sample("naive", "gauss", "run-5")]).expect("append");
        assert_eq!(read_records_file(&path).expect("read").len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
