//! Declarative benchmark definitions: the (workload x scheme x engine)
//! matrix, run parameters, and regression gates, parsed from a
//! committed `benchmarks.bar` file.
//!
//! The format is deliberately line-based (`key value...`, `#` comments)
//! so diffs review like configuration, not code:
//!
//! ```text
//! format 1
//! scale 0.05
//! seed 1
//! warmup 1
//! iters 3
//! shards 4
//! engine naive
//! engine prepared
//! workload all
//! scheme union(pid+pc8)2[forwarded]
//! gate ratio prepared/naive min 2.0
//! gate regression default 0.5
//! gate regression engine sharded 0.85
//! gate regression cell prepared water union(pid+pc8)2[forwarded] 0.30
//! ```
//!
//! The definitions carry a 64-bit *matrix fingerprint* over the format
//! version and the engine/workload/scheme sets. Every measurement
//! record stores the fingerprint of the definitions it was produced
//! under; readers reject records whose fingerprint does not match the
//! definitions file they are gating against, so a re-shaped matrix can
//! never silently masquerade as history for the old one.

use crate::BarError;
use csp_core::Scheme;
use csp_harness::checkpoint::Fingerprint;
use csp_harness::engines::ENGINE_NAMES;
use csp_workloads::Benchmark;
use std::fmt;

/// One cell of the matrix, as the strings a record stores. Workload and
/// scheme are strings rather than enums so synthetic cells (e.g. the
/// migrated whole-suite `BENCH_engine.json` point) key the same way as
/// per-benchmark ones.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey {
    /// Engine name (`naive`, `prepared`, `sharded`, ...).
    pub engine: String,
    /// Workload name (a benchmark, or `suite` for whole-suite cells).
    pub workload: String,
    /// Scheme notation.
    pub scheme: String,
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.engine, self.workload, self.scheme)
    }
}

/// A declared minimum on the throughput ratio of two engines, averaged
/// (geometric mean) over every (workload, scheme) cell both cover in
/// one run. Machine-relative: both engines run back to back on the same
/// box, so a slow runner cannot trip it but a real regression does.
#[derive(Clone, Debug, PartialEq)]
pub struct RatioGate {
    /// The engine whose throughput is the numerator.
    pub numerator: String,
    /// The engine whose throughput is the denominator.
    pub denominator: String,
    /// The floor the geometric-mean ratio must reach.
    pub min: f64,
}

impl fmt::Display for RatioGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ratio {}/{} >= {:.2}",
            self.numerator, self.denominator, self.min
        )
    }
}

/// The parsed definitions file.
#[derive(Clone, Debug, PartialEq)]
pub struct BarDefs {
    /// Definitions format version (currently 1).
    pub format: u32,
    /// Workload scale factor runs use by default.
    pub scale: f64,
    /// Suite seed runs use by default.
    pub seed: u64,
    /// Untimed passes per (cell, engine) after the cross-check pass.
    pub warmup: usize,
    /// Timed iterations per (cell, engine); the fastest is the
    /// throughput sample, the spread feeds p50/p99.
    pub iters: usize,
    /// Worker shards for the sharded serving engine.
    pub shards: usize,
    /// Engine names, in declaration order. The first is the ratio
    /// baseline for regression checks.
    pub engines: Vec<String>,
    /// Workloads, in declaration order.
    pub workloads: Vec<Benchmark>,
    /// Schemes, in declaration order.
    pub schemes: Vec<Scheme>,
    /// Declared minimum-ratio gates.
    pub ratio_gates: Vec<RatioGate>,
    /// Default allowed per-cell regression (fraction of the committed
    /// relative throughput a cell may lose before `check` fails).
    pub default_regression: f64,
    /// Per-engine regression overrides.
    pub engine_regression: Vec<(String, f64)>,
    /// Per-cell regression overrides (most specific, wins over engine).
    pub cell_regression: Vec<(CellKey, f64)>,
}

impl BarDefs {
    /// The built-in matrix: every workload, the verification-grid scheme
    /// spread (one per update mode), all three engines, and the gates
    /// that generalize the historical `--bench-check` 2x/20% rule.
    ///
    /// # Panics
    ///
    /// Never in practice: the built-in text is a test-covered constant.
    pub fn builtin() -> Self {
        match Self::parse(BUILTIN_DEFS) {
            Ok(d) => d,
            Err(e) => panic!("built-in definitions must parse: {e}"),
        }
    }

    /// Parses a definitions file.
    ///
    /// # Errors
    ///
    /// Returns [`BarError::Defs`] naming the offending line.
    pub fn parse(text: &str) -> Result<Self, BarError> {
        let mut defs = BarDefs {
            format: 1,
            scale: 0.05,
            seed: 1,
            warmup: 1,
            iters: 3,
            shards: 4,
            engines: Vec::new(),
            workloads: Vec::new(),
            schemes: Vec::new(),
            ratio_gates: Vec::new(),
            default_regression: 0.5,
            engine_regression: Vec::new(),
            cell_regression: Vec::new(),
        };
        for (n, raw) in text.lines().enumerate() {
            let line = n + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut parts = content.split_whitespace();
            let key = parts.next().unwrap_or("");
            let rest: Vec<&str> = parts.collect();
            match key {
                "format" => defs.format = parse_num(&rest, line, "format")?,
                "scale" => {
                    defs.scale = parse_num(&rest, line, "scale")?;
                    if defs.scale <= 0.0 {
                        return err(line, "scale must be positive");
                    }
                }
                "seed" => defs.seed = parse_num(&rest, line, "seed")?,
                "warmup" => defs.warmup = parse_num(&rest, line, "warmup")?,
                "iters" => {
                    defs.iters = parse_num(&rest, line, "iters")?;
                    if defs.iters == 0 {
                        return err(line, "iters must be at least 1");
                    }
                }
                "shards" => {
                    defs.shards = parse_num(&rest, line, "shards")?;
                    if defs.shards == 0 {
                        return err(line, "shards must be at least 1");
                    }
                }
                "engine" => match rest.as_slice() {
                    [name] if ENGINE_NAMES.contains(name) => {
                        defs.engines.push((*name).to_string());
                    }
                    [name] => {
                        return err(
                            line,
                            &format!("unknown engine {name:?} (known: {ENGINE_NAMES:?})"),
                        )
                    }
                    _ => return err(line, "engine takes exactly one name"),
                },
                "workload" => match rest.as_slice() {
                    ["all"] => defs.workloads.extend(Benchmark::ALL),
                    [name] => match Benchmark::from_name(name) {
                        Some(b) => defs.workloads.push(b),
                        None => return err(line, &format!("unknown workload {name:?}")),
                    },
                    _ => return err(line, "workload takes exactly one name (or `all`)"),
                },
                "scheme" => match rest.as_slice() {
                    [notation] => match notation.parse::<Scheme>() {
                        Ok(s) => defs.schemes.push(s),
                        Err(e) => return err(line, &format!("bad scheme {notation:?}: {e}")),
                    },
                    _ => return err(line, "scheme takes exactly one notation"),
                },
                "gate" => parse_gate(&mut defs, &rest, line)?,
                other => return err(line, &format!("unknown directive {other:?}")),
            }
        }
        if defs.format != 1 {
            return err(0, &format!("unsupported format version {}", defs.format));
        }
        if defs.engines.is_empty() || defs.workloads.is_empty() || defs.schemes.is_empty() {
            return err(
                0,
                "definitions need at least one engine, workload, and scheme",
            );
        }
        Ok(defs)
    }

    /// The matrix fingerprint: format version plus the engine, workload,
    /// and scheme sets in declaration order. Run parameters and gates
    /// are deliberately excluded — retuning a threshold or scale must
    /// not orphan the committed trajectory.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new("csp-bar-defs-v1").push_u64(u64::from(self.format));
        for e in &self.engines {
            fp = fp.push(e.as_bytes());
        }
        for w in &self.workloads {
            fp = fp.push(w.name().as_bytes());
        }
        for s in &self.schemes {
            fp = fp.push(s.to_string().as_bytes());
        }
        fp.finish()
    }

    /// The allowed regression fraction for one cell: cell override, then
    /// engine override, then the default.
    pub fn regression_threshold(&self, cell: &CellKey) -> f64 {
        if let Some((_, t)) = self.cell_regression.iter().find(|(k, _)| k == cell) {
            return *t;
        }
        if let Some((_, t)) = self
            .engine_regression
            .iter()
            .find(|(e, _)| *e == cell.engine)
        {
            return *t;
        }
        self.default_regression
    }

    /// The engine regression ratios are measured against: the first
    /// declared engine.
    pub fn baseline_engine(&self) -> &str {
        &self.engines[0]
    }
}

fn parse_gate(defs: &mut BarDefs, rest: &[&str], line: usize) -> Result<(), BarError> {
    match rest {
        ["ratio", pair, "min", value] => {
            let (num, den) = pair
                .split_once('/')
                .ok_or_else(|| defs_err(line, "ratio gate needs `numerator/denominator`"))?;
            let min: f64 = value
                .parse()
                .map_err(|_| defs_err(line, "ratio gate min must be a number"))?;
            defs.ratio_gates.push(RatioGate {
                numerator: num.to_string(),
                denominator: den.to_string(),
                min,
            });
            Ok(())
        }
        ["regression", "default", value] => {
            defs.default_regression = parse_fraction(value, line)?;
            Ok(())
        }
        ["regression", "engine", name, value] => {
            defs.engine_regression
                .push(((*name).to_string(), parse_fraction(value, line)?));
            Ok(())
        }
        ["regression", "cell", engine, workload, scheme, value] => {
            let key = CellKey {
                engine: (*engine).to_string(),
                workload: (*workload).to_string(),
                scheme: (*scheme).to_string(),
            };
            defs.cell_regression
                .push((key, parse_fraction(value, line)?));
            Ok(())
        }
        _ => err(
            line,
            "gate forms: `gate ratio A/B min X`, `gate regression default X`, \
             `gate regression engine NAME X`, `gate regression cell ENGINE WORKLOAD SCHEME X`",
        ),
    }
}

fn parse_fraction(value: &str, line: usize) -> Result<f64, BarError> {
    let v: f64 = value
        .parse()
        .map_err(|_| defs_err(line, "regression threshold must be a number"))?;
    if !(0.0..1.0).contains(&v) {
        return Err(defs_err(line, "regression threshold must be in [0, 1)"));
    }
    Ok(v)
}

fn parse_num<T: std::str::FromStr>(rest: &[&str], line: usize, key: &str) -> Result<T, BarError> {
    match rest {
        [one] => one
            .parse()
            .map_err(|_| defs_err(line, &format!("{key} needs a valid number"))),
        _ => Err(defs_err(line, &format!("{key} takes exactly one value"))),
    }
}

fn defs_err(line: usize, detail: &str) -> BarError {
    BarError::Defs {
        line,
        detail: detail.to_string(),
    }
}

fn err<T>(line: usize, detail: &str) -> Result<T, BarError> {
    Err(defs_err(line, detail))
}

/// The built-in definitions text, identical to the committed
/// `benchmarks.bar` at the time of writing.
pub const BUILTIN_DEFS: &str = "\
# csp-bar benchmark definitions (see crates/bar/FORMAT.md)
format 1
scale 0.05
seed 1
warmup 1
iters 3
shards 4

# Engines, baseline (ratio denominator) first.
engine naive
engine prepared
engine simd
engine sharded

workload all

# One scheme per update mode, mirroring the serve verification grid.
scheme last(pid+pc8)1[direct]
scheme union(pid+pc8)2[forwarded]
scheme union(dir+add8)2[ordered]

# The historical --bench-check rule, generalized: prepared must stay
# >= 2x naive (geometric mean over the matrix), and the simd engine
# must stay >= 2x prepared on top of that; no cell may lose more than
# its declared fraction of committed relative throughput. Per-cell
# timings at this scale are sub-millisecond, so the per-cell tolerance
# is wide; the ratio gates catch systematic collapse.
gate ratio prepared/naive min 2.0
gate ratio simd/prepared min 2.0
gate regression default 0.5
# The sharded engine measures routing and channel cost over a
# persistent worker pool; its relative throughput is still noisy
# across runner core counts.
gate regression engine sharded 0.85
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_parses_and_covers_the_acceptance_matrix() {
        let d = BarDefs::builtin();
        assert_eq!(d.format, 1);
        assert_eq!(d.engines, vec!["naive", "prepared", "simd", "sharded"]);
        assert_eq!(d.workloads.len(), 7);
        assert_eq!(d.schemes.len(), 3);
        assert_eq!(d.baseline_engine(), "naive");
        assert_eq!(d.ratio_gates.len(), 2);
        assert!((d.ratio_gates[0].min - 2.0).abs() < 1e-12);
        assert_eq!(d.ratio_gates[0].to_string(), "ratio prepared/naive >= 2.00");
        assert_eq!(d.ratio_gates[1].to_string(), "ratio simd/prepared >= 2.00");
    }

    #[test]
    fn fingerprint_tracks_matrix_not_tuning() {
        let a = BarDefs::builtin();
        let mut b = a.clone();
        b.scale = 0.5;
        b.iters = 9;
        b.default_regression = 0.1;
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.schemes.pop();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.engines.pop();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn threshold_precedence_is_cell_engine_default() {
        let mut d = BarDefs::builtin();
        let cell = CellKey {
            engine: "sharded".to_string(),
            workload: "water".to_string(),
            scheme: "last(pid+pc8)1[direct]".to_string(),
        };
        assert!((d.regression_threshold(&cell) - 0.85).abs() < 1e-12);
        d.cell_regression.push((cell.clone(), 0.10));
        assert!((d.regression_threshold(&cell) - 0.10).abs() < 1e-12);
        let other = CellKey {
            engine: "prepared".to_string(),
            workload: "water".to_string(),
            scheme: "last(pid+pc8)1[direct]".to_string(),
        };
        assert!((d.regression_threshold(&other) - d.default_regression).abs() < 1e-12);
    }

    #[test]
    fn parse_rejects_bad_lines_with_line_numbers() {
        for (text, needle) in [
            ("format 1\nengine warp\n", "unknown engine"),
            ("format 1\nworkload mars\n", "unknown workload"),
            ("format 1\nscheme banana\n", "bad scheme"),
            ("format 1\nscale -2\n", "positive"),
            (
                "format 2\nengine naive\nworkload all\nscheme last(pid+pc8)1\n",
                "unsupported format",
            ),
            ("format 1\nfrobnicate\n", "unknown directive"),
            ("format 1\ngate regression default 1.5\n", "[0, 1)"),
            (
                "format 1\ngate ratio prepared min 2\n",
                "numerator/denominator",
            ),
            ("", "at least one engine"),
        ] {
            let e = BarDefs::parse(text).expect_err(text);
            assert!(e.to_string().contains(needle), "{text:?} -> {e}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let d = BarDefs::parse(
            "# header\nformat 1\n\nengine naive # trailing\nworkload water\nscheme last(pid+pc8)1\n",
        )
        .expect("parses");
        assert_eq!(d.engines, vec!["naive"]);
        assert_eq!(d.workloads, vec![Benchmark::Water]);
    }
}
