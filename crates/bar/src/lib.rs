//! `csp-bar` — the benchmark barometer.
//!
//! The workspace has grown several execution engines for the paper's
//! pattern-based predictors (frozen-naive, prepared single-pass,
//! sharded serving), but for a long time only a single committed perf
//! point (`BENCH_engine.json`) and one hardcoded CI ratio check stood
//! between a speedup on one path and a silent slowdown on another.
//! This crate is the rebar-style answer:
//!
//! * [`defs`] — declarative benchmark definitions enumerating the
//!   (workload x scheme x engine) matrix, run parameters, and the
//!   regression/ratio gates, parsed from a committed `benchmarks.bar`
//!   file and fingerprinted so measurement records can be tied to the
//!   exact matrix that produced them;
//! * [`record`] — the captured-measurement record format: one JSON
//!   record per (engine, workload, scheme) run, CRC32c-framed through
//!   `csp_trace::io`, appended under `results/bar/` so the committed
//!   benchmark history is a *trajectory* rather than a point (see
//!   `crates/bar/FORMAT.md` for the byte-level spec);
//! * [`runner`] — the matrix runner: warmup and iteration control,
//!   per-iteration latency through `csp-obs` histograms (p50/p99), and
//!   a bit-identity cross-check of every engine's screening statistics
//!   (via `csp_harness::engines`) before any timing is trusted;
//! * [`report`] — `diff` (cell-by-cell comparison of two records or
//!   revisions), `rank` (engines ordered per workload), `history` (one
//!   cell's throughput across every committed run: sparkline plus
//!   p50/p99 table), and `check` (the generalized regression gate:
//!   per-cell thresholds from the definitions file over
//!   machine-relative ratios, plus declared minimum-ratio gates such
//!   as the prepared-vs-naive and simd-vs-prepared >= 2x floors).
//!
//! The `csp-bar` binary exposes `run`, `diff`, `rank`, `history`,
//! `check`, `import` (migration of legacy `BENCH_engine.json` single
//! points into the trajectory), and `prune` (atomic rewrite keeping
//! only the newest N records per cell, bounding committed file growth).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not unwrap
// panics; tests opt back in where unwrapping is the assertion.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod defs;
pub mod record;
pub mod report;
pub mod runner;

pub use defs::{BarDefs, CellKey, RatioGate};
pub use record::{prune_records, read_records, BarRecord, RECORD_MAGIC, SCHEMA_VERSION};
pub use report::{check, diff, history, rank, CheckReport, HistoryReport};
pub use runner::{run_matrix, RunMeta};

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong in the barometer, as a typed error.
#[derive(Debug)]
pub enum BarError {
    /// An I/O failure, with the path it happened on.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A definitions file that does not parse.
    Defs {
        /// 1-based line number of the offending line (0 = whole file).
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// A measurement record that does not decode or validate.
    Record {
        /// What was wrong.
        detail: String,
    },
    /// Two engines disagreed on screening statistics — timing aborted.
    Divergence {
        /// Human-readable description of the diverging cell.
        detail: String,
    },
    /// A regression or ratio gate failed.
    Gate {
        /// The failed gate descriptions, one per line.
        failures: Vec<String>,
    },
}

impl fmt::Display for BarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            BarError::Defs { line, detail } if *line == 0 => {
                write!(f, "definitions file: {detail}")
            }
            BarError::Defs { line, detail } => {
                write!(f, "definitions file line {line}: {detail}")
            }
            BarError::Record { detail } => write!(f, "measurement record: {detail}"),
            BarError::Divergence { detail } => {
                write!(f, "cross-engine divergence (timing aborted): {detail}")
            }
            BarError::Gate { failures } => {
                write!(f, "{} gate(s) failed:", failures.len())?;
                for failure in failures {
                    write!(f, "\n  FAIL {failure}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BarError {}

impl BarError {
    /// Wraps an I/O error with its path.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        BarError::Io {
            path: path.into(),
            source,
        }
    }
}
