//! The matrix runner: evaluates every (workload x scheme x engine) cell
//! of a definitions file with warmup and iteration control, and refuses
//! to record a single timing until every engine's screening statistics
//! have been proven bit-identical on that cell.
//!
//! Per cell the sequence is:
//!
//! 1. **Cross-check pass** — each engine evaluates the cell once and
//!    the confusion matrices are compared (`csp_harness::engines::
//!    cross_check`). Divergence aborts the whole run: a benchmark of a
//!    wrong answer is worse than no benchmark. This pass doubles as the
//!    first warmup.
//! 2. **Warmup passes** — `warmup` additional untimed evaluations per
//!    engine (page faults, frequency ramp, branch history).
//! 3. **Timed passes** — `iters` evaluations per engine; each duration
//!    lands in a `csp-obs` log2 histogram. The fastest iteration is the
//!    throughput sample (matching the historical engine bench), the
//!    histogram supplies p50/p99.

use crate::record::BarRecord;
use crate::{BarDefs, BarError};
use csp_core::PreparedTrace;
use csp_harness::engines::{cross_check, engine_by_name, Engine, EngineCell};
use csp_harness::Suite;
use csp_obs::Histogram;
use std::time::Instant;

/// Provenance stamped on every record of one run batch.
#[derive(Clone, Debug)]
pub struct RunMeta {
    /// Run batch id (shared by every record of the batch).
    pub run: String,
    /// Batch start, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Git revision (short), or `unknown`.
    pub git_rev: String,
    /// Host fingerprint (`os-arch-hostname`).
    pub host: String,
}

impl RunMeta {
    /// Captures the current process's provenance: wall clock, best-effort
    /// git revision, and host fingerprint.
    pub fn capture() -> Self {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let git_rev = git_rev().unwrap_or_else(|| "unknown".to_string());
        RunMeta {
            run: format!("{git_rev}-{unix_ms}"),
            unix_ms,
            git_rev,
            host: host_fingerprint(),
        }
    }
}

/// Best-effort short git revision of the working tree, without shelling
/// out: follows `.git/HEAD` through loose and packed refs.
pub fn git_rev() -> Option<String> {
    let head = std::fs::read_to_string(".git/HEAD").ok()?;
    let head = head.trim();
    let full = if let Some(reference) = head.strip_prefix("ref: ") {
        match std::fs::read_to_string(format!(".git/{reference}")) {
            Ok(h) => h.trim().to_string(),
            Err(_) => {
                let packed = std::fs::read_to_string(".git/packed-refs").ok()?;
                packed
                    .lines()
                    .filter(|l| !l.starts_with('#') && !l.starts_with('^'))
                    .find_map(|l| l.strip_suffix(reference).map(|h| h.trim().to_string()))?
            }
        }
    } else {
        head.to_string()
    };
    if full.len() < 12 || !full.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    Some(full[..12].to_string())
}

/// `os-arch-hostname`, with the hostname from `$HOSTNAME` or the
/// kernel, falling back to `unknown-host`.
pub fn host_fingerprint() -> String {
    let hostname = std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.trim().is_empty())
        .or_else(|| {
            std::fs::read_to_string("/proc/sys/kernel/hostname")
                .ok()
                .map(|h| h.trim().to_string())
                .filter(|h| !h.is_empty())
        })
        .unwrap_or_else(|| "unknown-host".to_string());
    format!(
        "{}-{}-{hostname}",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

/// Runs the full matrix of `defs` over `suite`, returning one record
/// per (workload, scheme, engine) cell. `progress` receives one line
/// per completed cell (for CLI display; pass `|_| {}` to silence).
///
/// # Errors
///
/// Returns [`BarError::Divergence`] the moment any engine disagrees
/// with the reference on screening statistics — no timings are returned
/// from a diverging run — and [`BarError::Defs`] for engine names the
/// adapter layer cannot construct.
pub fn run_matrix(
    suite: &Suite,
    defs: &BarDefs,
    meta: &RunMeta,
    mut progress: impl FnMut(&str),
) -> Result<Vec<BarRecord>, BarError> {
    let engines: Vec<Box<dyn Engine>> = defs
        .engines
        .iter()
        .map(|name| {
            engine_by_name(name, defs.shards).ok_or_else(|| BarError::Defs {
                line: 0,
                detail: format!("engine {name:?} has no adapter"),
            })
        })
        .collect::<Result<_, _>>()?;
    let fingerprint = defs.fingerprint();
    let mut records = Vec::with_capacity(defs.workloads.len() * defs.schemes.len() * engines.len());

    for &workload in &defs.workloads {
        let bench = suite.try_trace(workload).map_err(|e| BarError::Defs {
            line: 0,
            detail: e.to_string(),
        })?;
        let prepared = PreparedTrace::new(&bench.trace);
        for scheme in &defs.schemes {
            let cell = EngineCell {
                bench,
                prepared: &prepared,
                scheme: *scheme,
            };
            // Gate timing behind bit-identity: every engine must agree
            // on this cell's screening statistics first.
            cross_check(&engines, &cell).map_err(|d| BarError::Divergence {
                detail: d.to_string(),
            })?;
            for engine in &engines {
                let timing = time_engine(engine.as_ref(), &cell, defs.warmup, defs.iters);
                let record = BarRecord {
                    schema: crate::SCHEMA_VERSION,
                    fingerprint,
                    run: meta.run.clone(),
                    unix_ms: meta.unix_ms,
                    git_rev: meta.git_rev.clone(),
                    host: meta.host.clone(),
                    engine: engine.name().to_string(),
                    workload: workload.name().to_string(),
                    scheme: scheme.to_string(),
                    scale: suite.scale(),
                    seed: suite.seed(),
                    warmup: defs.warmup as u32,
                    iters: defs.iters as u32,
                    shards: if engine.name() == "sharded" {
                        defs.shards as u32
                    } else {
                        0
                    },
                    events: cell.events(),
                    seconds: timing.seconds,
                    events_per_sec: cell.events() as f64 / timing.seconds,
                    p50_ns: timing.p50_ns,
                    p99_ns: timing.p99_ns,
                };
                progress(&format!(
                    "{:>9} {:<28} {:<9} {:>10.2}M ev/s  p50 {:>9}ns",
                    record.workload,
                    record.scheme,
                    record.engine,
                    record.events_per_sec / 1e6,
                    record.p50_ns,
                ));
                records.push(record);
            }
        }
    }
    Ok(records)
}

struct Timing {
    seconds: f64,
    p50_ns: u64,
    p99_ns: u64,
}

fn time_engine(engine: &dyn Engine, cell: &EngineCell<'_>, warmup: usize, iters: usize) -> Timing {
    for _ in 0..warmup {
        std::hint::black_box(engine.eval(cell));
    }
    let hist = Histogram::new();
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(engine.eval(cell));
        let elapsed = t0.elapsed();
        hist.record_duration(elapsed);
        best = best.min(elapsed.as_secs_f64());
    }
    let snap = hist.snapshot();
    Timing {
        seconds: best.max(1e-9),
        p50_ns: snap.quantile(0.5),
        p99_ns: snap.quantile(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_workloads::Benchmark;

    fn tiny_defs() -> BarDefs {
        let mut defs = BarDefs::builtin();
        defs.workloads = vec![Benchmark::Water, Benchmark::Gauss];
        defs.schemes.truncate(2);
        defs.warmup = 0;
        defs.iters = 1;
        defs.shards = 2;
        defs
    }

    fn meta() -> RunMeta {
        RunMeta {
            run: "test-run".to_string(),
            unix_ms: 42,
            git_rev: "cafecafecafe".to_string(),
            host: "test-host".to_string(),
        }
    }

    #[test]
    fn matrix_produces_one_record_per_cell() {
        let suite = Suite::generate(0.01, 7);
        let defs = tiny_defs();
        let mut lines = 0;
        let records = run_matrix(&suite, &defs, &meta(), |_| lines += 1).expect("runs");
        assert_eq!(records.len(), 2 * 2 * 4);
        assert_eq!(lines, records.len());
        let fingerprint = defs.fingerprint();
        for r in &records {
            assert_eq!(r.schema, crate::SCHEMA_VERSION);
            assert_eq!(r.fingerprint, fingerprint);
            assert_eq!(r.run, "test-run");
            assert!(r.events > 0);
            assert!(r.seconds > 0.0);
            assert!(r.events_per_sec > 0.0);
            assert!(r.p50_ns > 0);
            assert!(r.p99_ns >= r.p50_ns);
            assert_eq!(r.shards, if r.engine == "sharded" { 2 } else { 0 });
        }
        // Engine order inside each cell follows the definitions.
        assert_eq!(records[0].engine, "naive");
        assert_eq!(records[1].engine, "prepared");
        assert_eq!(records[2].engine, "simd");
        assert_eq!(records[3].engine, "sharded");
    }

    #[test]
    fn unknown_engine_fails_before_running() {
        let suite = Suite::generate(0.01, 7);
        let mut defs = tiny_defs();
        defs.engines = vec!["warp-drive".to_string()];
        let err = run_matrix(&suite, &defs, &meta(), |_| {}).unwrap_err();
        assert!(err.to_string().contains("no adapter"), "{err}");
    }

    #[test]
    fn meta_capture_is_well_formed() {
        let m = RunMeta::capture();
        assert!(m.run.contains('-'));
        assert!(m.host.contains(std::env::consts::ARCH));
    }
}
