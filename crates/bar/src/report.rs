//! Trajectory analysis: `diff` two record sets cell by cell, `rank`
//! engines per workload, and `check` the declared regression gates.
//!
//! All comparisons are *machine-relative* where they gate: absolute
//! events/sec depends on the box, so `check` compares each cell's
//! throughput **relative to the baseline engine measured in the same
//! run** against the committed relative throughput in the trajectory.
//! A slower CI runner shifts every cell together and trips nothing; a
//! real regression of one path moves that cell's ratio and fails its
//! declared threshold. This generalizes the historical
//! `csp-repro --bench-check` 2x/20% rule from one number to the whole
//! matrix.

use crate::record::BarRecord;
use crate::{BarDefs, CellKey};
use std::collections::BTreeMap;
use std::fmt;

/// One run batch: every record sharing a `run` id, in file order.
#[derive(Clone, Debug)]
pub struct RunGroup<'a> {
    /// The shared run id.
    pub run: &'a str,
    /// Batch timestamp (from the first record).
    pub unix_ms: u64,
    /// The batch's records.
    pub records: Vec<&'a BarRecord>,
}

impl RunGroup<'_> {
    /// The latest record for each cell in this batch.
    pub fn cells(&self) -> BTreeMap<CellKey, &BarRecord> {
        let mut map = BTreeMap::new();
        for r in &self.records {
            map.insert(r.cell(), *r);
        }
        map
    }

    /// Geometric-mean throughput ratio `numerator/denominator` over
    /// every (workload, scheme) pair both engines cover in this batch.
    /// `None` when no pair is covered.
    pub fn engine_ratio(&self, numerator: &str, denominator: &str) -> Option<f64> {
        let cells = self.cells();
        let ratios: Vec<f64> = cells
            .iter()
            .filter(|(k, _)| k.engine == numerator)
            .filter_map(|(k, num)| {
                let den = cells.get(&CellKey {
                    engine: denominator.to_string(),
                    workload: k.workload.clone(),
                    scheme: k.scheme.clone(),
                })?;
                (den.events_per_sec > 0.0).then(|| num.events_per_sec / den.events_per_sec)
            })
            .collect();
        geomean(&ratios)
    }
}

/// Splits records into run batches, in order of first appearance
/// (appends are chronological, so the last group is the newest).
pub fn runs(records: &[BarRecord]) -> Vec<RunGroup<'_>> {
    let mut out: Vec<RunGroup<'_>> = Vec::new();
    for r in records {
        match out.iter_mut().find(|g| g.run == r.run) {
            Some(g) => g.records.push(r),
            None => out.push(RunGroup {
                run: &r.run,
                unix_ms: r.unix_ms,
                records: vec![r],
            }),
        }
    }
    out
}

/// Geometric mean of strictly positive samples.
pub fn geomean(values: &[f64]) -> Option<f64> {
    let logs: Vec<f64> = values
        .iter()
        .filter(|v| **v > 0.0)
        .map(|v| v.ln())
        .collect();
    if logs.is_empty() {
        None
    } else {
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }
}

fn latest_per_cell(records: &[BarRecord]) -> BTreeMap<CellKey, &BarRecord> {
    let mut map = BTreeMap::new();
    for r in records {
        map.insert(r.cell(), r);
    }
    map
}

/// One cell's before/after comparison.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// The compared cell.
    pub cell: CellKey,
    /// Throughput in the first record set (events/sec).
    pub a: f64,
    /// Throughput in the second record set (events/sec).
    pub b: f64,
}

impl DiffRow {
    /// `b / a`: above 1.0 the cell got faster.
    pub fn ratio(&self) -> f64 {
        if self.a > 0.0 {
            self.b / self.a
        } else {
            f64::NAN
        }
    }
}

/// The cell-by-cell comparison of two record sets.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Cells present in both sets (latest record each side).
    pub rows: Vec<DiffRow>,
    /// Cells only in the first set.
    pub only_a: Vec<CellKey>,
    /// Cells only in the second set.
    pub only_b: Vec<CellKey>,
}

/// Compares two record sets per cell (the latest record on each side).
pub fn diff(a: &[BarRecord], b: &[BarRecord]) -> DiffReport {
    let a_cells = latest_per_cell(a);
    let b_cells = latest_per_cell(b);
    let mut report = DiffReport::default();
    for (key, ra) in &a_cells {
        match b_cells.get(key) {
            Some(rb) => report.rows.push(DiffRow {
                cell: key.clone(),
                a: ra.events_per_sec,
                b: rb.events_per_sec,
            }),
            None => report.only_a.push(key.clone()),
        }
    }
    for key in b_cells.keys() {
        if !a_cells.contains_key(key) {
            report.only_b.push(key.clone());
        }
    }
    // Biggest movers first.
    report.rows.sort_by(|x, y| {
        let dx = (x.ratio().ln()).abs();
        let dy = (y.ratio().ln()).abs();
        dy.partial_cmp(&dx).unwrap_or(std::cmp::Ordering::Equal)
    });
    report
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<58} {:>12} {:>12} {:>8}",
            "cell (engine/workload/scheme)", "A ev/s", "B ev/s", "B/A"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<58} {:>12.0} {:>12.0} {:>7.2}x",
                row.cell.to_string(),
                row.a,
                row.b,
                row.ratio()
            )?;
        }
        for key in &self.only_a {
            writeln!(f, "{key:<58} only in A")?;
        }
        for key in &self.only_b {
            writeln!(f, "{key:<58} only in B")?;
        }
        Ok(())
    }
}

/// Engines ordered by throughput for one workload.
#[derive(Clone, Debug)]
pub struct RankRow {
    /// The workload ranked.
    pub workload: String,
    /// `(engine, geometric-mean events/sec across schemes)`, fastest
    /// first.
    pub engines: Vec<(String, f64)>,
}

/// The per-workload engine ranking from the latest run in `records`.
#[derive(Clone, Debug, Default)]
pub struct RankReport {
    /// The run id the ranking was computed from.
    pub run: String,
    /// One row per workload, in trajectory order.
    pub rows: Vec<RankRow>,
}

/// Ranks engines per workload from the latest run batch.
pub fn rank(records: &[BarRecord]) -> RankReport {
    let groups = runs(records);
    let Some(latest) = groups.last() else {
        return RankReport::default();
    };
    let cells = latest.cells();
    let mut workloads: Vec<String> = Vec::new();
    for key in cells.keys() {
        if !workloads.contains(&key.workload) {
            workloads.push(key.workload.clone());
        }
    }
    let mut rows = Vec::new();
    for workload in workloads {
        let mut engines: Vec<(String, f64)> = Vec::new();
        for (key, record) in &cells {
            if key.workload != workload {
                continue;
            }
            match engines.iter_mut().find(|(e, _)| *e == key.engine) {
                // Accumulate log-space sums; finalized below.
                Some((_, acc)) => *acc += record.events_per_sec.max(1e-9).ln(),
                None => engines.push((key.engine.clone(), record.events_per_sec.max(1e-9).ln())),
            }
        }
        let scheme_count = cells
            .keys()
            .filter(|k| k.workload == workload)
            .map(|k| &k.scheme)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
            .max(1);
        for (_, acc) in &mut engines {
            *acc = (*acc / scheme_count as f64).exp();
        }
        engines.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        rows.push(RankRow { workload, engines });
    }
    RankReport {
        run: latest.run.to_string(),
        rows,
    }
}

impl fmt::Display for RankReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "engine ranking (run {})", self.run)?;
        for row in &self.rows {
            write!(f, "{:>9}:", row.workload)?;
            for (i, (engine, eps)) in row.engines.iter().enumerate() {
                let sep = if i == 0 { " " } else { " > " };
                write!(f, "{sep}{engine} ({:.2}M ev/s)", eps / 1e6)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The outcome of `csp-bar check`: every gate evaluated, pass or fail.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Gates that held.
    pub passes: Vec<String>,
    /// Gates that failed.
    pub failures: Vec<String>,
    /// Informational notes (cells with no committed history, ...).
    pub notes: Vec<String>,
}

impl CheckReport {
    /// `true` when every gate held.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.passes {
            writeln!(f, "  ok   {p}")?;
        }
        for n in &self.notes {
            writeln!(f, "  note {n}")?;
        }
        for x in &self.failures {
            writeln!(f, "  FAIL {x}")?;
        }
        write!(
            f,
            "{} gates passed, {} failed",
            self.passes.len(),
            self.failures.len()
        )
    }
}

/// Evaluates every declared gate: minimum-ratio gates on both the
/// latest committed run and the current one, and per-cell regression of
/// current relative throughput (vs the baseline engine) against the
/// newest trajectory run covering the cell.
pub fn check(defs: &BarDefs, trajectory: &[BarRecord], current: &[BarRecord]) -> CheckReport {
    let mut report = CheckReport::default();
    let trajectory_runs = runs(trajectory);
    let current_runs = runs(current);
    let baseline = defs.baseline_engine();

    // Declared minimum-ratio gates (e.g. prepared/naive >= 2x), on the
    // committed trajectory's newest run and on the current run.
    for gate in &defs.ratio_gates {
        for (label, group) in [
            ("trajectory", trajectory_runs.last()),
            ("current", current_runs.last()),
        ] {
            let Some(group) = group else { continue };
            match group.engine_ratio(&gate.numerator, &gate.denominator) {
                Some(ratio) if ratio >= gate.min => report.passes.push(format!(
                    "{gate}: measured {ratio:.2}x on {label} run {}",
                    group.run
                )),
                Some(ratio) => report.failures.push(format!(
                    "{gate}: measured only {ratio:.2}x on {label} run {}",
                    group.run
                )),
                None => report.notes.push(format!(
                    "{gate}: no overlapping cells on {label} run {}",
                    group.run
                )),
            }
        }
    }

    // Per-cell regression: current relative throughput vs committed.
    let Some(current_group) = current_runs.last() else {
        if !current.is_empty() {
            report.notes.push("current record set has no runs".into());
        }
        return report;
    };
    let current_cells = current_group.cells();
    for (key, record) in &current_cells {
        if key.engine == baseline {
            continue; // the baseline is the denominator, not a gated cell
        }
        let base_key = CellKey {
            engine: baseline.to_string(),
            workload: key.workload.clone(),
            scheme: key.scheme.clone(),
        };
        let Some(base) = current_cells.get(&base_key) else {
            report
                .notes
                .push(format!("{key}: no {baseline} twin in the current run"));
            continue;
        };
        let rel_now = record.events_per_sec / base.events_per_sec;
        // Newest committed run that covers both the cell and its twin.
        let committed = trajectory_runs.iter().rev().find_map(|g| {
            let cells = g.cells();
            let num = cells.get(key)?;
            let den = cells.get(&base_key)?;
            Some((g.run, num.events_per_sec / den.events_per_sec))
        });
        match committed {
            None => report
                .notes
                .push(format!("{key}: no committed trajectory yet (new cell)")),
            Some((run, rel_then)) => {
                let threshold = defs.regression_threshold(key);
                let floor = rel_then * (1.0 - threshold);
                if rel_now >= floor {
                    report.passes.push(format!(
                        "{key}: {rel_now:.3}x vs {baseline} (committed {rel_then:.3}x \
                         in {run}, floor {floor:.3}x at {:.0}% tolerance)",
                        threshold * 100.0
                    ));
                } else {
                    report.failures.push(format!(
                        "{key}: regressed to {rel_now:.3}x vs {baseline} (committed \
                         {rel_then:.3}x in {run}, floor {floor:.3}x at {:.0}% tolerance)",
                        threshold * 100.0
                    ));
                }
            }
        }
    }
    report
}

/// One committed observation of a cell, in trajectory (chronological)
/// order.
#[derive(Clone, Debug)]
pub struct HistoryPoint {
    /// The run id the observation belongs to.
    pub run: String,
    /// Batch timestamp of the run.
    pub unix_ms: u64,
    /// Measured throughput (events/sec).
    pub events_per_sec: f64,
    /// Median per-iteration latency.
    pub p50_ns: u64,
    /// Tail per-iteration latency.
    pub p99_ns: u64,
}

/// The throughput trajectory of one cell across committed runs:
/// a sparkline for shape at a glance, a table for the numbers.
#[derive(Clone, Debug, Default)]
pub struct HistoryReport {
    /// The cell whose history this is.
    pub cell: String,
    /// One point per committed run covering the cell, oldest first.
    pub points: Vec<HistoryPoint>,
}

impl HistoryReport {
    /// A min-max scaled unicode sparkline of throughput, oldest run on
    /// the left. Empty when there are no points.
    pub fn sparkline(&self) -> String {
        sparkline(
            &self
                .points
                .iter()
                .map(|p| p.events_per_sec)
                .collect::<Vec<_>>(),
        )
    }
}

/// Min-max scales `values` onto the eight unicode bar glyphs. A flat
/// series renders mid-height so one-point histories still show a mark.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in values {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    values
        .iter()
        .map(|v| {
            if hi <= lo {
                BARS[3]
            } else {
                let t = (v - lo) / (hi - lo);
                BARS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// The trajectory of one cell: every committed run covering `cell`,
/// oldest first (file order is append order, hence chronological).
pub fn history(records: &[BarRecord], cell: &CellKey) -> HistoryReport {
    let mut points = Vec::new();
    for group in runs(records) {
        if let Some(record) = group.cells().get(cell) {
            points.push(HistoryPoint {
                run: group.run.to_string(),
                unix_ms: group.unix_ms,
                events_per_sec: record.events_per_sec,
                p50_ns: record.p50_ns,
                p99_ns: record.p99_ns,
            });
        }
    }
    HistoryReport {
        cell: cell.to_string(),
        points,
    }
}

impl fmt::Display for HistoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.points.is_empty() {
            return write!(f, "{}: no committed runs cover this cell", self.cell);
        }
        writeln!(f, "{}  {}", self.cell, self.sparkline())?;
        writeln!(
            f,
            "{:<28} {:>12} {:>10} {:>10}",
            "run", "ev/s", "p50", "p99"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:<28} {:>11.2}M {:>10} {:>10}",
                p.run,
                p.events_per_sec / 1e6,
                format_ns(p.p50_ns),
                format_ns(p.p99_ns)
            )?;
        }
        let first = self.points[0].events_per_sec;
        let last = self.points[self.points.len() - 1].events_per_sec;
        if first > 0.0 {
            write!(
                f,
                "net {:.2}x over {} runs",
                last / first,
                self.points.len()
            )?;
        }
        Ok(())
    }
}

/// Renders nanoseconds with a unit that keeps 3-4 significant digits.
fn format_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BarRecord;

    fn rec(run: &str, engine: &str, workload: &str, scheme: &str, eps: f64) -> BarRecord {
        BarRecord {
            schema: crate::SCHEMA_VERSION,
            fingerprint: 7,
            run: run.to_string(),
            unix_ms: 1000,
            git_rev: "rev".to_string(),
            host: "host".to_string(),
            engine: engine.to_string(),
            workload: workload.to_string(),
            scheme: scheme.to_string(),
            scale: 0.05,
            seed: 1,
            warmup: 1,
            iters: 3,
            shards: 0,
            events: 1000,
            seconds: 1000.0 / eps,
            events_per_sec: eps,
            p50_ns: 100,
            p99_ns: 200,
        }
    }

    fn gated_defs() -> BarDefs {
        let mut d = BarDefs::builtin();
        d.default_regression = 0.2;
        d
    }

    #[test]
    fn runs_group_in_file_order() {
        let records = vec![
            rec("a", "naive", "water", "s", 1.0),
            rec("a", "prepared", "water", "s", 2.0),
            rec("b", "naive", "water", "s", 1.0),
        ];
        let groups = runs(&records);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].run, "a");
        assert_eq!(groups[0].records.len(), 2);
        assert_eq!(groups[1].run, "b");
    }

    #[test]
    fn engine_ratio_is_geomean_over_cells() {
        let records = vec![
            rec("a", "naive", "water", "s", 10.0),
            rec("a", "prepared", "water", "s", 40.0), // 4x
            rec("a", "naive", "gauss", "s", 10.0),
            rec("a", "prepared", "gauss", "s", 10.0), // 1x
        ];
        let groups = runs(&records);
        let ratio = groups[0].engine_ratio("prepared", "naive").expect("cells");
        assert!((ratio - 2.0).abs() < 1e-9, "{ratio}"); // sqrt(4 * 1)
        assert!(groups[0].engine_ratio("prepared", "sharded").is_none());
    }

    #[test]
    fn diff_pairs_cells_and_flags_singletons() {
        let a = vec![
            rec("a", "naive", "water", "s", 10.0),
            rec("a", "naive", "gauss", "s", 10.0),
        ];
        let b = vec![
            rec("b", "naive", "water", "s", 20.0),
            rec("b", "prepared", "water", "s", 5.0),
        ];
        let d = diff(&a, &b);
        assert_eq!(d.rows.len(), 1);
        assert!((d.rows[0].ratio() - 2.0).abs() < 1e-9);
        assert_eq!(d.only_a.len(), 1);
        assert_eq!(d.only_b.len(), 1);
        assert!(d.to_string().contains("only in A"));
    }

    #[test]
    fn rank_orders_engines_fastest_first() {
        let records = vec![
            rec("a", "naive", "water", "s1", 10.0),
            rec("a", "prepared", "water", "s1", 40.0),
            rec("a", "sharded", "water", "s1", 1.0),
        ];
        let r = rank(&records);
        assert_eq!(r.rows.len(), 1);
        let names: Vec<&str> = r.rows[0].engines.iter().map(|(e, _)| e.as_str()).collect();
        assert_eq!(names, vec!["prepared", "naive", "sharded"]);
        assert!(r.to_string().contains("prepared"));
    }

    #[test]
    fn rank_uses_only_the_latest_run() {
        let records = vec![
            rec("old", "naive", "water", "s1", 1000.0),
            rec("new", "naive", "water", "s1", 10.0),
            rec("new", "prepared", "water", "s1", 20.0),
        ];
        let r = rank(&records);
        assert_eq!(r.run, "new");
        assert_eq!(r.rows[0].engines[0].0, "prepared");
        assert!((r.rows[0].engines[0].1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn check_passes_when_ratios_hold_and_cells_stay_put() {
        let defs = gated_defs();
        let trajectory = vec![
            rec("t1", "naive", "water", "s", 10.0),
            rec("t1", "prepared", "water", "s", 30.0),
        ];
        let current = vec![
            // A slower machine overall: both cells halve. Relative
            // throughput is unchanged, so nothing regresses.
            rec("c1", "naive", "water", "s", 5.0),
            rec("c1", "prepared", "water", "s", 15.0),
        ];
        let report = check(&defs, &trajectory, &current);
        assert!(report.ok(), "{report}");
        // ratio gate on both runs + one cell regression check.
        assert_eq!(report.passes.len(), 3, "{report}");
    }

    #[test]
    fn check_fails_a_regressed_cell_past_threshold() {
        let defs = gated_defs();
        let trajectory = vec![
            rec("t1", "naive", "water", "s", 10.0),
            rec("t1", "prepared", "water", "s", 40.0), // 4x committed
        ];
        let current = vec![
            rec("c1", "naive", "water", "s", 10.0),
            rec("c1", "prepared", "water", "s", 25.0), // 2.5x < 4x * 0.8
        ];
        let report = check(&defs, &trajectory, &current);
        assert!(!report.ok());
        assert!(
            report.failures.iter().any(|f| f.contains("regressed")),
            "{report}"
        );
    }

    #[test]
    fn check_fails_a_broken_ratio_gate() {
        let defs = gated_defs();
        let trajectory = vec![
            rec("t1", "naive", "water", "s", 10.0),
            rec("t1", "prepared", "water", "s", 15.0), // 1.5x < 2x gate
        ];
        let report = check(&defs, &trajectory, &[]);
        assert!(!report.ok());
        assert!(
            report.failures.iter().any(|f| f.contains("only 1.50x")),
            "{report}"
        );
    }

    #[test]
    fn check_notes_new_cells_instead_of_failing() {
        let defs = gated_defs();
        let current = vec![
            rec("c1", "naive", "water", "s", 10.0),
            rec("c1", "prepared", "water", "s", 30.0),
        ];
        let report = check(&defs, &[], &current);
        assert!(report.ok(), "{report}");
        assert!(
            report.notes.iter().any(|n| n.contains("new cell")),
            "{report}"
        );
    }

    #[test]
    fn history_walks_runs_chronologically_for_one_cell() {
        let records = vec![
            rec("t1", "simd", "water", "s", 10e6),
            rec("t1", "naive", "water", "s", 1e6), // other cells ignored
            rec("t2", "simd", "water", "s", 20e6),
            rec("t3", "simd", "water", "s", 40e6),
            rec("t3", "simd", "gauss", "s", 5e6),
        ];
        let cell = CellKey {
            engine: "simd".to_string(),
            workload: "water".to_string(),
            scheme: "s".to_string(),
        };
        let h = history(&records, &cell);
        assert_eq!(h.points.len(), 3);
        assert_eq!(h.points[0].run, "t1");
        assert_eq!(h.points[2].run, "t3");
        assert_eq!(h.sparkline().chars().count(), 3);
        // Min-max scaling: the extremes hit the extreme glyphs.
        assert!(h.sparkline().starts_with('▁'), "{}", h.sparkline());
        assert!(h.sparkline().ends_with('█'), "{}", h.sparkline());
        let text = h.to_string();
        assert!(text.contains("net 4.00x over 3 runs"), "{text}");
        assert!(text.contains("simd/water/s"), "{text}");
    }

    #[test]
    fn history_of_an_uncovered_cell_is_empty() {
        let records = vec![rec("t1", "naive", "water", "s", 1e6)];
        let cell = CellKey {
            engine: "simd".to_string(),
            workload: "water".to_string(),
            scheme: "s".to_string(),
        };
        let h = history(&records, &cell);
        assert!(h.points.is_empty());
        assert!(h.to_string().contains("no committed runs"));
        assert_eq!(h.sparkline(), "");
    }

    #[test]
    fn sparkline_is_flat_mid_height_for_equal_values() {
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▄▄▄");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn check_is_machine_relative_not_absolute() {
        let defs = gated_defs();
        let trajectory = vec![
            rec("t1", "naive", "water", "s", 100.0),
            rec("t1", "prepared", "water", "s", 300.0),
        ];
        // 10x slower box, same shape: must pass.
        let current = vec![
            rec("c1", "naive", "water", "s", 10.0),
            rec("c1", "prepared", "water", "s", 30.0),
        ];
        assert!(check(&defs, &trajectory, &current).ok());
    }
}
