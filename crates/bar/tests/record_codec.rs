//! Robustness tests for the trajectory record codec: property-based
//! round-trips over adversarial field contents, torn-tail tolerance at
//! every byte boundary, and fingerprint gatekeeping against a
//! definitions file.

use csp_bar::record::{
    append_records_file, read_records, read_records_file, require_fingerprint, write_records,
};
use csp_bar::{BarDefs, BarRecord, SCHEMA_VERSION};
use proptest::prelude::*;

/// Strings drawn from a deliberately nasty alphabet: quotes, escapes,
/// control characters, multi-byte code points, JSON syntax.
fn wild_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..16, 0..24).prop_map(|picks| {
        const ALPHABET: [char; 16] = [
            'a',
            'Z',
            '9',
            '"',
            '\\',
            '\n',
            '\t',
            '\u{1}',
            '\u{1f}',
            '{',
            '}',
            ':',
            ',',
            'é',
            '€',
            '\u{10348}',
        ];
        picks.into_iter().map(|i| ALPHABET[i as usize]).collect()
    })
}

fn milli_f64() -> impl Strategy<Value = f64> {
    (1u64..2_000_000_000).prop_map(|v| v as f64 / 1000.0)
}

fn arbitrary_record() -> impl Strategy<Value = BarRecord> {
    (
        (wild_string(), wild_string(), wild_string(), wild_string()),
        (wild_string(), wild_string()),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            0u32..1000,
            0u32..1000,
        ),
        (
            milli_f64(),
            milli_f64(),
            any::<u64>(),
            any::<u64>(),
            0u32..64,
        ),
    )
        .prop_map(
            |(
                (run, git_rev, host, engine),
                (workload, scheme),
                (fingerprint, unix_ms, seed, warmup, iters),
                (seconds, events_per_sec, p50_ns, p99_ns, shards),
            )| BarRecord {
                schema: SCHEMA_VERSION,
                fingerprint,
                run,
                unix_ms,
                git_rev,
                host,
                engine,
                workload,
                scheme,
                scale: 0.05,
                seed,
                warmup,
                iters: iters.max(1),
                shards,
                events: unix_ms.wrapping_mul(31) % 1_000_000,
                seconds,
                events_per_sec,
                p50_ns,
                p99_ns,
            },
        )
}

/// `to_json` rounds seconds/events_per_sec to fixed precision; compare
/// everything else exactly and those within the printed precision.
fn assert_round_trip_eq(a: &BarRecord, b: &BarRecord) {
    assert!(
        (a.seconds - b.seconds).abs() < 1e-6,
        "{} vs {}",
        a.seconds,
        b.seconds
    );
    assert!(
        (a.events_per_sec - b.events_per_sec).abs() < 1e-2,
        "{} vs {}",
        a.events_per_sec,
        b.events_per_sec
    );
    let mut a = a.clone();
    let mut b = b.clone();
    a.seconds = 0.0;
    b.seconds = 0.0;
    a.events_per_sec = 0.0;
    b.events_per_sec = 0.0;
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any record — including quotes, backslashes, control characters,
    /// and astral-plane code points in every string field — survives
    /// JSON encode/decode.
    #[test]
    fn prop_json_round_trips(record in arbitrary_record()) {
        let back = BarRecord::from_json(&record.to_json()).expect("parse back");
        assert_round_trip_eq(&record, &back);
    }

    /// Full stream framing round-trips a batch of arbitrary records.
    #[test]
    fn prop_stream_round_trips(records in proptest::collection::vec(arbitrary_record(), 0..8)) {
        let mut buf = Vec::new();
        write_records(&mut buf, &records).expect("in-memory write");
        let back = read_records(&buf[..]).expect("read back");
        assert_eq!(back.len(), records.len());
        for (a, b) in records.iter().zip(&back) {
            assert_round_trip_eq(a, b);
        }
    }
}

/// A crash mid-append may truncate the file at ANY byte. Everything
/// after the 12-byte header (magic + CRC) must read back as a clean
/// prefix of fully-checksummed records — never an error, never a
/// half-parsed record.
#[test]
fn torn_tail_at_every_byte_boundary_yields_a_clean_prefix() {
    let records: Vec<BarRecord> = (0..3)
        .map(|i| {
            let mut r = sample(i);
            r.run = format!("torn-{i}");
            r
        })
        .collect();
    let mut buf = Vec::new();
    write_records(&mut buf, &records).expect("in-memory write");
    let header = csp_bar::RECORD_MAGIC.len() + 4;

    // Frame boundaries: after the header, then after each record frame.
    let mut boundaries = vec![header];
    for r in &records {
        let frame = 4 + r.to_json().len() + 4;
        boundaries.push(boundaries.last().copied().unwrap_or(0) + frame);
    }
    assert_eq!(*boundaries.last().expect("nonempty"), buf.len());

    for cut in 0..=buf.len() {
        let torn = &buf[..cut];
        if cut < header {
            // Inside the header there is no trajectory to salvage.
            assert!(read_records(torn).is_err(), "cut {cut} should be fatal");
            continue;
        }
        let got = read_records(torn).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        let complete = boundaries
            .iter()
            .filter(|&&b| b > header && b <= cut)
            .count();
        assert_eq!(got.len(), complete, "cut {cut}");
        for (a, b) in records.iter().take(complete).zip(&got) {
            assert_eq!(a.run, b.run, "cut {cut}");
        }
    }
}

/// Corruption *inside* a complete record (not at the tail) must be an
/// error — torn-tail tolerance must never become silent data loss.
#[test]
fn mid_file_corruption_is_fatal_not_skipped() {
    let records = vec![sample(1), sample(2), sample(3)];
    let mut buf = Vec::new();
    write_records(&mut buf, &records).expect("in-memory write");
    // Flip a byte inside the first record's JSON body (well past the
    // header, well before the tail).
    let at = csp_bar::RECORD_MAGIC.len() + 4 + 4 + 10;
    buf[at] ^= 0x40;
    let err = read_records(&buf[..]).expect_err("corruption must surface");
    assert!(err.to_string().contains("measurement record"), "{err}");
}

/// Records measured under a different matrix shape are rejected against
/// the definitions file's fingerprint.
#[test]
fn fingerprint_mismatch_against_defs_is_rejected() {
    let defs = BarDefs::builtin();
    let mut matching = sample(1);
    matching.fingerprint = defs.fingerprint();
    let mut reshaped = sample(2);
    reshaped.fingerprint = {
        let mut other = defs.clone();
        other.schemes.pop();
        other.fingerprint()
    };
    assert_ne!(matching.fingerprint, reshaped.fingerprint);

    require_fingerprint(&[matching.clone()], defs.fingerprint()).expect("matching history gates");
    let err = require_fingerprint(&[matching, reshaped], defs.fingerprint())
        .expect_err("reshaped history must not gate");
    let msg = err.to_string();
    assert!(msg.contains("fingerprint"), "{msg}");
    assert!(msg.contains("record 1"), "{msg}");
}

/// The on-disk append path tolerates a torn tail and keeps accepting
/// appends afterwards (the reader simply stops at the tear).
#[test]
fn torn_file_on_disk_still_reads_its_prefix() {
    let dir = std::env::temp_dir().join(format!("csp-bar-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("trajectory.bar");
    append_records_file(&path, &[sample(1), sample(2)]).expect("create");
    // Tear the file mid-way through the second record.
    let bytes = std::fs::read(&path).expect("read file");
    let first_frame_end = csp_bar::RECORD_MAGIC.len() + 4 + 4 + sample(1).to_json().len() + 4;
    std::fs::write(&path, &bytes[..first_frame_end + 7]).expect("tear");
    let got = read_records_file(&path).expect("prefix survives");
    assert_eq!(got.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

fn sample(i: u64) -> BarRecord {
    BarRecord {
        schema: SCHEMA_VERSION,
        fingerprint: 0xABCD_0000 + i,
        run: format!("run-{i}"),
        unix_ms: 1_700_000_000_000 + i,
        git_rev: "abc123def456".to_string(),
        host: "linux-x86_64-testbox".to_string(),
        engine: "prepared".to_string(),
        workload: "water".to_string(),
        scheme: "union(pid+pc8)2[forwarded]".to_string(),
        scale: 0.05,
        seed: 1,
        warmup: 1,
        iters: 3,
        shards: 0,
        events: 123_456,
        seconds: 0.004,
        events_per_sec: 30_864_000.0,
        p50_ns: 4_194_304,
        p99_ns: 8_388_608,
    }
}
