//! Bench the measurement-record codec: JSON encode, the CRC32c-framed
//! stream write, and the torn-tail-tolerant read back.
//!
//! The trajectory file is append-only and read in full by `diff`,
//! `rank`, and every CI `check`, so decode throughput bounds how long a
//! committed history can grow before gating gets slow.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csp_bar::record::{read_records, write_records};
use csp_bar::{BarRecord, SCHEMA_VERSION};

fn sample(i: u64) -> BarRecord {
    BarRecord {
        schema: SCHEMA_VERSION,
        fingerprint: 0x00C0_FFEE_0000_0000 | i,
        run: format!("bench-run-{}", i / 63),
        unix_ms: 1_700_000_000_000 + i,
        git_rev: "abc123def456".to_string(),
        host: "linux-x86_64-benchbox".to_string(),
        engine: ["naive", "prepared", "sharded"][(i % 3) as usize].to_string(),
        workload: [
            "barnes", "em3d", "gauss", "mp3d", "ocean", "unstruct", "water",
        ][(i % 7) as usize]
            .to_string(),
        scheme: "union(pid+pc8)2[forwarded]".to_string(),
        scale: 0.05,
        seed: 1,
        warmup: 1,
        iters: 3,
        shards: if i % 3 == 2 { 4 } else { 0 },
        events: 100_000 + i,
        seconds: 0.004 + (i as f64) * 1e-6,
        events_per_sec: 25_000_000.0 + (i as f64),
        p50_ns: 4_194_304,
        p99_ns: 8_388_608,
    }
}

fn bench_record_codec(c: &mut Criterion) {
    // A plausible multi-year trajectory: ~16 runs of the full
    // 7x3x3 matrix.
    const RECORDS: u64 = 1008;
    let records: Vec<BarRecord> = (0..RECORDS).map(sample).collect();
    let mut encoded = Vec::new();
    write_records(&mut encoded, &records).expect("in-memory write");

    let mut group = c.benchmark_group("bar_record_codec");
    group.throughput(Throughput::Elements(RECORDS));
    group.bench_function("encode_stream", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            write_records(&mut buf, &records).expect("in-memory write");
            buf
        })
    });
    group.bench_function("decode_stream", |b| {
        b.iter(|| read_records(&encoded[..]).expect("decode"))
    });
    group.bench_function("json_round_trip_one", |b| {
        let one = sample(7);
        b.iter(|| BarRecord::from_json(&one.to_json()).expect("round-trip"))
    });
    group.finish();
}

criterion_group!(benches, bench_record_codec);
criterion_main!(benches);
