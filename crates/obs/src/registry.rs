//! The metrics registry: named, labeled instruments plus a
//! Prometheus-style text exposition encoder and its parsing twin.
//!
//! Registration is get-or-create behind a mutex (cold path: once per
//! instrument, typically at engine construction or connection setup);
//! the returned [`Arc`] handles record lock-free on the hot path.
//! Encoding walks the registry under the same mutex, reading each
//! instrument's atomics — readers never interrupt recorders.
//!
//! Besides owned instruments, a registry accepts *callback* series
//! ([`Registry::register_counter_fn`], [`Registry::register_gauge_fn`])
//! polled at encode time — the integration path for subsystems that
//! already maintain their own atomic counters (e.g. the shard workers'
//! [`ShardCounters`](https://docs.rs)-style cells): no double counting,
//! no hot-path change, the registry just learns where to look.

use crate::metrics::{bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// What kind of series a metric name exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Goes up and down.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

type Labels = Vec<(String, String)>;

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
}

struct Family {
    kind: MetricKind,
    help: String,
    series: BTreeMap<Labels, Instrument>,
}

/// A collection of named, labeled metric instruments.
///
/// # Example
///
/// ```
/// use csp_obs::Registry;
///
/// let registry = Registry::new();
/// let hits = registry.counter("cache_hits_total", "Cache hits.", &[("tier", "l1")]);
/// hits.inc();
/// let text = registry.encode_prometheus();
/// assert!(text.contains("cache_hits_total{tier=\"l1\"} 1"));
/// ```
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

fn to_labels(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn instrument<T, F, G>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: F,
        get: G,
    ) -> Arc<T>
    where
        F: FnOnce() -> (Arc<T>, Instrument),
        G: FnOnce(&Instrument) -> Option<Arc<T>>,
    {
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} registered as {} and requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        let key = to_labels(labels);
        if let Some(existing) = family.series.get(&key) {
            return get(existing).unwrap_or_else(|| {
                panic!("metric {name}{labels:?} is a callback series, not an owned instrument")
            });
        }
        let (handle, instrument) = make();
        family.series.insert(key, instrument);
        handle
    }

    /// Gets or registers a counter. `help` is recorded on first
    /// registration of the name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind, or
    /// this exact series was registered as a callback.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.instrument(
            name,
            help,
            labels,
            MetricKind::Counter,
            || {
                let h = Arc::new(Counter::new());
                (Arc::clone(&h), Instrument::Counter(h))
            },
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Gets or registers a gauge.
    ///
    /// # Panics
    ///
    /// As [`counter`](Self::counter).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.instrument(
            name,
            help,
            labels,
            MetricKind::Gauge,
            || {
                let h = Arc::new(Gauge::new());
                (Arc::clone(&h), Instrument::Gauge(h))
            },
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Gets or registers a histogram.
    ///
    /// # Panics
    ///
    /// As [`counter`](Self::counter).
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.instrument(
            name,
            help,
            labels,
            MetricKind::Histogram,
            || {
                let h = Arc::new(Histogram::new());
                (Arc::clone(&h), Instrument::Histogram(h))
            },
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Registers (or replaces) a counter series whose value is polled
    /// from `f` at encode time — for subsystems that already keep their
    /// own atomic counters.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a non-counter kind.
    pub fn register_counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register_fn(name, help, labels, MetricKind::Counter, {
            Instrument::CounterFn(Box::new(f))
        });
    }

    /// Registers (or replaces) a gauge series polled from `f` at encode
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a non-gauge kind.
    pub fn register_gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        self.register_fn(name, help, labels, MetricKind::Gauge, {
            Instrument::GaugeFn(Box::new(f))
        });
    }

    fn register_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        instrument: Instrument,
    ) {
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} registered as {} and requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family.series.insert(to_labels(labels), instrument);
    }

    /// Encodes every series as Prometheus-style text exposition:
    /// `# HELP` / `# TYPE` headers per family, then one line per series
    /// (histograms expand to cumulative `_bucket{le=...}`, `_sum`,
    /// `_count`, and a non-standard `_max` line). Families and series
    /// are emitted in sorted order, so equal registry states encode to
    /// equal bytes — see `tests/golden.rs`.
    pub fn encode_prometheus(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, instrument) in &family.series {
                match instrument {
                    Instrument::Counter(c) => {
                        emit_sample(&mut out, name, labels, &[], c.get().to_string());
                    }
                    Instrument::CounterFn(f) => {
                        emit_sample(&mut out, name, labels, &[], f().to_string());
                    }
                    Instrument::Gauge(g) => {
                        emit_sample(&mut out, name, labels, &[], g.get().to_string());
                    }
                    Instrument::GaugeFn(f) => {
                        emit_sample(&mut out, name, labels, &[], f().to_string());
                    }
                    Instrument::Histogram(h) => {
                        encode_histogram(&mut out, name, labels, &h.snapshot());
                    }
                }
            }
        }
        out
    }
}

/// Appends `name{labels,extra} value\n`.
fn emit_sample(
    out: &mut String,
    name: &str,
    labels: &Labels,
    extra: &[(&str, String)],
    value: String,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        for (k, v) in extra {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value);
    out.push('\n');
}

fn encode_histogram(out: &mut String, name: &str, labels: &Labels, s: &HistogramSnapshot) {
    let highest = s
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| (i + 1).min(BUCKETS - 1));
    let mut cumulative = 0u64;
    for (i, &c) in s.buckets.iter().enumerate().take(highest + 1) {
        cumulative += c;
        emit_sample(
            out,
            &format!("{name}_bucket"),
            labels,
            &[("le", bucket_upper(i).to_string())],
            cumulative.to_string(),
        );
    }
    emit_sample(
        out,
        &format!("{name}_bucket"),
        labels,
        &[("le", "+Inf".to_string())],
        s.count().to_string(),
    );
    emit_sample(out, &format!("{name}_sum"), labels, &[], s.sum.to_string());
    emit_sample(
        out,
        &format!("{name}_count"),
        labels,
        &[],
        s.count().to_string(),
    );
    emit_sample(out, &format!("{name}_max"), labels, &[], s.max.to_string());
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One parsed exposition sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric (series) name, e.g. `csp_shard_queries_total` or
    /// `csp_shard_query_service_ns_bucket`.
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The value as written (always an integer for our encoder, but
    /// `+Inf`-tolerant parsers keep it textual).
    pub raw: String,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The sample value as `u64` (None for non-integers).
    pub fn value_u64(&self) -> Option<u64> {
        self.raw.parse().ok()
    }

    /// The sample value as `i64` (None for non-integers).
    pub fn value_i64(&self) -> Option<i64> {
        self.raw.parse().ok()
    }
}

/// Parses Prometheus-style text exposition (the dialect
/// [`Registry::encode_prometheus`] writes) back into samples. Comment
/// and blank lines are skipped; a malformed line is skipped rather than
/// failing the whole scrape.
pub fn parse_text(text: &str) -> Vec<Sample> {
    text.lines().filter_map(parse_line).collect()
}

fn parse_line(line: &str) -> Option<Sample> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (series, value) = line.rsplit_once(' ')?;
    let (name, labels) = match series.split_once('{') {
        None => (series.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}')?;
            let mut labels = Vec::new();
            for pair in split_label_pairs(body) {
                let (k, v) = pair.split_once('=')?;
                let v = v.strip_prefix('"')?.strip_suffix('"')?;
                labels.push((
                    k.to_string(),
                    v.replace("\\n", "\n")
                        .replace("\\\"", "\"")
                        .replace("\\\\", "\\"),
                ));
            }
            (name.to_string(), labels)
        }
    };
    Some(Sample {
        name,
        labels,
        raw: value.to_string(),
    })
}

/// Splits `k1="v1",k2="v2"` on commas outside quotes.
fn split_label_pairs(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut start, mut in_quotes, mut escaped) = (0usize, false, false);
    for (i, ch) in body.char_indices() {
        match ch {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if start < body.len() {
        out.push(&body[start..]);
    }
    out
}

/// Sums every sample of a counter family (e.g. the per-shard split of
/// `csp_shard_queries_total`) into one total.
pub fn sum_counter(samples: &[Sample], name: &str) -> u64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .filter_map(Sample::value_u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip_through_text() {
        let r = Registry::new();
        r.counter("requests_total", "Requests.", &[("shard", "0")])
            .add(7);
        r.counter("requests_total", "Requests.", &[("shard", "1")])
            .add(3);
        r.gauge("depth", "Queue depth.", &[]).set(-2);
        let text = r.encode_prometheus();
        let samples = parse_text(&text);
        assert_eq!(sum_counter(&samples, "requests_total"), 10);
        let depth = samples.iter().find(|s| s.name == "depth").expect("depth");
        assert_eq!(depth.value_i64(), Some(-2));
        // get-or-register returns the same instrument.
        r.counter("requests_total", "Requests.", &[("shard", "0")])
            .inc();
        let samples = parse_text(&r.encode_prometheus());
        assert_eq!(sum_counter(&samples, "requests_total"), 11);
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_parses_back() {
        let r = Registry::new();
        let h = r.histogram("lat_ns", "Latency.", &[("shard", "0")]);
        h.record(100);
        h.record(100);
        h.record(5000);
        let samples = parse_text(&r.encode_prometheus());
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "lat_ns_bucket" && s.label("shard") == Some("0"))
            .collect();
        // Cumulative counts are monotone and end at the +Inf total.
        let mut prev = 0;
        for b in &buckets {
            if b.label("le") == Some("+Inf") {
                assert_eq!(b.value_u64(), Some(3));
                continue;
            }
            let v = b.value_u64().expect("integer bucket");
            assert!(v >= prev, "cumulative counts must be monotone");
            prev = v;
        }
        let count = samples
            .iter()
            .find(|s| s.name == "lat_ns_count")
            .expect("count");
        assert_eq!(count.value_u64(), Some(3));
        let max = samples
            .iter()
            .find(|s| s.name == "lat_ns_max")
            .expect("max");
        assert_eq!(max.value_u64(), Some(5000));
    }

    #[test]
    fn callback_series_poll_at_encode_time() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let r = Registry::new();
        let cell = Arc::new(AtomicU64::new(0));
        let polled = Arc::clone(&cell);
        r.register_counter_fn("polled_total", "Polled.", &[], move || {
            polled.load(Ordering::Relaxed)
        });
        cell.store(42, Ordering::Relaxed);
        let samples = parse_text(&r.encode_prometheus());
        assert_eq!(sum_counter(&samples, "polled_total"), 42);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", "X.", &[]);
        r.gauge("x", "X.", &[]);
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let r = Registry::new();
        r.counter("weird_total", "Weird.", &[("path", "a\"b\\c")])
            .inc();
        let samples = parse_text(&r.encode_prometheus());
        let s = samples
            .iter()
            .find(|s| s.name == "weird_total")
            .expect("sample");
        assert_eq!(s.label("path"), Some("a\"b\\c"));
        assert_eq!(s.value_u64(), Some(1));
    }
}
