//! Lightweight structured tracing: RAII spans, thread-local span
//! stacks, and a bounded ring-buffer sink that serializes to
//! checksummed JSONL.
//!
//! A [`span`] guard records wall-clock-free nanosecond timestamps
//! (monotonic, relative to a process-wide epoch) and pushes its name on
//! a thread-local stack so a nested span knows its parent without any
//! global coordination. On drop, the completed [`SpanRecord`] lands in
//! a [`TraceRing`] — a bounded, drop-oldest buffer, so tracing cost is
//! O(1) and memory is fixed no matter how long the process runs.
//!
//! Ring dumps reuse the workspace's CRC32c section framing
//! ([`csp_trace::io::ChecksumWriter`]): the file starts with a
//! checksummed magic, then each record is a length-prefixed JSON line
//! followed by its section CRC. A crash mid-write therefore loses at
//! most the torn tail — every earlier span is still verifiable, the
//! same durability story the snapshot store tells.
//!
//! Recording is *disabled by default*: an idle `TraceRing` costs one
//! relaxed atomic load per span, which keeps instrumented hot paths
//! near-free when nobody is watching (see `benches/obs.rs`).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use csp_trace::io::{ChecksumReader, ChecksumWriter};

/// Magic bytes opening a span-ring dump.
pub const RING_MAGIC: &[u8; 8] = b"CSPOBSR1";

/// Longest JSON line accepted when reading a dump back.
const MAX_LINE: u32 = 1 << 16;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static — spans are code locations, not data).
    pub name: &'static str,
    /// Name of the enclosing span on the same thread, if any.
    pub parent: Option<&'static str>,
    /// Recording thread, as a small process-unique ordinal.
    pub thread: u64,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// Serializes the record as one JSON object (no trailing newline).
    /// Span names are static identifiers, so the only escaping needed
    /// is the conservative kind.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"name\":\"");
        push_json_str(&mut s, self.name);
        s.push('"');
        if let Some(parent) = self.parent {
            s.push_str(",\"parent\":\"");
            push_json_str(&mut s, parent);
            s.push('"');
        }
        s.push_str(&format!(
            ",\"thread\":{},\"start_ns\":{},\"dur_ns\":{}}}",
            self.thread, self.start_ns, self.dur_ns
        ));
        s
    }
}

fn push_json_str(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// A bounded, drop-oldest sink for completed spans.
///
/// Disabled by default; [`set_enabled`](Self::set_enabled) turns
/// recording on. When full, the oldest record is dropped and counted —
/// a long-running process keeps the most recent window, which is the
/// one you want after an incident.
#[derive(Debug)]
pub struct TraceRing {
    records: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    enabled: AtomicBool,
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring holding at most `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            records: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            enabled: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether spans are currently recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends a record (dropping the oldest if full). No-op while
    /// disabled.
    pub fn push(&self, record: SpanRecord) {
        if !self.enabled() {
            return;
        }
        let mut records = self.records.lock().unwrap_or_else(|e| e.into_inner());
        if records.len() >= self.capacity {
            records.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        records.push_back(record);
    }

    /// Copies out the buffered records, oldest first.
    pub fn drain_snapshot(&self) -> Vec<SpanRecord> {
        let records = self.records.lock().unwrap_or_else(|e| e.into_inner());
        records.iter().cloned().collect()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the buffered spans to `w` as checksummed JSONL: a
    /// CRC-framed magic header, then per record `len[4] json crc[4]`
    /// with CRC32c over everything since the previous checksum.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn dump<W: Write>(&self, w: W) -> io::Result<()> {
        let records = self.drain_snapshot();
        let mut w = ChecksumWriter::new(w);
        w.write_all(RING_MAGIC)?;
        w.write_section_crc()?;
        for record in &records {
            let line = record.to_json();
            w.write_all(&(line.len() as u32).to_le_bytes())?;
            w.write_all(line.as_bytes())?;
            w.write_section_crc()?;
        }
        Ok(())
    }
}

/// Reads a span-ring dump written by [`TraceRing::dump`], returning the
/// verified JSON lines in order.
///
/// A torn tail — a record cut off mid-write by a crash — terminates the
/// read cleanly: every fully-checksummed prefix record is returned. A
/// bad magic or a checksum mismatch on a *complete* record is an error.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a bad magic or corrupt
/// header, and propagates I/O errors other than a clean mid-record EOF.
pub fn read_dump<R: Read>(r: R) -> io::Result<Vec<String>> {
    let mut r = ChecksumReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != RING_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad magic; not a span-ring dump",
        ));
    }
    r.check_section_crc("ring header")?;
    let mut lines = Vec::new();
    loop {
        let mut len_bytes = [0u8; 4];
        match read_fully(&mut r, &mut len_bytes) {
            ReadOutcome::Done => break, // clean end
            ReadOutcome::Torn => break, // torn tail: keep prefix
            ReadOutcome::Err(e) => return Err(e),
            ReadOutcome::Ok => {}
        }
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_LINE {
            // A wild length means the tail bytes are garbage, not a
            // record; treat like a torn tail.
            break;
        }
        let mut line = vec![0u8; len as usize];
        match read_fully(&mut r, &mut line) {
            ReadOutcome::Ok => {}
            ReadOutcome::Err(e) => return Err(e),
            _ => break,
        }
        if r.check_section_crc("span record").is_err() {
            // Bad or missing CRC on the final record: torn tail.
            break;
        }
        match String::from_utf8(line) {
            Ok(s) => lines.push(s),
            Err(_) => break,
        }
    }
    Ok(lines)
}

enum ReadOutcome {
    Ok,
    Done,
    Torn,
    Err(io::Error),
}

fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return ReadOutcome::Done,
            Ok(0) => return ReadOutcome::Torn,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return ReadOutcome::Err(e),
        }
    }
    ReadOutcome::Ok
}

/// The process-wide span ring (capacity 4096), shared by all
/// instrumented subsystems. Disabled until something calls
/// `global_ring().set_enabled(true)` — e.g. `csp-served serve
/// --trace-out`.
pub fn global_ring() -> &'static TraceRing {
    static RING: OnceLock<TraceRing> = OnceLock::new();
    RING.get_or_init(|| TraceRing::new(4096))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first observability use).
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORDINAL: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

/// An RAII guard recording a span into the global ring on drop.
///
/// Construct with [`span`]. While the guard lives, its name sits on the
/// thread-local span stack, so nested spans record it as their parent.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    parent: Option<&'static str>,
    start_ns: u64,
    armed: bool,
}

/// Opens a span named `name` on the global ring.
///
/// When the ring is disabled (the default) the guard is a stub: no
/// clock read, no stack push — one relaxed load total.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !global_ring().enabled() {
        return SpanGuard {
            name,
            parent: None,
            start_ns: 0,
            armed: false,
        };
    }
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(name);
        parent
    });
    SpanGuard {
        name,
        parent,
        start_ns: now_ns(),
        armed: true,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let record = SpanRecord {
            name: self.name,
            parent: self.parent,
            thread: THREAD_ORDINAL.with(|t| *t),
            start_ns: self.start_ns,
            dur_ns: now_ns().saturating_sub(self.start_ns),
        };
        global_ring().push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_when_full() {
        let ring = TraceRing::new(2);
        ring.set_enabled(true);
        for i in 0..4u64 {
            ring.push(SpanRecord {
                name: "s",
                parent: None,
                thread: 0,
                start_ns: i,
                dur_ns: 1,
            });
        }
        let records = ring.drain_snapshot();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].start_ns, 2);
        assert_eq!(records[1].start_ns, 3);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let ring = TraceRing::new(8);
        ring.push(SpanRecord {
            name: "s",
            parent: None,
            thread: 0,
            start_ns: 0,
            dur_ns: 0,
        });
        assert!(ring.is_empty());
    }

    #[test]
    fn dump_and_read_round_trip() {
        let ring = TraceRing::new(8);
        ring.set_enabled(true);
        for i in 0..3u64 {
            ring.push(SpanRecord {
                name: "serve.request",
                parent: (i > 0).then_some("serve.connection"),
                thread: i,
                start_ns: i * 100,
                dur_ns: 50,
            });
        }
        let mut buf = Vec::new();
        ring.dump(&mut buf).unwrap();
        let lines = read_dump(buf.as_slice()).unwrap();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"name\":\"serve.request\""));
        assert!(lines[0].contains("\"start_ns\":0"));
        assert!(!lines[0].contains("parent"));
        assert!(lines[1].contains("\"parent\":\"serve.connection\""));
    }

    #[test]
    fn torn_tail_keeps_verified_prefix() {
        let ring = TraceRing::new(8);
        ring.set_enabled(true);
        for i in 0..3u64 {
            ring.push(SpanRecord {
                name: "s",
                parent: None,
                thread: 0,
                start_ns: i,
                dur_ns: 1,
            });
        }
        let mut buf = Vec::new();
        ring.dump(&mut buf).unwrap();
        // Cut into the last record's payload: first two survive.
        let torn = &buf[..buf.len() - 5];
        let lines = read_dump(torn).unwrap();
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn corrupt_record_is_dropped_with_prefix_kept() {
        let ring = TraceRing::new(8);
        ring.set_enabled(true);
        for i in 0..2u64 {
            ring.push(SpanRecord {
                name: "s",
                parent: None,
                thread: 0,
                start_ns: i,
                dur_ns: 1,
            });
        }
        let mut buf = Vec::new();
        ring.dump(&mut buf).unwrap();
        let last = buf.len() - 6; // inside record 1's payload
        buf[last] ^= 0xFF;
        let lines = read_dump(buf.as_slice()).unwrap();
        assert_eq!(lines.len(), 1, "corrupt final record must not surface");
    }

    #[test]
    fn bad_magic_is_an_error() {
        let err = read_dump(&b"NOTARING00000000"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// Tests touching the process-wide ring serialize through this.
    fn global_ring_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_nest_through_the_thread_local_stack() {
        let _guard = global_ring_lock();
        let ring = global_ring();
        ring.set_enabled(true);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        ring.set_enabled(false);
        let records = ring.drain_snapshot();
        let inner = records
            .iter()
            .rev()
            .find(|r| r.name == "inner")
            .expect("inner span recorded");
        assert_eq!(inner.parent, Some("outer"));
        let outer = records
            .iter()
            .rev()
            .find(|r| r.name == "outer")
            .expect("outer span recorded");
        assert_eq!(outer.parent, None);
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn disabled_span_is_inert() {
        let _guard = global_ring_lock();
        let before = SPAN_STACK.with(|s| s.borrow().len());
        {
            let ring = global_ring();
            let was = ring.enabled();
            ring.set_enabled(false);
            let _s = span("inert");
            ring.set_enabled(was);
        }
        let after = SPAN_STACK.with(|s| s.borrow().len());
        assert_eq!(before, after);
    }

    #[test]
    fn json_escapes_quotes_and_controls() {
        let record = SpanRecord {
            name: "a\"b",
            parent: None,
            thread: 1,
            start_ns: 2,
            dur_ns: 3,
        };
        let json = record.to_json();
        assert!(json.contains("a\\\"b"));
    }
}
