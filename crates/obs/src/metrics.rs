//! Lock-free metric instruments: monotonic counters, gauges, and
//! log-bucketed latency histograms.
//!
//! Every instrument is a handful of [`AtomicU64`]/[`AtomicI64`] cells —
//! recording never takes a lock, never allocates, and never blocks, so
//! instruments can sit directly on serving hot paths (see
//! `benches/obs.rs` in `csp-bench` for the measured cost). Reading is
//! equally lock-free: a reader snapshots the atomics and derives
//! quantiles from the bucket counts.
//!
//! # Histogram bucketing
//!
//! [`Histogram`] buckets values (typically nanoseconds) by power of two:
//! bucket `0` holds exactly the value `0`, bucket `i > 0` holds values in
//! `[2^(i-1), 2^i - 1]`. With [`BUCKETS`] = 65 fixed buckets the full
//! `u64` range is covered — `0` and `u64::MAX` both land in a bucket —
//! and a quantile query walks the cumulative counts and reports the
//! bucket's inclusive upper bound. The price is quantization: a reported
//! quantile is exact to within one power-of-two bucket, which is the
//! resolution latency tuning actually uses (is p99 ~1us or ~1ms?).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, active
/// connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` (negative to decrease).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The bucket a value lands in: `0` for zero, otherwise one plus the
/// position of the highest set bit (`v` in `[2^(i-1), 2^i - 1]` goes to
/// bucket `i`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i` (what a quantile query
/// reports for values in that bucket).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A fixed-bucket, power-of-two latency histogram. Recording is three
/// relaxed atomic RMW operations (bucket, sum, max); no locks, no
/// allocation, no sample retention — memory is constant no matter how
/// many values are recorded.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of recorded values (wrapping on overflow; with nanosecond
    /// samples that takes ~584 years of accumulated latency).
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of the same value with one set of atomic
    /// operations — e.g. a batch of `n` probes that shared one service
    /// time, so the histogram's count tracks probes, not batches.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// [`record_n`](Self::record_n) for a duration in nanoseconds.
    #[inline]
    pub fn record_duration_n(&self, d: Duration, n: u64) {
        self.record_n(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX), n);
    }

    /// A point-in-time copy of the bucket counts. Concurrent recorders
    /// may land between bucket reads; each recorded value still appears
    /// exactly once in some later snapshot (counts are monotone).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state, with quantile queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values (wrapping).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The quantile `q` in `[0, 1]`, reported as the inclusive upper
    /// bound of the bucket containing it (0 for an empty histogram).
    /// Exact to within one power-of-two bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Rank of the quantile sample, 1-based, clamped into range.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the observed maximum: the top bucket
                // spans half the u64 range, but we know the true extreme.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// [`quantile`](Self::quantile) as a [`Duration`] of nanoseconds.
    pub fn quantile_duration(&self, q: f64) -> Duration {
        Duration::from_nanos(self.quantile(q))
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index((1 << 63) - 1), 63);
        // Every boundary: 2^k opens bucket k+1, 2^k - 1 closes bucket k.
        for k in 1..64 {
            assert_eq!(bucket_index(1u64 << k), k + 1, "2^{k}");
            assert_eq!(bucket_index((1u64 << k) - 1), k, "2^{k}-1");
        }
    }

    #[test]
    fn bucket_upper_is_inclusive_and_consistent_with_index() {
        for i in 0..BUCKETS {
            let upper = bucket_upper(i);
            assert_eq!(bucket_index(upper), i, "upper bound of bucket {i}");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_index(upper.wrapping_add(1)), i + 1);
            }
        }
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn zero_and_max_are_both_recorded() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.sum, u64::MAX); // 0 + MAX
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn quantiles_track_known_distributions() {
        let h = Histogram::new();
        // 100 values of 1000ns, one outlier of ~1ms.
        for _ in 0..100 {
            h.record(1000);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count(), 101);
        // p50 and p90 sit in 1000's bucket [512, 1023].
        assert_eq!(bucket_index(s.quantile(0.50)), bucket_index(1000));
        assert_eq!(bucket_index(s.quantile(0.90)), bucket_index(1000));
        // p999 reaches the outlier's bucket, clamped to the true max.
        assert_eq!(s.quantile(0.9999), 1_000_000);
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn record_n_counts_every_occurrence() {
        let h = Histogram::new();
        h.record_n(64, 1024);
        h.record_n(7, 0); // no-op
        let s = h.snapshot();
        assert_eq!(s.count(), 1024);
        assert_eq!(s.sum, 64 * 1024);
        // Bucket upper bound, clamped to the observed maximum.
        assert_eq!(s.quantile(0.5), 64);
    }

    #[test]
    fn concurrent_recording_keeps_totals_exact() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::new());
        let g = Arc::new(Gauge::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (h, c, g) = (Arc::clone(&h), Arc::clone(&c), Arc::clone(&g));
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Everything lands in bucket_index(500)=9 except a
                        // per-thread sprinkle of outliers.
                        let v = if i % 1000 == t { 1 << 20 } else { 500 };
                        h.record(v);
                        c.inc();
                        g.add(1);
                        g.sub(1);
                    }
                })
            })
            .collect();
        for hd in handles {
            hd.join().expect("recorder thread");
        }
        let s = h.snapshot();
        let total = THREADS * PER_THREAD;
        let outliers = THREADS * (PER_THREAD / 1000);
        assert_eq!(s.count(), total, "histogram total exact");
        assert_eq!(c.get(), total, "counter total exact");
        assert_eq!(g.get(), 0, "gauge balanced");
        assert_eq!(s.sum, (total - outliers) * 500 + outliers * (1 << 20));
        assert_eq!(s.max, 1 << 20);
        // Quantiles land within one bucket of the true values: p50 in
        // 500's bucket, p9999+ in the outlier bucket.
        assert_eq!(bucket_index(s.quantile(0.5)), bucket_index(500));
        assert_eq!(bucket_index(s.quantile(0.9999)), bucket_index(1 << 20));
    }

    #[test]
    fn durations_record_as_nanoseconds() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        h.record_duration_n(Duration::from_nanos(100), 5);
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 3000 + 500);
        assert_eq!(s.max, 3000);
    }
}
