//! Observability substrate for the CSP workspace: metrics + tracing,
//! std-only, compiled in but near-free when unobserved.
//!
//! The paper this workspace reproduces is, at heart, a measurement
//! methodology — screening-test statistics over predictor schemes — and
//! the runtime deserves the same discipline. This crate provides the
//! plumbing the serving and sweep pipelines instrument themselves with:
//!
//! - **[`metrics`]** — lock-free [`Counter`]s, [`Gauge`]s, and
//!   log₂-bucketed [`Histogram`]s (p50/p90/p99/p999 from 65 fixed
//!   power-of-two buckets; three relaxed atomic ops per record).
//! - **[`registry`]** — a named, labeled [`Registry`] of instruments
//!   with a Prometheus-style text exposition encoder
//!   ([`Registry::encode_prometheus`]) and its parsing twin
//!   ([`parse_text`]), so a scrape can be asserted on in tests and
//!   rendered by `csp-served top`.
//! - **[`spans`]** — RAII [`span`] guards with thread-local parent
//!   stacks and a bounded, drop-oldest [`TraceRing`] that dumps to
//!   CRC32c-framed JSONL via `csp_trace::io`, so traces survive
//!   crashes the way snapshots do.
//!
//! Everything here is dependency-free beyond `csp-trace` (for the
//! checksum framing). Nothing allocates on the hot path; disabled
//! tracing costs one relaxed atomic load per span.
//!
//! # Quick start
//!
//! ```
//! use csp_obs::{Registry, parse_text, sum_counter};
//! use std::time::Duration;
//!
//! let registry = Registry::new();
//! let queries = registry.counter("queries_total", "Probes answered.", &[("shard", "0")]);
//! let latency = registry.histogram("latency_ns", "Service time.", &[]);
//!
//! queries.add(3);
//! latency.record_duration(Duration::from_micros(120));
//!
//! let scrape = registry.encode_prometheus();
//! let samples = parse_text(&scrape);
//! assert_eq!(sum_counter(&samples, "queries_total"), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod metrics;
pub mod registry;
pub mod spans;

pub use metrics::{
    bucket_index, bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS,
};
pub use registry::{parse_text, sum_counter, MetricKind, Registry, Sample};
pub use spans::{
    global_ring, now_ns, read_dump, span, SpanGuard, SpanRecord, TraceRing, RING_MAGIC,
};

use std::sync::OnceLock;

/// The process-wide registry, for subsystems without a natural owner to
/// hang a registry off (the sweep harness, CLI tools). Server-side code
/// prefers the per-engine registry so tests don't share state.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
