//! Golden-file test pinning the Prometheus text exposition format.
//!
//! `csp-served top`, the CI smoke step, and any external scraper all
//! parse this text; an accidental format change should fail loudly
//! here, not in a dashboard. The golden file is committed at
//! `tests/golden_registry.prom`; regenerate it by running this test
//! with `CSP_OBS_REGENERATE=1` after an *intentional* format change.

use csp_obs::{parse_text, sum_counter, Registry};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden_registry.prom")
}

/// A registry with one instrument of every kind, deterministic values.
fn build_registry() -> Registry {
    let r = Registry::new();
    r.counter(
        "csp_demo_queries_total",
        "Probes answered.",
        &[("shard", "0")],
    )
    .add(41);
    r.counter(
        "csp_demo_queries_total",
        "Probes answered.",
        &[("shard", "1")],
    )
    .add(59);
    r.gauge(
        "csp_demo_queue_depth",
        "Messages waiting per shard.",
        &[("shard", "0")],
    )
    .set(3);
    r.register_counter_fn("csp_demo_polled_total", "Callback counter.", &[], || 7);
    r.register_gauge_fn("csp_demo_polled_depth", "Callback gauge.", &[], || -2);
    let h = r.histogram(
        "csp_demo_latency_ns",
        "Per-probe service time in nanoseconds.",
        &[("shard", "0")],
    );
    // One observation at zero, a cluster in the 1µs decade, one outlier.
    h.record(0);
    for _ in 0..10 {
        h.record(1_000);
    }
    h.record(1_000_000);
    r
}

#[test]
fn encoder_output_matches_golden_file() {
    let text = build_registry().encode_prometheus();
    let path = golden_path();
    if std::env::var_os("CSP_OBS_REGENERATE").is_some() {
        std::fs::write(&path, &text).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing; run with CSP_OBS_REGENERATE=1 to create it");
    assert_eq!(
        text, golden,
        "Prometheus exposition format drifted from tests/golden_registry.prom; \
         if intentional, regenerate with CSP_OBS_REGENERATE=1"
    );
}

#[test]
fn golden_file_parses_back_to_the_same_values() {
    let samples = parse_text(&std::fs::read_to_string(golden_path()).expect("golden file"));
    assert_eq!(sum_counter(&samples, "csp_demo_queries_total"), 100);
    assert_eq!(sum_counter(&samples, "csp_demo_polled_total"), 7);
    let count = samples
        .iter()
        .find(|s| s.name == "csp_demo_latency_ns_count")
        .expect("histogram count");
    assert_eq!(count.value_u64(), Some(12));
    let max = samples
        .iter()
        .find(|s| s.name == "csp_demo_latency_ns_max")
        .expect("histogram max");
    assert_eq!(max.value_u64(), Some(1_000_000));
    // The +Inf bucket always equals the count.
    let inf = samples
        .iter()
        .find(|s| s.name == "csp_demo_latency_ns_bucket" && s.label("le") == Some("+Inf"))
        .expect("+Inf bucket");
    assert_eq!(inf.value_u64(), Some(12));
}
