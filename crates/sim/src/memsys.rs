//! The public simulator facade and its statistics.

use crate::protocol::CoherenceEngine;
use crate::{MemAccess, SystemConfig};
use csp_trace::{SharingEvent, Trace};
use std::fmt;

/// Aggregate counters for one simulated run.
///
/// Together with [`csp_trace::TraceStats`] these supply the raw numbers of
/// the paper's Tables 5 and 6.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Loads processed.
    pub reads: u64,
    /// Stores processed.
    pub writes: u64,
    /// Loads that hit in L1.
    pub l1_hits: u64,
    /// Loads that hit in L2 (after missing L1).
    pub l2_hits: u64,
    /// Loads that missed both levels and visited a directory.
    pub read_misses: u64,
    /// Stores that hit a locally modified copy (silent).
    pub write_hits: u64,
    /// Stores that missed both levels (write misses).
    pub write_misses: u64,
    /// Stores that hit a shared copy and upgraded it (write faults).
    pub write_upgrades: u64,
    /// MESI-only: stores that upgraded a clean-exclusive copy silently
    /// (no directory visit, no prediction point).
    pub silent_upgrades: u64,
    /// Invalidation messages sent by directories.
    pub invalidations_sent: u64,
    /// Dirty writebacks (downgrades and dirty evictions).
    pub writebacks: u64,
    /// L2 capacity/conflict evictions.
    pub l2_evictions: u64,
    /// Distinct lines touched over the run.
    pub lines_touched: u64,
    /// Maximum over nodes of distinct store pcs executed (Table 5
    /// "static stores per node", including silent stores).
    pub max_static_stores_per_node: u64,
    /// Total estimated miss latency in cycles (torus latency model).
    pub miss_latency_cycles: u64,
}

impl SimStats {
    /// Total coherence store misses (write misses plus upgrades): the number
    /// of prediction points the run generated.
    pub fn coherence_store_misses(&self) -> u64 {
        self.write_misses + self.write_upgrades
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} rd-miss={} wr-miss={} upgrades={} invals={} wb={} evict={} lines={}",
            self.reads,
            self.writes,
            self.read_misses,
            self.write_misses,
            self.write_upgrades,
            self.invalidations_sent,
            self.writebacks,
            self.l2_evictions,
            self.lines_touched
        )
    }
}

/// The simulated multiprocessor: feed it accesses, collect a coherence
/// trace.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct MemorySystem {
    engine: CoherenceEngine,
}

impl MemorySystem {
    /// Creates a machine from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new(config: SystemConfig) -> Self {
        MemorySystem {
            engine: CoherenceEngine::new(config),
        }
    }

    /// Processes one access. Returns the [`SharingEvent`] if the access was
    /// a coherence store miss (a prediction point).
    pub fn access(&mut self, access: MemAccess) -> Option<SharingEvent> {
        self.engine.access(access)
    }

    /// Processes a whole access stream.
    pub fn run<I: IntoIterator<Item = MemAccess>>(&mut self, accesses: I) {
        for a in accesses {
            self.engine.access(a);
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        self.engine.stats()
    }

    /// The directory complex, for invariant checking
    /// ([`crate::directory::Directory::check_invariants`]).
    pub fn directory(&self) -> &crate::directory::Directory {
        self.engine.directory()
    }

    /// Mutable directory access. **Test support only**: exists so
    /// fault-injection harnesses can corrupt coherence state
    /// ([`crate::directory::DirFault`]) and prove the checkers flag it;
    /// mutating the directory mid-run voids the simulation's guarantees.
    pub fn directory_mut(&mut self) -> &mut crate::directory::Directory {
        self.engine.directory_mut()
    }

    /// Ends the run, returning the trace (with final reader sets resolved)
    /// and the final statistics.
    pub fn finish(self) -> (Trace, SimStats) {
        self.engine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::NodeId;

    #[test]
    fn run_matches_eventwise_access() {
        let accesses = vec![
            MemAccess::write(NodeId(0), 1, 0),
            MemAccess::read(NodeId(1), 2, 0),
            MemAccess::write(NodeId(2), 3, 0),
        ];
        let mut a = MemorySystem::new(SystemConfig::small_test());
        a.run(accesses.iter().copied());
        let (trace_a, stats_a) = a.finish();

        let mut b = MemorySystem::new(SystemConfig::small_test());
        for acc in accesses {
            b.access(acc);
        }
        let (trace_b, stats_b) = b.finish();
        assert_eq!(trace_a, trace_b);
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn coherence_store_misses_counts_both_kinds() {
        let mut sys = MemorySystem::new(SystemConfig::small_test());
        sys.access(MemAccess::write(NodeId(0), 1, 0)); // write miss
        sys.access(MemAccess::read(NodeId(1), 2, 0));
        sys.access(MemAccess::write(NodeId(1), 3, 0)); // upgrade
        let (trace, stats) = sys.finish();
        assert_eq!(stats.coherence_store_misses(), 2);
        assert_eq!(trace.len() as u64, stats.coherence_store_misses());
    }

    #[test]
    fn stats_display_is_nonempty() {
        let sys = MemorySystem::new(SystemConfig::small_test());
        assert!(sys.stats().to_string().contains("reads=0"));
    }
}
