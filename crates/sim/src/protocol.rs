//! The invalidation coherence protocol.
//!
//! A full-map directory protocol in the DASH/Dir-N-NB family, reduced to the
//! MSI states that matter for sharing-pattern extraction:
//!
//! * **read miss** — the home adds the requester to the sharer set (and
//!   downgrades a dirty owner, who keeps a clean copy);
//! * **write miss / write fault** — the home invalidates every other holder
//!   and makes the writer the exclusive owner. This is the *coherence store
//!   miss*, the paper's decision point: one [`SharingEvent`] is emitted per
//!   occurrence, carrying the set of *true readers* of the interval that
//!   just ended (the directory's access bits) and the previous writer's
//!   identity.
//!
//! Stores that hit a locally modified copy are silent and emit nothing —
//! exactly the stores the paper excludes from "predicted stores" in Table 5.
//!
//! One modelling note: the event's `invalidated` bitmap contains exactly
//! the *invalidated* true readers. A node that read the line and then
//! upgrades it keeps its copy — it receives no invalidation and reports no
//! access bit — so a pure migration contributes an empty feedback bitmap,
//! exactly as in the paper (and in Weber & Gupta's invalidation-pattern
//! accounting the paper equates prevalence with).

use crate::cache::{Cache, LineState};
use crate::directory::{DirState, Directory};
use crate::torus::Torus;
use crate::{MemAccess, Protocol, SimStats, SystemConfig};
use csp_trace::{LineAddr, NodeId, SharingBitmap, SharingEvent, Trace};
use std::collections::HashSet;

/// Per-node cache hierarchy (inclusive L1/L2).
#[derive(Clone, Debug)]
struct NodeCaches {
    l1: Cache,
    l2: Cache,
}

/// The protocol engine: caches + directories + event extraction.
///
/// Most users want the [`MemorySystem`](crate::MemorySystem) facade; the
/// engine is public for tests and tools that need to inspect protocol state
/// mid-run.
#[derive(Debug)]
pub struct CoherenceEngine {
    config: SystemConfig,
    caches: Vec<NodeCaches>,
    directory: Directory,
    torus: Torus,
    trace: Trace,
    stats: SimStats,
    store_pcs: Vec<HashSet<u32>>,
}

impl CoherenceEngine {
    /// Creates an engine for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SystemConfig::validate`]).
    pub fn new(config: SystemConfig) -> Self {
        config.validate();
        let caches = (0..config.nodes)
            .map(|_| NodeCaches {
                l1: Cache::new(config.l1),
                l2: Cache::new(config.l2),
            })
            .collect();
        CoherenceEngine {
            caches,
            directory: Directory::new(config.nodes),
            torus: Torus::new(config.torus_width, config.nodes / config.torus_width),
            trace: Trace::new(config.nodes),
            stats: SimStats::default(),
            store_pcs: vec![HashSet::new(); config.nodes],
            config,
        }
    }

    /// The directory complex (for invariant checks in tests).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Mutable directory access — fault-injection support
    /// ([`crate::directory::DirFault`]); not part of the simulation API.
    pub fn directory_mut(&mut self) -> &mut Directory {
        &mut self.directory
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Processes one access; returns the sharing event if the access was a
    /// coherence store miss.
    pub fn access(&mut self, access: MemAccess) -> Option<SharingEvent> {
        assert!(
            access.node.index() < self.config.nodes,
            "access from node {} outside the {}-node machine",
            access.node,
            self.config.nodes
        );
        let line = LineAddr::from_byte_addr(access.addr, self.config.line_size());
        if access.is_write {
            self.stats.writes += 1;
            self.store_pcs[access.node.index()].insert(access.pc.0);
            self.write(access, line)
        } else {
            self.stats.reads += 1;
            self.read(access, line);
            None
        }
    }

    /// Finishes the run, returning the trace (with final reader sets) and
    /// the statistics.
    pub fn finish(mut self) -> (Trace, SimStats) {
        for (line, entry) in self.directory.iter() {
            if !entry.readers.is_empty() {
                self.trace.set_final_readers(line, entry.readers);
            }
        }
        self.stats.lines_touched = self.directory.lines_touched() as u64;
        self.stats.max_static_stores_per_node =
            self.store_pcs.iter().map(HashSet::len).max().unwrap_or(0) as u64;
        (self.trace, self.stats)
    }

    fn read(&mut self, access: MemAccess, line: LineAddr) {
        let node = access.node;
        let nc = &mut self.caches[node.index()];
        if nc.l1.lookup(line).is_some() {
            self.stats.l1_hits += 1;
            return;
        }
        if let Some(state) = nc.l2.lookup(line) {
            self.stats.l2_hits += 1;
            self.fill_l1(node, line, state);
            return;
        }
        // Read miss: visit the home directory.
        self.stats.read_misses += 1;
        let mesi = self.config.protocol == Protocol::Mesi;
        let entry = self.directory.entry_mut(line, node);
        let home = entry.home;
        let mut fill_state = LineState::Shared;
        match entry.state {
            DirState::Uncached if mesi => {
                // MESI: sole reader gets a clean-exclusive copy.
                entry.state = DirState::Exclusive(node);
                fill_state = LineState::Exclusive;
            }
            DirState::Uncached => {
                entry.state = DirState::Shared(SharingBitmap::singleton(node));
            }
            DirState::Exclusive(owner) if owner == node => {
                // Refetch after an L1-only miss resolved at L2 never lands
                // here (L2 is inclusive); an owner re-read after losing
                // both levels means the hint already uncached it, so this
                // arm only fires with hints off. Keep exclusivity.
                fill_state = if mesi {
                    LineState::Exclusive
                } else {
                    LineState::Shared
                };
            }
            DirState::Exclusive(owner) => {
                // Downgrade the owner; write back only if its copy is dirty.
                let dirty = self.caches[owner.index()].l2.peek(line) == Some(LineState::Modified);
                if dirty {
                    self.stats.writebacks += 1;
                }
                let mut holders = SharingBitmap::singleton(owner);
                holders.insert(node);
                entry.state = DirState::Shared(holders);
                self.caches[owner.index()]
                    .l1
                    .set_state(line, LineState::Shared);
                self.caches[owner.index()]
                    .l2
                    .set_state(line, LineState::Shared);
            }
            DirState::Shared(mut holders) => {
                holders.insert(node);
                entry.state = DirState::Shared(holders);
            }
        }
        // The requester obtained its copy by reading: set its access bit.
        let entry = self.directory.entry_mut(line, node);
        entry.readers.insert(node);
        self.account_miss_latency(node, home);
        self.fill(node, line, fill_state);
    }

    fn write(&mut self, access: MemAccess, line: LineAddr) -> Option<SharingEvent> {
        let node = access.node;
        let nc = &mut self.caches[node.index()];
        match nc.l1.lookup(line) {
            Some(LineState::Modified) => {
                self.stats.write_hits += 1;
                return None;
            }
            Some(LineState::Exclusive) => {
                // MESI: silent clean-exclusive upgrade; no directory visit.
                self.stats.write_hits += 1;
                self.stats.silent_upgrades += 1;
                nc.l1.set_state(line, LineState::Modified);
                nc.l2.set_state(line, LineState::Modified);
                return None;
            }
            Some(LineState::Shared) => {
                self.stats.write_upgrades += 1;
            }
            None => match nc.l2.lookup(line) {
                Some(LineState::Modified) => {
                    self.stats.write_hits += 1;
                    self.fill_l1(node, line, LineState::Modified);
                    return None;
                }
                Some(LineState::Exclusive) => {
                    self.stats.write_hits += 1;
                    self.stats.silent_upgrades += 1;
                    nc.l2.set_state(line, LineState::Modified);
                    self.fill_l1(node, line, LineState::Modified);
                    return None;
                }
                Some(LineState::Shared) => {
                    self.stats.write_upgrades += 1;
                }
                None => {
                    self.stats.write_misses += 1;
                }
            },
        }

        // Coherence store miss: invalidate all other holders, take ownership.
        let entry = self.directory.entry_mut(line, node);
        let home = entry.home;
        let prev_writer = entry.last_writer;
        // Feedback is the set of *invalidated* true readers. A writer that
        // read the line and now upgrades it is not invalidated (it keeps
        // its copy), so it never appears in its own feedback — it is part
        // of the migration, not a predicted reader.
        let feedback = entry.readers.without(node);
        let to_invalidate = match entry.state {
            DirState::Uncached => SharingBitmap::empty(),
            DirState::Exclusive(owner) => SharingBitmap::singleton(owner).without(node),
            DirState::Shared(holders) => holders.without(node),
        };
        entry.state = DirState::Exclusive(node);
        entry.readers = SharingBitmap::empty();
        entry.last_writer = Some((node, access.pc));
        for victim in to_invalidate.iter() {
            self.stats.invalidations_sent += 1;
            self.caches[victim.index()].l1.invalidate(line);
            self.caches[victim.index()].l2.invalidate(line);
        }
        self.account_miss_latency(node, home);
        self.fill(node, line, LineState::Modified);

        let event = SharingEvent::new(node, access.pc, line, home, feedback, prev_writer);
        self.trace.push(event);
        Some(event)
    }

    /// Fills both cache levels, handling L2 evictions (inclusion + hints).
    fn fill(&mut self, node: NodeId, line: LineAddr, state: LineState) {
        let evicted = self.caches[node.index()].l2.insert(line, state);
        if let Some((victim, victim_state)) = evicted {
            self.evict(node, victim, victim_state);
        }
        self.fill_l1(node, line, state);
    }

    fn fill_l1(&mut self, node: NodeId, line: LineAddr, state: LineState) {
        // L1 evictions are silent: the (inclusive) L2 still holds the line.
        let _ = self.caches[node.index()].l1.insert(line, state);
    }

    /// Handles an L2 eviction: maintain inclusion, write back dirty data,
    /// and optionally send a replacement hint for clean copies.
    fn evict(&mut self, node: NodeId, victim: LineAddr, state: LineState) {
        self.stats.l2_evictions += 1;
        self.caches[node.index()].l1.invalidate(victim);
        let hints = self.config.replacement_hints;
        let entry = self.directory.entry_mut(victim, node);
        match (state, entry.state) {
            // Dirty evictions always write back (the data must not be lost).
            (LineState::Modified, DirState::Exclusive(owner)) if owner == node => {
                entry.state = DirState::Uncached;
                entry.readers = SharingBitmap::empty();
                self.stats.writebacks += 1;
            }
            // Clean-exclusive evictions notify the directory (no data).
            (LineState::Exclusive, DirState::Exclusive(owner)) if owner == node => {
                entry.state = DirState::Uncached;
                entry.readers = SharingBitmap::empty();
            }
            // Clean evictions notify the directory only with hints enabled.
            (_, DirState::Shared(holders)) if hints && holders.contains(node) => {
                let remaining = holders.without(node);
                entry.readers.remove(node);
                entry.state = if remaining.is_empty() {
                    DirState::Uncached
                } else {
                    DirState::Shared(remaining)
                };
            }
            _ => {}
        }
    }

    fn account_miss_latency(&mut self, node: NodeId, home: NodeId) {
        let lat = &self.config.latency;
        let cycles = if node == home {
            lat.local_memory
        } else {
            let hops = self.torus.hops(node, home) as u64;
            lat.remote_memory + lat.per_hop * hops.saturating_sub(1)
        };
        self.stats.miss_latency_cycles += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CoherenceEngine {
        CoherenceEngine::new(SystemConfig::small_test())
    }

    #[test]
    fn first_write_emits_event_with_empty_feedback() {
        let mut e = engine();
        let ev = e.access(MemAccess::write(NodeId(0), 1, 0)).unwrap();
        assert_eq!(ev.writer, NodeId(0));
        assert!(ev.invalidated.is_empty());
        assert_eq!(ev.prev_writer, None);
        assert_eq!(ev.home, NodeId(0)); // first touch
        e.directory().assert_invariants();
    }

    #[test]
    fn second_write_by_same_node_is_silent() {
        let mut e = engine();
        assert!(e.access(MemAccess::write(NodeId(0), 1, 0)).is_some());
        assert!(e.access(MemAccess::write(NodeId(0), 1, 0)).is_none());
        assert_eq!(e.stats().write_hits, 1);
    }

    #[test]
    fn readers_become_feedback_of_next_write() {
        let mut e = engine();
        e.access(MemAccess::write(NodeId(0), 1, 0));
        e.access(MemAccess::read(NodeId(1), 2, 0));
        e.access(MemAccess::read(NodeId(2), 3, 0));
        let ev = e.access(MemAccess::write(NodeId(3), 4, 0)).unwrap();
        assert_eq!(
            ev.invalidated,
            SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)])
        );
        assert_eq!(ev.prev_writer.map(|(n, _)| n), Some(NodeId(0)));
        // Invalidations go to the two readers and the downgraded old owner.
        assert_eq!(e.stats().invalidations_sent, 3);
        e.directory().assert_invariants();
    }

    #[test]
    fn upgrading_reader_is_excluded_from_feedback() {
        let mut e = engine();
        e.access(MemAccess::write(NodeId(0), 1, 0));
        e.access(MemAccess::read(NodeId(1), 2, 0));
        e.access(MemAccess::read(NodeId(2), 2, 0));
        // Node 1 upgrades: it keeps its copy (it is not invalidated), so
        // the feedback reports only node 2.
        let ev = e.access(MemAccess::write(NodeId(1), 5, 0)).unwrap();
        assert!(!ev.invalidated.contains(NodeId(1)));
        assert!(ev.invalidated.contains(NodeId(2)));
        assert_eq!(e.stats().write_upgrades, 1);
    }

    #[test]
    fn repeated_reads_hit_in_cache() {
        let mut e = engine();
        e.access(MemAccess::read(NodeId(1), 2, 0));
        e.access(MemAccess::read(NodeId(1), 2, 0));
        e.access(MemAccess::read(NodeId(1), 2, 4)); // same line, other word
        assert_eq!(e.stats().read_misses, 1);
        assert_eq!(e.stats().l1_hits, 2);
    }

    #[test]
    fn dirty_owner_downgrades_on_remote_read() {
        let mut e = engine();
        e.access(MemAccess::write(NodeId(0), 1, 0));
        e.access(MemAccess::read(NodeId(1), 2, 0));
        assert_eq!(e.stats().writebacks, 1);
        // A silent store is no longer possible for node 0: it upgraded away.
        assert!(e.access(MemAccess::write(NodeId(0), 1, 0)).is_some());
        e.directory().assert_invariants();
    }

    #[test]
    fn final_readers_recorded_on_finish() {
        let mut e = engine();
        e.access(MemAccess::write(NodeId(0), 1, 0));
        e.access(MemAccess::read(NodeId(2), 2, 0));
        let (trace, _) = e.finish();
        let actuals = trace.resolve_actuals();
        assert_eq!(actuals[0], SharingBitmap::singleton(NodeId(2)));
    }

    #[test]
    fn eviction_with_hints_removes_sharer() {
        // L2 of small_test: 16 lines, 2-way, 8 sets. Lines 0, 8, 16 share a
        // set; touching three forces an eviction.
        let mut e = engine();
        e.access(MemAccess::write(NodeId(0), 1, 0));
        e.access(MemAccess::read(NodeId(1), 2, 0)); // sharer of line 0
        for i in 1..3u64 {
            e.access(MemAccess::read(NodeId(1), 2, i * 8 * 64));
        }
        assert!(e.stats().l2_evictions > 0);
        e.directory().assert_invariants();
    }

    #[test]
    fn dirty_eviction_writes_back_and_uncaches() {
        let mut e = engine();
        e.access(MemAccess::write(NodeId(0), 1, 0));
        for i in 1..3u64 {
            e.access(MemAccess::write(NodeId(0), 1, i * 8 * 64));
        }
        assert!(e.stats().writebacks >= 1);
        e.directory().assert_invariants();
        // Next write to line 0 is a write miss with empty feedback but a
        // preserved last-writer record.
        let ev = e.access(MemAccess::write(NodeId(1), 9, 0)).unwrap();
        assert!(ev.invalidated.is_empty());
        assert_eq!(ev.prev_writer.map(|(n, _)| n), Some(NodeId(0)));
    }

    #[test]
    fn static_store_counting() {
        let mut e = engine();
        e.access(MemAccess::write(NodeId(0), 1, 0));
        e.access(MemAccess::write(NodeId(0), 2, 64));
        e.access(MemAccess::write(NodeId(0), 1, 128));
        e.access(MemAccess::write(NodeId(1), 1, 192));
        let (_, stats) = e.finish();
        assert_eq!(stats.max_static_stores_per_node, 2);
        assert_eq!(stats.lines_touched, 4);
    }

    #[test]
    fn miss_latency_accumulates() {
        let mut e = engine();
        e.access(MemAccess::write(NodeId(0), 1, 0)); // local (home = 0)
        let local = e.stats().miss_latency_cycles;
        assert_eq!(local, 52);
        e.access(MemAccess::read(NodeId(3), 2, 0)); // remote
        assert!(e.stats().miss_latency_cycles >= local + 133);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_access_from_unknown_node() {
        let mut e = engine();
        e.access(MemAccess::read(NodeId(9), 0, 0));
    }

    fn mesi_engine() -> CoherenceEngine {
        let mut cfg = SystemConfig::small_test();
        cfg.protocol = crate::Protocol::Mesi;
        CoherenceEngine::new(cfg)
    }

    #[test]
    fn mesi_private_read_then_write_is_silent() {
        let mut e = mesi_engine();
        e.access(MemAccess::read(NodeId(0), 1, 0)); // E grant
        let ev = e.access(MemAccess::write(NodeId(0), 2, 0));
        assert!(ev.is_none(), "E->M upgrade must not visit the directory");
        assert_eq!(e.stats().silent_upgrades, 1);
        assert_eq!(e.stats().coherence_store_misses(), 0);
        e.directory().assert_invariants();
    }

    #[test]
    fn msi_private_read_then_write_is_an_event() {
        let mut e = engine();
        e.access(MemAccess::read(NodeId(0), 1, 0));
        let ev = e.access(MemAccess::write(NodeId(0), 2, 0));
        assert!(ev.is_some(), "MSI upgrades after any read");
        assert_eq!(e.stats().silent_upgrades, 0);
    }

    #[test]
    fn mesi_clean_exclusive_downgrades_without_writeback() {
        let mut e = mesi_engine();
        e.access(MemAccess::read(NodeId(0), 1, 0)); // E grant, clean
        e.access(MemAccess::read(NodeId(1), 2, 0)); // downgrade
        assert_eq!(
            e.stats().writebacks,
            0,
            "clean downgrade needs no writeback"
        );
        e.directory().assert_invariants();
    }

    #[test]
    fn mesi_dirty_exclusive_downgrades_with_writeback() {
        let mut e = mesi_engine();
        e.access(MemAccess::read(NodeId(0), 1, 0)); // E
        e.access(MemAccess::write(NodeId(0), 2, 0)); // silent E->M
        e.access(MemAccess::read(NodeId(1), 3, 0)); // downgrade dirty
        assert_eq!(e.stats().writebacks, 1);
    }

    #[test]
    fn mesi_e_holder_counts_as_true_reader_in_feedback() {
        let mut e = mesi_engine();
        e.access(MemAccess::read(NodeId(0), 1, 0)); // E grant by reading
        let ev = e.access(MemAccess::write(NodeId(2), 5, 0)).unwrap();
        assert!(
            ev.invalidated.contains(NodeId(0)),
            "the E holder consumed the line: it is a true invalidated reader"
        );
    }

    #[test]
    fn mesi_produces_no_more_events_than_msi() {
        // Same access stream under both protocols: MESI can only remove
        // prediction points (silent private upgrades), never add them.
        let stream: Vec<MemAccess> = (0..200u64)
            .map(|i| {
                let node = NodeId((i % 4) as u8);
                let addr = (i % 13) * 64;
                if i % 3 == 0 {
                    MemAccess::write(node, 1, addr)
                } else {
                    MemAccess::read(node, 2, addr)
                }
            })
            .collect();
        let mut msi = engine();
        let mut mesi = mesi_engine();
        for &a in &stream {
            msi.access(a);
            mesi.access(a);
        }
        assert!(mesi.stats().coherence_store_misses() <= msi.stats().coherence_store_misses());
        msi.directory().assert_invariants();
        mesi.directory().assert_invariants();
    }
}
