//! Memory accesses: the simulator's input vocabulary.

use csp_trace::{NodeId, Pc};

/// A single memory access issued by one node.
///
/// Addresses are byte-granular; the simulator maps them to cache lines using
/// the configured line size. The `pc` identifies the static instruction, the
/// quantity instruction-based predictors index by.
///
/// # Example
///
/// ```
/// use csp_sim::MemAccess;
/// use csp_trace::NodeId;
/// let w = MemAccess::write(NodeId(3), 0x40, 0x1000);
/// assert!(w.is_write);
/// let r = MemAccess::read(NodeId(3), 0x44, 0x1000);
/// assert!(!r.is_write);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// The issuing node.
    pub node: NodeId,
    /// The static instruction performing the access.
    pub pc: Pc,
    /// Byte address accessed.
    pub addr: u64,
    /// `true` for stores, `false` for loads.
    pub is_write: bool,
}

impl MemAccess {
    /// A load by `node` at instruction `pc` to byte address `addr`.
    pub fn read(node: NodeId, pc: u32, addr: u64) -> Self {
        MemAccess {
            node,
            pc: Pc(pc),
            addr,
            is_write: false,
        }
    }

    /// A store by `node` at instruction `pc` to byte address `addr`.
    pub fn write(node: NodeId, pc: u32, addr: u64) -> Self {
        MemAccess {
            node,
            pc: Pc(pc),
            addr,
            is_write: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let r = MemAccess::read(NodeId(1), 7, 0x80);
        assert_eq!(r.node, NodeId(1));
        assert_eq!(r.pc, Pc(7));
        assert_eq!(r.addr, 0x80);
        assert!(!r.is_write);
        assert!(MemAccess::write(NodeId(0), 0, 0).is_write);
    }
}
