//! Simulator configuration, with the paper's Table 4 machine as default.

/// Geometry of one cache level.
///
/// # Example
///
/// ```
/// use csp_sim::CacheConfig;
/// let l2 = CacheConfig::new(512 * 1024, 4, 64);
/// assert_eq!(l2.num_sets(), 2048);
/// assert_eq!(l2.num_lines(), 8192);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set); 1 = direct-mapped.
    pub associativity: u32,
    /// Line size in bytes (power of two).
    pub line_size: u64,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `line_size` is a power of two, `associativity > 0`, and
    /// `size_bytes` is a positive multiple of `associativity * line_size`
    /// with a power-of-two set count.
    pub fn new(size_bytes: u64, associativity: u32, line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(associativity > 0, "associativity must be positive");
        let way_bytes = u64::from(associativity) * line_size;
        assert!(
            size_bytes > 0 && size_bytes.is_multiple_of(way_bytes),
            "size must be a positive multiple of associativity x line size"
        );
        let cfg = CacheConfig {
            size_bytes,
            associativity,
            line_size,
        };
        assert!(
            cfg.num_sets().is_power_of_two(),
            "set count must be a power of two (got {})",
            cfg.num_sets()
        );
        cfg
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.associativity) * self.line_size)
    }

    /// Total number of lines the cache can hold.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_size
    }
}

/// Access latencies in CPU cycles, used only by the after-the-fact cost and
/// forwarding estimators (the paper's Table 4 values).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 hit latency.
    pub l1_hit: u64,
    /// L2 hit latency.
    pub l2_hit: u64,
    /// Miss satisfied by the local memory/directory (Table 4: 52 cycles).
    pub local_memory: u64,
    /// Miss satisfied by a remote home node (Table 4: 133 cycles).
    pub remote_memory: u64,
    /// Extra cycles per additional network hop beyond the first, for the
    /// torus latency model.
    pub per_hop: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            l1_hit: 1,
            l2_hit: 8,
            local_memory: 52,
            remote_memory: 133,
            per_hop: 8,
        }
    }
}

/// Which invalidation protocol the caches run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Protocol {
    /// Three-state MSI: every first write to a line visits the directory,
    /// even after a private read. The paper-faithful default.
    #[default]
    Msi,
    /// MESI: a read miss to an uncached line grants a clean-exclusive
    /// copy, so a private read-then-write upgrades silently — fewer
    /// coherence store misses on private data.
    Mesi,
}

/// Full machine configuration.
///
/// [`SystemConfig::paper_16_node`] reproduces the paper's simulated machine
/// (Section 5.1 / Table 4): 16 nodes on a 2-D torus, 16 KB direct-mapped L1
/// and 512 KB 4-way L2 with 64-byte lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of nodes (1..=64).
    pub nodes: usize,
    /// L1 geometry.
    pub l1: CacheConfig,
    /// L2 geometry (inclusive of L1).
    pub l2: CacheConfig,
    /// Latency model.
    pub latency: LatencyConfig,
    /// Torus width; the height is `nodes / torus_width`.
    pub torus_width: usize,
    /// Whether cache replacements notify the directory (replacement hints).
    /// The paper minimises replacement effects with large caches; hints keep
    /// directory state exact, matching that intent.
    pub replacement_hints: bool,
    /// The coherence protocol (MSI default; MESI optional).
    pub protocol: Protocol,
}

impl SystemConfig {
    /// The paper's 16-node machine (Table 4).
    pub fn paper_16_node() -> Self {
        SystemConfig {
            nodes: 16,
            l1: CacheConfig::new(16 * 1024, 1, 64),
            l2: CacheConfig::new(512 * 1024, 4, 64),
            latency: LatencyConfig::default(),
            torus_width: 4,
            replacement_hints: true,
            protocol: Protocol::Msi,
        }
    }

    /// A small machine for unit tests and doc examples: 4 nodes, tiny
    /// caches, so replacement paths are exercised cheaply.
    pub fn small_test() -> Self {
        SystemConfig {
            nodes: 4,
            l1: CacheConfig::new(4 * 64, 1, 64),
            l2: CacheConfig::new(16 * 64, 2, 64),
            latency: LatencyConfig::default(),
            torus_width: 2,
            replacement_hints: true,
            protocol: Protocol::Msi,
        }
    }

    /// Line size in bytes (shared by both levels).
    pub fn line_size(&self) -> u64 {
        self.l2.line_size
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if node count is out of range, the torus does not tile the
    /// node count, or the two cache levels disagree on line size.
    pub fn validate(&self) {
        assert!(
            self.nodes > 0 && self.nodes <= csp_trace::MAX_NODES,
            "node count out of range"
        );
        assert!(
            self.torus_width > 0 && self.nodes.is_multiple_of(self.torus_width),
            "torus width {} does not tile {} nodes",
            self.torus_width,
            self.nodes
        );
        assert_eq!(
            self.l1.line_size, self.l2.line_size,
            "L1 and L2 must share a line size"
        );
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_16_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table4() {
        let c = SystemConfig::paper_16_node();
        c.validate();
        assert_eq!(c.nodes, 16);
        assert_eq!(c.l1.size_bytes, 16 * 1024);
        assert_eq!(c.l1.associativity, 1);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2.associativity, 4);
        assert_eq!(c.line_size(), 64);
        assert_eq!(c.latency.local_memory, 52);
        assert_eq!(c.latency.remote_memory, 133);
    }

    #[test]
    fn cache_geometry() {
        let l1 = CacheConfig::new(16 * 1024, 1, 64);
        assert_eq!(l1.num_sets(), 256);
        assert_eq!(l1.num_lines(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_line_size() {
        let _ = CacheConfig::new(1024, 1, 48);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_non_multiple_size() {
        let _ = CacheConfig::new(1000, 4, 64);
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn validate_rejects_bad_torus() {
        let mut c = SystemConfig::paper_16_node();
        c.torus_width = 5;
        c.validate();
    }
}
