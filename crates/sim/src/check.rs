//! Golden-model checking of the coherence protocol.
//!
//! [`FlatModel`] is an independent *flat* reference implementation of the
//! sharing semantics — no caches, no LRU, no hierarchy; just "who wrote
//! last, who read since" bookkeeping per line. As long as capacity
//! evictions cannot occur, it predicts exactly which accesses are
//! coherence store misses and what feedback each carries, so running both
//! models over the same access stream and demanding identical traces
//! checks the full cache/directory/protocol stack against a twenty-line
//! specification.
//!
//! Two detection channels cover the two classes of directory corruption
//! (see [`crate::directory::DirFault`]):
//!
//! * structural damage (empty sharer sets, foreign reader bits) is caught
//!   by [`crate::directory::Directory::check_invariants`];
//! * semantically incoherent but structurally well-formed damage (lost or
//!   phantom sharers) is caught by divergence from this model —
//!   [`compare_traces`] names the first differing event.

use crate::MemAccess;
use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};
use std::collections::HashMap;
use std::fmt;

/// Per-line state of the reference model.
#[derive(Clone)]
struct FlatLine {
    owner: Option<NodeId>,
    readers: SharingBitmap,
    holders: SharingBitmap,
    last_writer: Option<(NodeId, Pc)>,
    home: NodeId,
}

/// The flat reference model (MSI semantics).
///
/// # Example
///
/// ```
/// use csp_sim::check::FlatModel;
/// use csp_sim::MemAccess;
/// use csp_trace::NodeId;
///
/// let mut model = FlatModel::new(16);
/// model.access(MemAccess::write(NodeId(0), 1, 0));
/// model.access(MemAccess::read(NodeId(1), 2, 0));
/// model.access(MemAccess::write(NodeId(0), 1, 0)); // invalidates node 1
/// let trace = model.finish();
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.events()[1].invalidated.count(), 1);
/// ```
pub struct FlatModel {
    lines: HashMap<u64, FlatLine>,
    trace: Trace,
}

impl FlatModel {
    /// A fresh model of an `nodes`-node machine.
    pub fn new(nodes: usize) -> Self {
        FlatModel {
            lines: HashMap::new(),
            trace: Trace::new(nodes),
        }
    }

    fn line(&mut self, line: u64, toucher: NodeId) -> &mut FlatLine {
        self.lines.entry(line).or_insert_with(|| FlatLine {
            owner: None,
            readers: SharingBitmap::empty(),
            holders: SharingBitmap::empty(),
            last_writer: None,
            home: toucher,
        })
    }

    /// Processes one access (64-byte line granularity, like the real
    /// simulator).
    pub fn access(&mut self, a: MemAccess) {
        let line = a.addr / 64;
        let entry = self.line(line, a.node);
        if a.is_write {
            // Silent iff the writer already owns the line exclusively.
            let silent =
                entry.owner == Some(a.node) && entry.holders == SharingBitmap::singleton(a.node);
            if !silent {
                let feedback = entry.readers.without(a.node);
                let event = SharingEvent::new(
                    a.node,
                    a.pc,
                    LineAddr(line),
                    entry.home,
                    feedback,
                    entry.last_writer,
                );
                entry.owner = Some(a.node);
                entry.holders = SharingBitmap::singleton(a.node);
                entry.readers = SharingBitmap::empty();
                entry.last_writer = Some((a.node, a.pc));
                self.trace.push(event);
            }
        } else {
            // A read by a non-holder joins the sharers and sets its
            // access bit; the owner keeps a (now shared) copy.
            if !entry.holders.contains(a.node) {
                entry.holders.insert(a.node);
                entry.readers.insert(a.node);
            }
        }
    }

    /// Ends the run, resolving final reader sets, and returns the
    /// reference trace.
    pub fn finish(mut self) -> Trace {
        let lines: Vec<(u64, SharingBitmap)> =
            self.lines.iter().map(|(l, e)| (*l, e.readers)).collect();
        for (line, readers) in lines {
            if !readers.is_empty() {
                self.trace.set_final_readers(LineAddr(line), readers);
            }
        }
        self.trace
    }
}

/// Runs a whole access stream through a fresh [`FlatModel`] and returns
/// the reference trace.
pub fn reference_trace<I: IntoIterator<Item = MemAccess>>(nodes: usize, accesses: I) -> Trace {
    let mut model = FlatModel::new(nodes);
    for a in accesses {
        model.access(a);
    }
    model.finish()
}

/// The first point where a simulated trace departs from the reference.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceDivergence {
    /// The traces have different event counts.
    LengthMismatch {
        /// Events in the trace under test.
        actual: usize,
        /// Events in the reference trace.
        reference: usize,
    },
    /// Event `index` differs between the two traces.
    EventMismatch {
        /// Index of the first differing event.
        index: usize,
        /// The event the trace under test produced.
        actual: Box<SharingEvent>,
        /// The event the reference model produced.
        reference: Box<SharingEvent>,
    },
    /// The events agree but the resolved ground-truth (actual future
    /// readers) of event `index` differs — the final sharer state of
    /// memory diverged.
    ActualsMismatch {
        /// Index of the first event with differing ground truth.
        index: usize,
        /// Ground truth in the trace under test.
        actual: SharingBitmap,
        /// Ground truth in the reference trace.
        reference: SharingBitmap,
    },
}

impl fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDivergence::LengthMismatch { actual, reference } => write!(
                f,
                "trace has {actual} events where the reference has {reference}"
            ),
            TraceDivergence::EventMismatch { index, .. } => {
                write!(f, "event {index} differs from the reference")
            }
            TraceDivergence::ActualsMismatch { index, .. } => {
                write!(
                    f,
                    "ground truth of event {index} differs from the reference"
                )
            }
        }
    }
}

impl std::error::Error for TraceDivergence {}

/// Compares a simulated trace against the reference model's, returning the
/// first divergence (events first, then resolved ground truth).
///
/// # Errors
///
/// Returns the first [`TraceDivergence`] found; `Ok(())` means the traces
/// are behaviourally identical.
pub fn compare_traces(actual: &Trace, reference: &Trace) -> Result<(), TraceDivergence> {
    if actual.len() != reference.len() {
        return Err(TraceDivergence::LengthMismatch {
            actual: actual.len(),
            reference: reference.len(),
        });
    }
    for (index, (a, r)) in actual.events().iter().zip(reference.events()).enumerate() {
        if a != r {
            return Err(TraceDivergence::EventMismatch {
                index,
                actual: Box::new(*a),
                reference: Box::new(*r),
            });
        }
    }
    for (index, (a, r)) in actual
        .resolve_actuals()
        .into_iter()
        .zip(reference.resolve_actuals())
        .enumerate()
    {
        if a != r {
            return Err(TraceDivergence::ActualsMismatch {
                index,
                actual: a,
                reference: r,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, MemorySystem, SystemConfig};

    #[test]
    fn flat_model_sanity() {
        // Deterministic miniature: the reference model's own behaviour.
        let mut m = FlatModel::new(16);
        m.access(MemAccess::write(NodeId(0), 1, 0));
        m.access(MemAccess::read(NodeId(1), 2, 0));
        m.access(MemAccess::write(NodeId(0), 1, 0)); // upgrade: invalidates 1
        let trace = m.finish();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace.events()[1].invalidated,
            SharingBitmap::from_nodes(&[NodeId(1)])
        );
    }

    #[test]
    fn simulator_matches_reference_on_a_small_stream() {
        let mut cfg = SystemConfig::paper_16_node();
        cfg.l1 = CacheConfig::new(1 << 22, 4, 64);
        cfg.l2 = CacheConfig::new(1 << 24, 8, 64);
        let stream: Vec<MemAccess> = (0..200u64)
            .map(|i| {
                let node = NodeId((i % 7) as u8);
                let addr = (i % 11) * 64;
                if i % 3 == 0 {
                    MemAccess::write(node, (i % 5) as u32, addr)
                } else {
                    MemAccess::read(node, (i % 5) as u32, addr)
                }
            })
            .collect();
        let mut sys = MemorySystem::new(cfg);
        for &a in &stream {
            sys.access(a);
        }
        let (trace, _) = sys.finish();
        let reference = reference_trace(16, stream);
        assert_eq!(compare_traces(&trace, &reference), Ok(()));
    }

    #[test]
    fn compare_traces_reports_divergence_kind() {
        let mut a = Trace::new(4);
        a.push(SharingEvent::new(
            NodeId(0),
            Pc(1),
            LineAddr(1),
            NodeId(0),
            SharingBitmap::empty(),
            None,
        ));
        let b = Trace::new(4);
        assert!(matches!(
            compare_traces(&a, &b),
            Err(TraceDivergence::LengthMismatch { .. })
        ));

        let mut c = Trace::new(4);
        c.push(SharingEvent::new(
            NodeId(1),
            Pc(1),
            LineAddr(1),
            NodeId(0),
            SharingBitmap::empty(),
            None,
        ));
        assert!(matches!(
            compare_traces(&a, &c),
            Err(TraceDivergence::EventMismatch { index: 0, .. })
        ));

        // Same events, different final reader state: ground truth differs.
        let mut d = a.clone();
        d.set_final_readers(LineAddr(1), SharingBitmap::singleton(NodeId(2)));
        assert!(matches!(
            compare_traces(&a, &d),
            Err(TraceDivergence::ActualsMismatch { index: 0, .. })
        ));
    }
}
