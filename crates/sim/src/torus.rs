//! 2-D torus interconnect topology and latency model.
//!
//! The paper simulates "16-node systems with a fast 2-D torus interconnect"
//! (Section 5.1). Prediction accuracy does not depend on the network, but
//! the traffic/latency *cost* of predictions does: the forwarding estimator
//! uses torus hop counts to price both useful and wasted forwards.

use csp_trace::NodeId;

/// A `width x height` 2-D torus with nodes numbered row-major.
///
/// # Example
///
/// ```
/// use csp_sim::torus::Torus;
/// use csp_trace::NodeId;
///
/// let t = Torus::new(4, 4);
/// assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
/// assert_eq!(t.hops(NodeId(0), NodeId(3)), 1);  // wraparound in x
/// assert_eq!(t.hops(NodeId(0), NodeId(10)), 4); // (2,2) away
/// assert_eq!(t.diameter(), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    width: usize,
    height: usize,
}

impl Torus {
    /// Creates a torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "torus dimensions must be positive");
        Torus { width, height }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// The torus's width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The torus's height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The `(x, y)` coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the torus.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        let i = node.index();
        assert!(
            i < self.nodes(),
            "node {node} outside {}x{} torus",
            self.width,
            self.height
        );
        (i % self.width, i / self.width)
    }

    /// The node at `(x, y)`.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        assert!(x < self.width && y < self.height);
        NodeId((y * self.width + x) as u8)
    }

    /// Minimal hop count between two nodes under X-Y routing with
    /// wraparound.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ring_distance(ax, bx, self.width) + ring_distance(ay, by, self.height)) as u32
    }

    /// The network diameter: the maximum hop count over all node pairs.
    pub fn diameter(&self) -> u32 {
        ((self.width / 2) + (self.height / 2)) as u32
    }

    /// Average hop count from `src` to every *other* node — the expected
    /// cost of a random forward.
    pub fn mean_hops_from(&self, src: NodeId) -> f64 {
        let n = self.nodes();
        if n <= 1 {
            return 0.0;
        }
        let total: u32 = (0..n).map(|i| self.hops(src, NodeId(i as u8))).sum();
        f64::from(total) / (n - 1) as f64
    }
}

fn ring_distance(a: usize, b: usize, len: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(len - d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn coords_roundtrip() {
        let t = Torus::new(4, 4);
        for i in 0..16u8 {
            let (x, y) = t.coords(NodeId(i));
            assert_eq!(t.node_at(x, y), NodeId(i));
        }
    }

    #[test]
    fn wraparound_shortens_paths() {
        let t = Torus::new(4, 4);
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 1); // 0 -> 3 wraps
        assert_eq!(t.hops(NodeId(0), NodeId(12)), 1); // vertical wrap
        assert_eq!(t.hops(NodeId(0), NodeId(5)), 2);
    }

    #[test]
    fn diameter_of_4x4_is_4() {
        assert_eq!(Torus::new(4, 4).diameter(), 4);
        assert_eq!(Torus::new(2, 2).diameter(), 2);
        assert_eq!(Torus::new(1, 1).diameter(), 0);
    }

    #[test]
    fn mean_hops_sane() {
        let t = Torus::new(4, 4);
        let m = t.mean_hops_from(NodeId(0));
        assert!(m > 0.0 && m <= f64::from(t.diameter()));
        assert_eq!(Torus::new(1, 1).mean_hops_from(NodeId(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn coords_panics_outside() {
        Torus::new(2, 2).coords(NodeId(4));
    }

    proptest! {
        #[test]
        fn prop_hops_symmetric(a in 0u8..16, b in 0u8..16) {
            let t = Torus::new(4, 4);
            prop_assert_eq!(t.hops(NodeId(a), NodeId(b)), t.hops(NodeId(b), NodeId(a)));
        }

        #[test]
        fn prop_hops_within_diameter(a in 0u8..16, b in 0u8..16) {
            let t = Torus::new(4, 4);
            prop_assert!(t.hops(NodeId(a), NodeId(b)) <= t.diameter());
        }

        #[test]
        fn prop_hops_zero_iff_same(a in 0u8..16, b in 0u8..16) {
            let t = Torus::new(4, 4);
            prop_assert_eq!(t.hops(NodeId(a), NodeId(b)) == 0, a == b);
        }

        #[test]
        fn prop_triangle_inequality(a in 0u8..16, b in 0u8..16, c in 0u8..16) {
            let t = Torus::new(4, 4);
            prop_assert!(
                t.hops(NodeId(a), NodeId(c))
                    <= t.hops(NodeId(a), NodeId(b)) + t.hops(NodeId(b), NodeId(c))
            );
        }
    }
}

/// A directed link between two adjacent torus nodes.
pub type Link = (NodeId, NodeId);

impl Torus {
    /// The deterministic X-then-Y route from `a` to `b`, as the sequence
    /// of nodes visited (including both endpoints). Wraparound is taken
    /// whenever it is strictly shorter; ties go the positive direction.
    pub fn route(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let (mut x, mut y) = self.coords(a);
        let (bx, by) = self.coords(b);
        let mut path = vec![a];
        while x != bx {
            x = step_ring(x, bx, self.width);
            path.push(self.node_at(x, y));
        }
        while y != by {
            y = step_ring(y, by, self.height);
            path.push(self.node_at(x, y));
        }
        path
    }

    /// The directed links the X-Y route from `a` to `b` traverses.
    pub fn route_links(&self, a: NodeId, b: NodeId) -> Vec<Link> {
        let path = self.route(a, b);
        path.windows(2).map(|w| (w[0], w[1])).collect()
    }
}

/// One ring step from `from` toward `to` on a ring of length `len`,
/// taking the shorter direction (positive on ties).
fn step_ring(from: usize, to: usize, len: usize) -> usize {
    let fwd = (to + len - from) % len; // hops going +1
    if fwd <= len - fwd {
        (from + 1) % len
    } else {
        (from + len - 1) % len
    }
}

/// Accumulates per-link message counts — the congestion view of a
/// forwarding workload, for finding bandwidth hotspots.
///
/// # Example
///
/// ```
/// use csp_sim::torus::{LinkLoad, Torus};
/// use csp_trace::NodeId;
/// let torus = Torus::new(4, 4);
/// let mut load = LinkLoad::new(torus);
/// load.send(NodeId(0), NodeId(2)); // two X hops
/// assert_eq!(load.total_messages(), 1);
/// assert_eq!(load.total_link_traversals(), 2);
/// assert_eq!(load.max_link_load(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct LinkLoad {
    torus: Torus,
    loads: std::collections::HashMap<Link, u64>,
    messages: u64,
}

impl LinkLoad {
    /// An empty accumulator for `torus`.
    pub fn new(torus: Torus) -> Self {
        LinkLoad {
            torus,
            loads: std::collections::HashMap::new(),
            messages: 0,
        }
    }

    /// Routes one message from `src` to `dst`, charging every link on the
    /// X-Y path. Self-sends are counted as messages but traverse nothing.
    pub fn send(&mut self, src: NodeId, dst: NodeId) {
        self.messages += 1;
        for link in self.torus.route_links(src, dst) {
            *self.loads.entry(link).or_default() += 1;
        }
    }

    /// Messages routed so far.
    pub fn total_messages(&self) -> u64 {
        self.messages
    }

    /// Sum of per-link traversals (hop-weighted traffic).
    pub fn total_link_traversals(&self) -> u64 {
        self.loads.values().sum()
    }

    /// The load on the busiest directed link.
    pub fn max_link_load(&self) -> u64 {
        self.loads.values().copied().max().unwrap_or(0)
    }

    /// Mean load over the links that carried any traffic.
    pub fn mean_link_load(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.total_link_traversals() as f64 / self.loads.len() as f64
        }
    }

    /// Hotspot factor: busiest link relative to the mean (1.0 = perfectly
    /// balanced).
    pub fn hotspot_factor(&self) -> f64 {
        let mean = self.mean_link_load();
        if mean == 0.0 {
            0.0
        } else {
            self.max_link_load() as f64 / mean
        }
    }
}

#[cfg(test)]
mod route_tests {
    use super::*;

    #[test]
    fn route_endpoints_and_length() {
        let t = Torus::new(4, 4);
        for a in 0..16u8 {
            for b in 0..16u8 {
                let path = t.route(NodeId(a), NodeId(b));
                assert_eq!(path[0], NodeId(a));
                assert_eq!(*path.last().unwrap(), NodeId(b));
                assert_eq!(
                    path.len() as u32 - 1,
                    t.hops(NodeId(a), NodeId(b)),
                    "route {a}->{b} must be minimal"
                );
            }
        }
    }

    #[test]
    fn route_steps_are_adjacent() {
        let t = Torus::new(4, 4);
        for (a, b) in [(0u8, 15u8), (3, 12), (5, 10)] {
            for (u, v) in t.route_links(NodeId(a), NodeId(b)) {
                assert_eq!(t.hops(u, v), 1, "route step {u}->{v} not a link");
            }
        }
    }

    #[test]
    fn wraparound_routes_take_the_short_way() {
        let t = Torus::new(4, 4);
        // 0 -> 3 wraps: one hop, through the 0<->3 wraparound link.
        assert_eq!(t.route(NodeId(0), NodeId(3)), vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    fn link_load_accumulates_and_finds_hotspots() {
        let t = Torus::new(4, 4);
        let mut load = LinkLoad::new(t);
        // Everyone sends to node 0: links into 0 become hot.
        for n in 1..16u8 {
            load.send(NodeId(n), NodeId(0));
        }
        assert_eq!(load.total_messages(), 15);
        assert!(load.hotspot_factor() > 1.0);
        assert!(load.max_link_load() >= 3);
    }

    #[test]
    fn self_send_traverses_nothing() {
        let mut load = LinkLoad::new(Torus::new(4, 4));
        load.send(NodeId(5), NodeId(5));
        assert_eq!(load.total_messages(), 1);
        assert_eq!(load.total_link_traversals(), 0);
        assert_eq!(load.mean_link_load(), 0.0);
        assert_eq!(load.hotspot_factor(), 0.0);
    }
}
