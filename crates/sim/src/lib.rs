//! A trace-producing CC-NUMA memory-system simulator.
//!
//! This crate is the substrate the paper's study runs on: where Kaxiras &
//! Young used RSIM to generate coherence traces of SPLASH programs, we
//! simulate the same machine organisation from scratch:
//!
//! * per-node two-level caches ([`cache`]): 16 KB direct-mapped L1 and
//!   512 KB 4-way L2 with 64-byte lines (Table 4 of the paper), inclusive,
//!   LRU replacement;
//! * a full-map directory per home node ([`directory`]) running an
//!   invalidation protocol ([`protocol`]): write misses and write faults
//!   invalidate all sharers and transfer exclusive ownership;
//! * a golden-model protocol checker ([`check`]): an independent flat
//!   reference implementation plus trace-divergence reporting, and typed
//!   directory invariant checking with fault injection
//!   ([`directory::DirFault`]) to prove corrupted coherence state is
//!   flagged;
//! * a 2-D torus interconnect and latency model ([`torus`]) used by the
//!   traffic and forwarding estimators;
//! * a data-forwarding benefit estimator ([`forwarding`]) for the
//!   bandwidth–latency trade-off the paper's summary discusses.
//!
//! The simulator consumes per-node streams of [`MemAccess`]es and produces a
//! [`csp_trace::Trace`]: one [`csp_trace::SharingEvent`] per coherence store
//! miss, with the invalidated-true-reader feedback the paper's update
//! mechanisms need, plus the final sharer state of memory.
//!
//! Timing is intentionally not simulated in the access path: the paper's
//! metrics "are not affected by the timing of events in the execution"
//! (Section 5.1). The latency model exists only to *cost* predictions after
//! the fact.
//!
//! # Example
//!
//! ```
//! use csp_sim::{MemAccess, MemorySystem, SystemConfig};
//! use csp_trace::NodeId;
//!
//! let mut sys = MemorySystem::new(SystemConfig::paper_16_node());
//! // Node 0 writes a word; nodes 1 and 2 read it; node 0 writes it again.
//! sys.access(MemAccess::write(NodeId(0), 0x100, 0x4000));
//! sys.access(MemAccess::read(NodeId(1), 0x200, 0x4000));
//! sys.access(MemAccess::read(NodeId(2), 0x204, 0x4000));
//! sys.access(MemAccess::write(NodeId(0), 0x100, 0x4000));
//! let (trace, stats) = sys.finish();
//! assert_eq!(trace.len(), 2); // two coherence store misses
//! assert_eq!(stats.invalidations_sent, 2); // the second write invalidates both readers
//! let actuals = trace.resolve_actuals();
//! assert_eq!(actuals[0].count(), 2); // nodes 1 and 2 read the first write
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
pub mod cache;
pub mod check;
mod config;
pub mod directory;
pub mod forwarding;
mod memsys;
pub mod protocol;
pub mod torus;

pub use access::MemAccess;
pub use config::{CacheConfig, LatencyConfig, Protocol, SystemConfig};
pub use memsys::{MemorySystem, SimStats};
