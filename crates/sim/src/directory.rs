//! Full-map directory state.
//!
//! Each cache line has a home node whose directory tracks the line's global
//! coherence state: unowned, held dirty by one owner, or shared by a set of
//! readers (plus possibly the last writer's stale-but-valid copy after a
//! downgrade). The directory also remembers the last writer's identity
//! (`pid`/`pc`) — the information forwarded update needs (paper Figure 3) —
//! and which sharers actually *read* the line (the access bits that
//! distinguish true readers from the last writer's retained copy).

use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap};
use std::collections::HashMap;

/// Global coherence state of one line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirState {
    /// No cached copies.
    Uncached,
    /// Exactly one dirty copy at the owner.
    Exclusive(NodeId),
    /// One or more clean copies; the bitmap lists all holders.
    Shared(SharingBitmap),
}

/// Directory record for one line.
#[derive(Clone, Copy, Debug)]
pub struct DirEntry {
    /// Coherence state.
    pub state: DirState,
    /// Holders that obtained their copy by *reading* since the last write
    /// (access bits). A downgraded last writer is a holder but not a reader.
    pub readers: SharingBitmap,
    /// Identity of the last write to this line, if any.
    pub last_writer: Option<(NodeId, Pc)>,
    /// The line's home node, fixed at first touch.
    pub home: NodeId,
}

impl DirEntry {
    fn new(home: NodeId) -> Self {
        DirEntry {
            state: DirState::Uncached,
            readers: SharingBitmap::empty(),
            last_writer: None,
            home,
        }
    }
}

/// The machine's directories, indexed by line address.
///
/// Home assignment is first-touch at line granularity, matching the paper's
/// data-placement policy (Section 5.1): the first node to access a line
/// becomes its home.
///
/// # Example
///
/// ```
/// use csp_sim::directory::{Directory, DirState};
/// use csp_trace::{LineAddr, NodeId};
///
/// let mut dir = Directory::new(16);
/// let e = dir.entry_mut(LineAddr(5), NodeId(3));
/// assert_eq!(e.home, NodeId(3)); // first-touch home
/// assert_eq!(e.state, DirState::Uncached);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Directory {
    nodes: usize,
    entries: HashMap<LineAddr, DirEntry>,
}

impl Directory {
    /// Creates an empty directory complex for an `nodes`-node machine.
    pub fn new(nodes: usize) -> Self {
        Directory {
            nodes,
            entries: HashMap::new(),
        }
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Returns the entry for `line`, creating it homed at `toucher` on first
    /// touch.
    pub fn entry_mut(&mut self, line: LineAddr, toucher: NodeId) -> &mut DirEntry {
        self.entries
            .entry(line)
            .or_insert_with(|| DirEntry::new(toucher))
    }

    /// Returns the entry for `line` if it has been touched.
    pub fn entry(&self, line: LineAddr) -> Option<&DirEntry> {
        self.entries.get(&line)
    }

    /// Number of lines ever touched.
    pub fn lines_touched(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(line, entry)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &DirEntry)> {
        self.entries.iter().map(|(l, e)| (*l, e))
    }

    /// Checks the single-owner invariant: an `Exclusive` line has no reader
    /// access bits set except possibly the owner's, and `Shared` bitmaps are
    /// non-empty and within the machine width. Used by tests.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn assert_invariants(&self) {
        for (line, e) in &self.entries {
            match e.state {
                DirState::Uncached => {
                    assert!(
                        e.readers.is_empty(),
                        "{line}: uncached line has reader bits {}",
                        e.readers
                    );
                }
                DirState::Exclusive(owner) => {
                    assert!(owner.index() < self.nodes, "{line}: owner outside machine");
                    // MESI grants clean-exclusive copies to readers, so the
                    // owner's own access bit may be set; nobody else's.
                    assert!(
                        e.readers
                            .is_subset(csp_trace::SharingBitmap::singleton(owner)),
                        "{line}: exclusive line has foreign reader bits {}",
                        e.readers
                    );
                }
                DirState::Shared(holders) => {
                    assert!(!holders.is_empty(), "{line}: shared with no holders");
                    assert_eq!(
                        holders.masked(self.nodes),
                        holders,
                        "{line}: holders outside machine"
                    );
                    assert!(
                        e.readers.is_subset(holders),
                        "{line}: readers {} not within holders {}",
                        e.readers,
                        holders
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_home_is_sticky() {
        let mut dir = Directory::new(4);
        assert_eq!(dir.entry_mut(LineAddr(1), NodeId(2)).home, NodeId(2));
        // A later toucher does not move the home.
        assert_eq!(dir.entry_mut(LineAddr(1), NodeId(3)).home, NodeId(2));
        assert_eq!(dir.lines_touched(), 1);
    }

    #[test]
    fn entry_absent_until_touched() {
        let dir = Directory::new(4);
        assert!(dir.entry(LineAddr(9)).is_none());
    }

    #[test]
    fn invariants_hold_on_fresh_entries() {
        let mut dir = Directory::new(4);
        dir.entry_mut(LineAddr(1), NodeId(0));
        dir.entry_mut(LineAddr(2), NodeId(1));
        dir.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "no holders")]
    fn invariants_catch_empty_shared() {
        let mut dir = Directory::new(4);
        dir.entry_mut(LineAddr(1), NodeId(0)).state = DirState::Shared(SharingBitmap::empty());
        dir.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "reader bits")]
    fn invariants_catch_readers_on_exclusive() {
        let mut dir = Directory::new(4);
        let e = dir.entry_mut(LineAddr(1), NodeId(0));
        e.state = DirState::Exclusive(NodeId(1));
        e.readers = SharingBitmap::singleton(NodeId(2));
        dir.assert_invariants();
    }
}
