//! Full-map directory state.
//!
//! Each cache line has a home node whose directory tracks the line's global
//! coherence state: unowned, held dirty by one owner, or shared by a set of
//! readers (plus possibly the last writer's stale-but-valid copy after a
//! downgrade). The directory also remembers the last writer's identity
//! (`pid`/`pc`) — the information forwarded update needs (paper Figure 3) —
//! and which sharers actually *read* the line (the access bits that
//! distinguish true readers from the last writer's retained copy).

use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap};
use std::collections::HashMap;
use std::fmt;

/// A violation of the directory's coherence invariants: the typed form of
/// what [`Directory::assert_invariants`] panics with, so protocol checkers
/// and fault-injection harnesses can match on *which* invariant broke.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoherenceViolation {
    /// An uncached line still has reader access bits.
    UncachedWithReaders {
        /// The offending line.
        line: LineAddr,
        /// The leftover access bits.
        readers: SharingBitmap,
    },
    /// An exclusive line's owner id is outside the machine.
    OwnerOutsideMachine {
        /// The offending line.
        line: LineAddr,
        /// The bogus owner.
        owner: NodeId,
    },
    /// An exclusive line has access bits for nodes other than the owner.
    ForeignReadersOnExclusive {
        /// The offending line.
        line: LineAddr,
        /// The full access-bit set.
        readers: SharingBitmap,
    },
    /// A shared line has an empty holder set.
    SharedWithNoHolders {
        /// The offending line.
        line: LineAddr,
    },
    /// A shared line's holder set names nodes outside the machine.
    HoldersOutsideMachine {
        /// The offending line.
        line: LineAddr,
        /// The out-of-range holder set.
        holders: SharingBitmap,
    },
    /// A shared line has access bits for nodes that hold no copy.
    ReadersNotWithinHolders {
        /// The offending line.
        line: LineAddr,
        /// The access bits.
        readers: SharingBitmap,
        /// The holder set.
        holders: SharingBitmap,
    },
}

impl fmt::Display for CoherenceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceViolation::UncachedWithReaders { line, readers } => {
                write!(f, "{line}: uncached line has reader bits {readers}")
            }
            CoherenceViolation::OwnerOutsideMachine { line, owner } => {
                write!(f, "{line}: owner {owner} outside machine")
            }
            CoherenceViolation::ForeignReadersOnExclusive { line, readers } => {
                write!(
                    f,
                    "{line}: exclusive line has foreign reader bits {readers}"
                )
            }
            CoherenceViolation::SharedWithNoHolders { line } => {
                write!(f, "{line}: shared with no holders")
            }
            CoherenceViolation::HoldersOutsideMachine { line, holders } => {
                write!(f, "{line}: holders {holders} outside machine")
            }
            CoherenceViolation::ReadersNotWithinHolders {
                line,
                readers,
                holders,
            } => {
                write!(f, "{line}: readers {readers} not within holders {holders}")
            }
        }
    }
}

impl std::error::Error for CoherenceViolation {}

/// A deliberate corruption of directory state, for fault-injection tests:
/// each variant models a distinct bookkeeping bug (lost invalidation,
/// spurious grant, owner mix-up) whose incoherence the checkers must
/// flag — structurally via [`Directory::check_invariants`] or behaviourally
/// via divergence from the [`crate::check::FlatModel`] golden model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirFault {
    /// Forget one sharer of a `Shared` line (holder and access bit): the
    /// node keeps a stale copy the directory will never invalidate.
    DropSharer {
        /// The line to corrupt.
        line: LineAddr,
        /// The sharer to forget.
        node: NodeId,
    },
    /// Record a sharer (holder *and* reader) that never requested the
    /// line: its phantom access bit pollutes the next write's feedback.
    PhantomSharer {
        /// The line to corrupt.
        line: LineAddr,
        /// The phantom node.
        node: NodeId,
    },
    /// Hand an `Exclusive` line's ownership to a different node without a
    /// data transfer.
    RedirectOwner {
        /// The line to corrupt.
        line: LineAddr,
        /// The new (wrong) owner.
        node: NodeId,
    },
    /// Set a foreign reader access bit on an `Exclusive` line.
    LeakReaderBit {
        /// The line to corrupt.
        line: LineAddr,
        /// The node whose bit to set.
        node: NodeId,
    },
    /// Empty a `Shared` line's holder set while leaving it `Shared`.
    ClearSharers {
        /// The line to corrupt.
        line: LineAddr,
    },
}

/// Global coherence state of one line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirState {
    /// No cached copies.
    Uncached,
    /// Exactly one dirty copy at the owner.
    Exclusive(NodeId),
    /// One or more clean copies; the bitmap lists all holders.
    Shared(SharingBitmap),
}

/// Directory record for one line.
#[derive(Clone, Copy, Debug)]
pub struct DirEntry {
    /// Coherence state.
    pub state: DirState,
    /// Holders that obtained their copy by *reading* since the last write
    /// (access bits). A downgraded last writer is a holder but not a reader.
    pub readers: SharingBitmap,
    /// Identity of the last write to this line, if any.
    pub last_writer: Option<(NodeId, Pc)>,
    /// The line's home node, fixed at first touch.
    pub home: NodeId,
}

impl DirEntry {
    fn new(home: NodeId) -> Self {
        DirEntry {
            state: DirState::Uncached,
            readers: SharingBitmap::empty(),
            last_writer: None,
            home,
        }
    }
}

/// The machine's directories, indexed by line address.
///
/// Home assignment is first-touch at line granularity, matching the paper's
/// data-placement policy (Section 5.1): the first node to access a line
/// becomes its home.
///
/// # Example
///
/// ```
/// use csp_sim::directory::{Directory, DirState};
/// use csp_trace::{LineAddr, NodeId};
///
/// let mut dir = Directory::new(16);
/// let e = dir.entry_mut(LineAddr(5), NodeId(3));
/// assert_eq!(e.home, NodeId(3)); // first-touch home
/// assert_eq!(e.state, DirState::Uncached);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Directory {
    nodes: usize,
    entries: HashMap<LineAddr, DirEntry>,
}

impl Directory {
    /// Creates an empty directory complex for an `nodes`-node machine.
    pub fn new(nodes: usize) -> Self {
        Directory {
            nodes,
            entries: HashMap::new(),
        }
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Returns the entry for `line`, creating it homed at `toucher` on first
    /// touch.
    pub fn entry_mut(&mut self, line: LineAddr, toucher: NodeId) -> &mut DirEntry {
        self.entries
            .entry(line)
            .or_insert_with(|| DirEntry::new(toucher))
    }

    /// Returns the entry for `line` if it has been touched.
    pub fn entry(&self, line: LineAddr) -> Option<&DirEntry> {
        self.entries.get(&line)
    }

    /// Number of lines ever touched.
    pub fn lines_touched(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(line, entry)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &DirEntry)> {
        self.entries.iter().map(|(l, e)| (*l, e))
    }

    /// Checks the single-owner invariant: an `Exclusive` line has no reader
    /// access bits set except possibly the owner's, and `Shared` bitmaps are
    /// non-empty and within the machine width.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoherenceViolation`] found (iteration order over
    /// lines is unspecified).
    pub fn check_invariants(&self) -> Result<(), CoherenceViolation> {
        for (line, e) in &self.entries {
            let line = *line;
            match e.state {
                DirState::Uncached => {
                    if !e.readers.is_empty() {
                        return Err(CoherenceViolation::UncachedWithReaders {
                            line,
                            readers: e.readers,
                        });
                    }
                }
                DirState::Exclusive(owner) => {
                    if owner.index() >= self.nodes {
                        return Err(CoherenceViolation::OwnerOutsideMachine { line, owner });
                    }
                    // MESI grants clean-exclusive copies to readers, so the
                    // owner's own access bit may be set; nobody else's.
                    if !e
                        .readers
                        .is_subset(csp_trace::SharingBitmap::singleton(owner))
                    {
                        return Err(CoherenceViolation::ForeignReadersOnExclusive {
                            line,
                            readers: e.readers,
                        });
                    }
                }
                DirState::Shared(holders) => {
                    if holders.is_empty() {
                        return Err(CoherenceViolation::SharedWithNoHolders { line });
                    }
                    if holders.masked(self.nodes) != holders {
                        return Err(CoherenceViolation::HoldersOutsideMachine { line, holders });
                    }
                    if !e.readers.is_subset(holders) {
                        return Err(CoherenceViolation::ReadersNotWithinHolders {
                            line,
                            readers: e.readers,
                            holders,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// [`check_invariants`](Self::check_invariants) for tests that want a
    /// panic.
    ///
    /// # Panics
    ///
    /// Panics with the violation's message if any invariant is violated.
    pub fn assert_invariants(&self) {
        if let Err(violation) = self.check_invariants() {
            panic!("{violation}");
        }
    }

    /// Applies a [`DirFault`] — a deliberate state corruption for
    /// fault-injection tests. Returns `false` when the fault is not
    /// applicable (line never touched, or its state does not match the
    /// fault's precondition), so harnesses can tell "injected" from
    /// "no-op".
    pub fn inject_fault(&mut self, fault: DirFault) -> bool {
        match fault {
            DirFault::DropSharer { line, node } => {
                let Some(e) = self.entries.get_mut(&line) else {
                    return false;
                };
                let DirState::Shared(mut holders) = e.state else {
                    return false;
                };
                if !holders.contains(node) {
                    return false;
                }
                holders.remove(node);
                e.state = DirState::Shared(holders);
                e.readers.remove(node);
                true
            }
            DirFault::PhantomSharer { line, node } => {
                let Some(e) = self.entries.get_mut(&line) else {
                    return false;
                };
                let DirState::Shared(mut holders) = e.state else {
                    return false;
                };
                if holders.contains(node) {
                    return false;
                }
                holders.insert(node);
                e.state = DirState::Shared(holders);
                e.readers.insert(node);
                true
            }
            DirFault::RedirectOwner { line, node } => {
                let Some(e) = self.entries.get_mut(&line) else {
                    return false;
                };
                let DirState::Exclusive(owner) = e.state else {
                    return false;
                };
                if owner == node {
                    return false;
                }
                e.state = DirState::Exclusive(node);
                true
            }
            DirFault::LeakReaderBit { line, node } => {
                let Some(e) = self.entries.get_mut(&line) else {
                    return false;
                };
                let DirState::Exclusive(owner) = e.state else {
                    return false;
                };
                if owner == node {
                    return false;
                }
                e.readers.insert(node);
                true
            }
            DirFault::ClearSharers { line } => {
                let Some(e) = self.entries.get_mut(&line) else {
                    return false;
                };
                let DirState::Shared(_) = e.state else {
                    return false;
                };
                e.state = DirState::Shared(SharingBitmap::empty());
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_home_is_sticky() {
        let mut dir = Directory::new(4);
        assert_eq!(dir.entry_mut(LineAddr(1), NodeId(2)).home, NodeId(2));
        // A later toucher does not move the home.
        assert_eq!(dir.entry_mut(LineAddr(1), NodeId(3)).home, NodeId(2));
        assert_eq!(dir.lines_touched(), 1);
    }

    #[test]
    fn entry_absent_until_touched() {
        let dir = Directory::new(4);
        assert!(dir.entry(LineAddr(9)).is_none());
    }

    #[test]
    fn invariants_hold_on_fresh_entries() {
        let mut dir = Directory::new(4);
        dir.entry_mut(LineAddr(1), NodeId(0));
        dir.entry_mut(LineAddr(2), NodeId(1));
        dir.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "no holders")]
    fn invariants_catch_empty_shared() {
        let mut dir = Directory::new(4);
        dir.entry_mut(LineAddr(1), NodeId(0)).state = DirState::Shared(SharingBitmap::empty());
        dir.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "reader bits")]
    fn invariants_catch_readers_on_exclusive() {
        let mut dir = Directory::new(4);
        let e = dir.entry_mut(LineAddr(1), NodeId(0));
        e.state = DirState::Exclusive(NodeId(1));
        e.readers = SharingBitmap::singleton(NodeId(2));
        dir.assert_invariants();
    }

    #[test]
    fn check_invariants_returns_typed_violation() {
        let mut dir = Directory::new(4);
        dir.entry_mut(LineAddr(1), NodeId(0)).state = DirState::Shared(SharingBitmap::empty());
        assert_eq!(
            dir.check_invariants(),
            Err(CoherenceViolation::SharedWithNoHolders { line: LineAddr(1) })
        );
    }

    fn shared_line(dir: &mut Directory, line: u64, holders: &[u8]) {
        let nodes: Vec<NodeId> = holders.iter().map(|&n| NodeId(n)).collect();
        let e = dir.entry_mut(LineAddr(line), NodeId(holders[0]));
        e.state = DirState::Shared(SharingBitmap::from_nodes(&nodes));
        e.readers = SharingBitmap::from_nodes(&nodes);
    }

    #[test]
    fn clear_sharers_fault_is_flagged() {
        let mut dir = Directory::new(4);
        shared_line(&mut dir, 1, &[0, 2]);
        assert!(dir.check_invariants().is_ok());
        assert!(dir.inject_fault(DirFault::ClearSharers { line: LineAddr(1) }));
        assert!(dir.check_invariants().is_err());
    }

    #[test]
    fn leak_reader_bit_fault_is_flagged() {
        let mut dir = Directory::new(4);
        dir.entry_mut(LineAddr(1), NodeId(0)).state = DirState::Exclusive(NodeId(1));
        assert!(dir.inject_fault(DirFault::LeakReaderBit {
            line: LineAddr(1),
            node: NodeId(3),
        }));
        assert!(matches!(
            dir.check_invariants(),
            Err(CoherenceViolation::ForeignReadersOnExclusive { .. })
        ));
    }

    #[test]
    fn inapplicable_faults_report_noop() {
        let mut dir = Directory::new(4);
        shared_line(&mut dir, 1, &[0]);
        // Untouched line.
        assert!(!dir.inject_fault(DirFault::ClearSharers { line: LineAddr(9) }));
        // Wrong state: the line is Shared, not Exclusive.
        assert!(!dir.inject_fault(DirFault::RedirectOwner {
            line: LineAddr(1),
            node: NodeId(2),
        }));
        // Dropping a node that is not a sharer.
        assert!(!dir.inject_fault(DirFault::DropSharer {
            line: LineAddr(1),
            node: NodeId(3),
        }));
        assert!(dir.check_invariants().is_ok());
    }

    #[test]
    fn drop_and_phantom_sharers_stay_structurally_valid() {
        // These two faults corrupt *semantics* (who really holds copies),
        // not structure — they must slip past check_invariants, which is
        // exactly why the golden-model divergence check exists.
        let mut dir = Directory::new(4);
        shared_line(&mut dir, 1, &[0, 1, 2]);
        assert!(dir.inject_fault(DirFault::DropSharer {
            line: LineAddr(1),
            node: NodeId(1),
        }));
        assert!(dir.inject_fault(DirFault::PhantomSharer {
            line: LineAddr(1),
            node: NodeId(3),
        }));
        assert!(dir.check_invariants().is_ok());
    }
}
