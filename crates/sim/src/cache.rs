//! Set-associative caches with LRU replacement.
//!
//! The simulator models each node's L1/L2 hierarchy to decide which sharer
//! copies survive between invalidations — the one way timing-free simulation
//! can still distort sharing patterns (paper Section 3.4: "cache
//! replacements prior to invalidation can obscure our view of the true
//! sharing"). States cover MSI plus the optional MESI clean-exclusive:
//! `Shared` (clean, possibly replicated), `Exclusive` (clean, sole copy)
//! and `Modified` (dirty, sole copy).

use crate::CacheConfig;
use csp_trace::LineAddr;

/// Coherence state of a cached line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineState {
    /// Present, read-only copy.
    Shared,
    /// Present, exclusive *clean* copy (MESI only): no other cache holds
    /// the line, so a write can upgrade silently.
    Exclusive,
    /// Present, exclusive dirty copy.
    Modified,
}

#[derive(Clone, Copy, Debug)]
struct Way {
    line: LineAddr,
    state: LineState,
    /// Higher = more recently used.
    lru: u64,
}

/// A single set-associative, LRU-replacement cache.
///
/// # Example
///
/// ```
/// use csp_sim::cache::{Cache, LineState};
/// use csp_sim::CacheConfig;
/// use csp_trace::LineAddr;
///
/// let mut c = Cache::new(CacheConfig::new(2 * 64, 2, 64));
/// assert!(c.insert(LineAddr(0), LineState::Shared).is_none());
/// assert!(c.insert(LineAddr(1), LineState::Shared).is_none());
/// // Both map to the single set; a third insert evicts the LRU line 0.
/// let evicted = c.insert(LineAddr(2), LineState::Modified).unwrap();
/// assert_eq!(evicted.0, LineAddr(0));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    clock: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets() as usize;
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.associativity as usize); num_sets],
            set_mask: config.num_sets() - 1,
            clock: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    /// Looks up `line`, updating LRU on a hit. Returns its state if present.
    pub fn lookup(&mut self, line: LineAddr) -> Option<LineState> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(line);
        self.sets[set].iter_mut().find(|w| w.line == line).map(|w| {
            w.lru = clock;
            w.state
        })
    }

    /// Peeks at `line` without touching LRU state.
    pub fn peek(&self, line: LineAddr) -> Option<LineState> {
        let set = self.set_index(line);
        self.sets[set]
            .iter()
            .find(|w| w.line == line)
            .map(|w| w.state)
    }

    /// Inserts (or updates) `line` with `state`, evicting the LRU way if the
    /// set is full. Returns the evicted `(line, state)` if any.
    pub fn insert(&mut self, line: LineAddr, state: LineState) -> Option<(LineAddr, LineState)> {
        self.clock += 1;
        let clock = self.clock;
        let assoc = self.config.associativity as usize;
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| w.line == line) {
            w.state = state;
            w.lru = clock;
            return None;
        }
        let mut evicted = None;
        if set.len() == assoc {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            let w = set.swap_remove(victim);
            evicted = Some((w.line, w.state));
        }
        set.push(Way {
            line,
            state,
            lru: clock,
        });
        evicted
    }

    /// Changes the state of a resident line. Returns `false` if absent.
    pub fn set_state(&mut self, line: LineAddr, state: LineState) -> bool {
        let set = self.set_index(line);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.line == line) {
            w.state = state;
            true
        } else {
            false
        }
    }

    /// Removes `line` (an external invalidation). Returns its state if it
    /// was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineState> {
        let set = self.set_index(line);
        let pos = self.sets[set].iter().position(|w| w.line == line)?;
        Some(self.sets[set].swap_remove(pos).state)
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheConfig::new(4 * 64, 2, 64))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(LineAddr(4)), None);
        c.insert(LineAddr(4), LineState::Shared);
        assert_eq!(c.lookup(LineAddr(4)), Some(LineState::Shared));
        assert_eq!(c.peek(LineAddr(4)), Some(LineState::Shared));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line addresses).
        c.insert(LineAddr(0), LineState::Shared);
        c.insert(LineAddr(2), LineState::Shared);
        c.lookup(LineAddr(0)); // make line 2 the LRU
        let evicted = c.insert(LineAddr(4), LineState::Shared).unwrap();
        assert_eq!(evicted.0, LineAddr(2));
        assert!(c.peek(LineAddr(0)).is_some());
    }

    #[test]
    fn insert_existing_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(LineAddr(0), LineState::Shared);
        assert!(c.insert(LineAddr(0), LineState::Modified).is_none());
        assert_eq!(c.peek(LineAddr(0)), Some(LineState::Modified));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_removes_and_reports_state() {
        let mut c = tiny();
        c.insert(LineAddr(6), LineState::Modified);
        assert_eq!(c.invalidate(LineAddr(6)), Some(LineState::Modified));
        assert_eq!(c.invalidate(LineAddr(6)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn set_state_on_absent_line_is_false() {
        let mut c = tiny();
        assert!(!c.set_state(LineAddr(1), LineState::Shared));
        c.insert(LineAddr(1), LineState::Shared);
        assert!(c.set_state(LineAddr(1), LineState::Modified));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        // Even lines -> set 0, odd lines -> set 1.
        c.insert(LineAddr(0), LineState::Shared);
        c.insert(LineAddr(2), LineState::Shared);
        c.insert(LineAddr(1), LineState::Shared);
        c.insert(LineAddr(3), LineState::Shared);
        assert_eq!(c.len(), 4);
    }

    proptest! {
        /// Occupancy never exceeds capacity, and a just-inserted line is
        /// always resident.
        #[test]
        fn prop_capacity_respected(lines in proptest::collection::vec(0u64..64, 1..200)) {
            let mut c = tiny();
            for &l in &lines {
                c.insert(LineAddr(l), LineState::Shared);
                prop_assert!(c.len() <= 4);
                prop_assert!(c.peek(LineAddr(l)).is_some());
            }
        }

        /// A line evicted from a set is no longer resident.
        #[test]
        fn prop_eviction_removes_line(lines in proptest::collection::vec(0u64..64, 1..200)) {
            let mut c = tiny();
            for &l in &lines {
                if let Some((victim, _)) = c.insert(LineAddr(l), LineState::Shared) {
                    prop_assert!(c.peek(victim).is_none());
                    prop_assert_ne!(victim, LineAddr(l));
                }
            }
        }
    }
}
