//! Data-forwarding benefit estimation.
//!
//! The paper deliberately evaluates prediction accuracy in isolation
//! (Section 3.3): the forwarding protocol is "outside the scope of our
//! work". Its summary, however, frames the payoff as a bandwidth–latency
//! trade-off: sensitive predictors save more miss latency but burn more
//! network bandwidth. This module makes that trade-off concrete with an
//! after-the-fact estimator in the spirit of Koufaty & Torrellas' forwarding
//! protocol: after each coherence store miss, data is pushed to every
//! predicted reader.
//!
//! Accounting per decision:
//!
//! * **useful forward** (true positive): the reader's subsequent read miss
//!   becomes a local hit — it saves the remote (or local) memory latency
//!   minus an L2 hit, at the price of one data message over the torus.
//! * **wasted forward** (false positive): one data message over the torus
//!   plus a cache fill that may displace useful data (counted, not
//!   simulated).
//! * **missed opportunity** (false negative): no cost, no saving — the
//!   reader pays its full miss latency as in the base system.
//!
//! The estimator assumes every useful forward arrives in time, so its
//! savings are an upper bound (the paper makes the same simplification:
//! "we consider data forwarding to be correct as long as the destination
//! node is a true reader").

use crate::torus::Torus;
use crate::{LatencyConfig, SystemConfig};
use csp_trace::{SharingBitmap, Trace};
use std::fmt;

/// Totals produced by [`estimate`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ForwardingReport {
    /// Forwards that reached a true reader.
    pub useful_forwards: u64,
    /// Forwards that reached a node that never read the line.
    pub wasted_forwards: u64,
    /// True readers that received no forward (missed opportunities).
    pub missed_opportunities: u64,
    /// Total cycles of miss latency eliminated by useful forwards.
    pub latency_saved_cycles: u64,
    /// Total miss latency the base (prediction-free) system pays for the
    /// same reads.
    pub base_latency_cycles: u64,
    /// Hop-weighted data messages injected by forwarding (useful + wasted).
    pub forward_traffic_hops: u64,
    /// Hop-weighted request+response traffic *avoided* because satisfied
    /// readers no longer fetch from the home.
    pub avoided_fetch_hops: u64,
}

impl ForwardingReport {
    /// Fraction of forwards that were useful (equals the prediction
    /// scheme's PVP over this trace).
    pub fn useful_fraction(&self) -> f64 {
        let total = self.useful_forwards + self.wasted_forwards;
        if total == 0 {
            0.0
        } else {
            self.useful_forwards as f64 / total as f64
        }
    }

    /// Fraction of base miss latency eliminated.
    pub fn latency_saved_fraction(&self) -> f64 {
        if self.base_latency_cycles == 0 {
            0.0
        } else {
            self.latency_saved_cycles as f64 / self.base_latency_cycles as f64
        }
    }

    /// Net hop-weighted traffic added (can be negative: avoided fetches can
    /// outweigh forward pushes when the predictor is accurate).
    pub fn net_traffic_hops(&self) -> i64 {
        self.forward_traffic_hops as i64 - self.avoided_fetch_hops as i64
    }
}

impl fmt::Display for ForwardingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "useful={} wasted={} missed={} saved={:.1}% of {} cycles, net traffic {:+} hop-msgs",
            self.useful_forwards,
            self.wasted_forwards,
            self.missed_opportunities,
            self.latency_saved_fraction() * 100.0,
            self.base_latency_cycles,
            self.net_traffic_hops()
        )
    }
}

/// Estimates the forwarding benefit of `predictions` (one bitmap per trace
/// event, e.g. from `csp_core::engine::predictions_for`) over `trace`.
///
/// # Panics
///
/// Panics if `predictions.len() != trace.len()` or if the config's node
/// count differs from the trace's.
pub fn estimate(
    trace: &Trace,
    predictions: &[SharingBitmap],
    config: &SystemConfig,
) -> ForwardingReport {
    assert_eq!(
        predictions.len(),
        trace.len(),
        "one prediction per trace event required"
    );
    assert_eq!(
        config.nodes,
        trace.nodes(),
        "config/trace node count mismatch"
    );
    let torus = Torus::new(config.torus_width, config.nodes / config.torus_width);
    let lat: &LatencyConfig = &config.latency;
    let actuals = trace.resolve_actuals();
    let mut report = ForwardingReport::default();

    for ((event, &predicted), &actual) in trace.events().iter().zip(predictions).zip(&actuals) {
        let predicted = predicted.masked(config.nodes);
        // Base system: every true reader pays a miss satisfied by the home.
        for reader in actual.iter() {
            report.base_latency_cycles += fetch_latency(lat, &torus, reader, event.home);
        }
        for node in predicted.iter() {
            if node == event.writer {
                continue; // forwarding to the producer is meaningless
            }
            // Data is pushed from the writer (the new owner) to the target.
            report.forward_traffic_hops += u64::from(torus.hops(event.writer, node)).max(1);
            if actual.contains(node) {
                report.useful_forwards += 1;
                let full = fetch_latency(lat, &torus, node, event.home);
                report.latency_saved_cycles += full.saturating_sub(lat.l2_hit);
                // The reader no longer sends a request to the home and the
                // home no longer sends data back.
                report.avoided_fetch_hops += 2 * u64::from(torus.hops(node, event.home)).max(1);
            } else {
                report.wasted_forwards += 1;
            }
        }
        report.missed_opportunities += u64::from((actual - predicted).count());
    }
    report
}

fn fetch_latency(
    lat: &LatencyConfig,
    torus: &Torus,
    node: csp_trace::NodeId,
    home: csp_trace::NodeId,
) -> u64 {
    if node == home {
        lat.local_memory
    } else {
        lat.remote_memory + lat.per_hop * u64::from(torus.hops(node, home)).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::{LineAddr, NodeId, Pc, SharingEvent};

    fn two_event_trace() -> Trace {
        let mut t = Trace::new(16);
        t.push(SharingEvent::new(
            NodeId(0),
            Pc(1),
            LineAddr(5),
            NodeId(0),
            SharingBitmap::empty(),
            None,
        ));
        t.push(SharingEvent::new(
            NodeId(0),
            Pc(1),
            LineAddr(5),
            NodeId(0),
            SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]),
            Some((NodeId(0), Pc(1))),
        ));
        t
    }

    #[test]
    fn perfect_prediction_saves_all_latency() {
        let trace = two_event_trace();
        let actuals = trace.resolve_actuals();
        let report = estimate(&trace, &actuals, &SystemConfig::paper_16_node());
        assert_eq!(report.wasted_forwards, 0);
        assert_eq!(report.useful_forwards, 2);
        assert_eq!(report.missed_opportunities, 0);
        assert!(report.latency_saved_fraction() > 0.9);
        assert!(
            report.net_traffic_hops() <= 0,
            "accurate forwarding should save traffic"
        );
    }

    #[test]
    fn empty_prediction_costs_nothing_and_saves_nothing() {
        let trace = two_event_trace();
        let preds = vec![SharingBitmap::empty(); trace.len()];
        let report = estimate(&trace, &preds, &SystemConfig::paper_16_node());
        assert_eq!(report.useful_forwards + report.wasted_forwards, 0);
        assert_eq!(report.latency_saved_cycles, 0);
        assert_eq!(report.missed_opportunities, 2);
        assert!(report.base_latency_cycles > 0);
    }

    #[test]
    fn broadcast_prediction_is_mostly_waste() {
        let trace = two_event_trace();
        let preds = vec![SharingBitmap::all(16); trace.len()];
        let report = estimate(&trace, &preds, &SystemConfig::paper_16_node());
        // 15 non-writer targets per event x 2 events = 30 forwards, 2 useful.
        assert_eq!(report.useful_forwards, 2);
        assert_eq!(report.wasted_forwards, 28);
        assert!(report.useful_fraction() < 0.1);
        assert!(report.net_traffic_hops() > 0);
    }

    #[test]
    #[should_panic(expected = "one prediction per trace event")]
    fn rejects_mismatched_lengths() {
        let trace = two_event_trace();
        estimate(&trace, &[], &SystemConfig::paper_16_node());
    }
}

/// Builds the per-link congestion picture of a forwarding workload: every
/// forward (useful or wasted) is routed writer → target over the torus
/// X-Y paths. Use [`LinkLoad::hotspot_factor`](crate::torus::LinkLoad) to
/// see how unevenly a prediction scheme loads the network.
///
/// # Panics
///
/// Panics if `predictions.len() != trace.len()` or if the config's node
/// count differs from the trace's.
pub fn link_analysis(
    trace: &Trace,
    predictions: &[SharingBitmap],
    config: &SystemConfig,
) -> crate::torus::LinkLoad {
    assert_eq!(
        predictions.len(),
        trace.len(),
        "one prediction per trace event required"
    );
    assert_eq!(
        config.nodes,
        trace.nodes(),
        "config/trace node count mismatch"
    );
    let torus = Torus::new(config.torus_width, config.nodes / config.torus_width);
    let mut load = crate::torus::LinkLoad::new(torus);
    for (event, &predicted) in trace.events().iter().zip(predictions) {
        for node in predicted.masked(config.nodes).iter() {
            if node != event.writer {
                load.send(event.writer, node);
            }
        }
    }
    load
}

#[cfg(test)]
mod link_tests {
    use super::*;
    use csp_trace::{LineAddr, NodeId, Pc, SharingEvent};

    #[test]
    fn link_analysis_routes_every_forward() {
        let mut t = Trace::new(16);
        t.push(SharingEvent::new(
            NodeId(0),
            Pc(1),
            LineAddr(5),
            NodeId(0),
            SharingBitmap::empty(),
            None,
        ));
        let preds = vec![SharingBitmap::from_nodes(&[
            NodeId(1),
            NodeId(2),
            NodeId(0),
        ])];
        let load = link_analysis(&t, &preds, &SystemConfig::paper_16_node());
        // Forward to self (node 0) is skipped; 1 hop + 2 hops routed.
        assert_eq!(load.total_messages(), 2);
        assert_eq!(load.total_link_traversals(), 3);
    }

    #[test]
    fn broadcast_predictions_stress_the_writers_links() {
        let mut t = Trace::new(16);
        for _ in 0..50 {
            t.push(SharingEvent::new(
                NodeId(0),
                Pc(1),
                LineAddr(5),
                NodeId(0),
                SharingBitmap::empty(),
                Some((NodeId(0), Pc(1))),
            ));
        }
        let preds = vec![SharingBitmap::all(16); t.len()];
        let load = link_analysis(&t, &preds, &SystemConfig::paper_16_node());
        // All traffic originates at node 0: its outgoing links are hot.
        assert!(
            load.hotspot_factor() > 1.5,
            "factor {}",
            load.hotspot_factor()
        );
    }
}
